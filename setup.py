"""Thin setup.py so legacy `python setup.py develop` works offline.

The environment has no `wheel` package, which PEP 660 editable installs
(`pip install -e .`) require; `python setup.py develop` needs only
setuptools.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
