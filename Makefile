PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test smoke docs-check bench clean-cache

## Tier-1 test suite.
test:
	$(PYTHON) -m pytest -x -q

## End-to-end pipeline smoke: every figure, reduced profile, 2 workers.
smoke:
	$(PYTHON) -m repro run-all --profile quick --jobs 2 --cache-dir .repro-cache --json smoke-results.json

## Fail if README.md / DESIGN.md drift from the CLI's --help surface.
docs-check:
	$(PYTHON) scripts/check_docs.py

## pytest-benchmark harness.
bench:
	$(PYTHON) -m pytest benchmarks -q

clean-cache:
	rm -rf .repro-cache smoke-results.json
