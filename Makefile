PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-crashsim test-faultsim lint smoke service-smoke service-smoke-workers shard-smoke events-smoke docs-check bench bench-perf bench-perf-smoke bench-service bench-load bench-load-smoke clean-cache

## Tier-1 test suite.
test:
	$(PYTHON) -m pytest -x -q

## Crash-injection suite alone: kills the service queue at every
## fsync/rename/append boundary and asserts the replay invariants.
test-crashsim:
	$(PYTHON) -m pytest tests/service/test_crashsim.py -q

## Fault-injection suite alone: arms deterministic kill/hang/raise
## faults inside real worker pools and asserts the containment contract
## (healthy batchmates exactly once, poison quarantined, replay clean).
test-faultsim:
	$(PYTHON) -m pytest tests/service/test_faultsim.py -q

## Ruff lint gate (config in pyproject.toml).  Skips with a notice when
## ruff is not installed; CI installs ruff and enforces it.
lint:
	$(PYTHON) scripts/lint.py

## End-to-end pipeline smoke: every figure, reduced profile, 2 workers.
smoke:
	$(PYTHON) -m repro run-all --profile quick --jobs 2 --cache-dir .repro-cache --json smoke-results.json

## Service smoke: start `repro serve`, submit a tiny sweep over HTTP,
## verify the response against the cached artifact and the warm path.
service-smoke:
	$(PYTHON) scripts/service_smoke.py

## The same smoke against a 4-worker sharded dispatcher.
service-smoke-workers:
	$(PYTHON) scripts/service_smoke.py --workers 4

## Multi-process shard smoke: two `repro serve --shard` processes over
## one --shared-cache-dir, a tiny sweep split across them byte-identical
## to serial run_sweep, and a cross-shard instant-complete from the
## shared tier.
shard-smoke:
	$(PYTHON) scripts/shard_smoke.py

## Observability smoke: tail the SSE event stream while a job runs,
## assert the queued->done lifecycle arrives as push events, the
## ?trace=1 span timeline telescopes, and /v1/metrics parses as
## Prometheus exposition text.
events-smoke:
	$(PYTHON) scripts/events_smoke.py

## Fail if README.md / DESIGN.md drift from the CLI's --help surface.
docs-check:
	$(PYTHON) scripts/check_docs.py

## pytest-benchmark harness.
bench:
	$(PYTHON) -m pytest benchmarks -q

## Simulation-core perf harness; writes BENCH_simcore.json at the root.
## PROFILE=tiny for CI-sized runs.
PROFILE ?= quick
bench-perf:
	$(PYTHON) benchmarks/perf/bench_simcore.py --profile $(PROFILE)

## CI perf-smoke gate: quick simcore bench (superblocks on/off) plus a
## byte-identity check — tiny-profile run-all manifests must be
## identical with fused dispatch enabled and disabled.
bench-perf-smoke:
	$(PYTHON) scripts/bench_perf_smoke.py

## Service perf harness: warm-cache requests/sec + cold batch latency;
## writes BENCH_service.json at the root.
bench-service:
	$(PYTHON) benchmarks/perf/bench_service.py

## Multi-tenant load/SLO harness: 10k+ seeded mixed warm/cold jobs plus
## a sustained-overload phase; merges a `load` section (p50/p95/p99,
## saturation throughput, rejection rates, exactly-once ledger) into
## BENCH_service.json.
bench-load:
	$(PYTHON) benchmarks/perf/bench_load.py

## Seconds-bounded miniature of the same harness (the CI gate): writes
## BENCH_load_smoke.json and fails loudly if the `load` section is
## missing keys, mis-ordered, or violates the exactly-once ledger.
bench-load-smoke:
	$(PYTHON) benchmarks/perf/bench_load.py --smoke

## Remove everything .gitignore ignores: the artifact cache, bytecode
## droppings, egg-info, and smoke output.
clean-cache:
	rm -rf .repro-cache .repro-queue smoke-results.json
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf *.egg-info src/*.egg-info .pytest_cache .benchmarks
