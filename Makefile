PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint smoke docs-check bench bench-perf clean-cache

## Tier-1 test suite.
test:
	$(PYTHON) -m pytest -x -q

## Ruff lint gate (config in pyproject.toml).  Skips with a notice when
## ruff is not installed; CI installs ruff and enforces it.
lint:
	$(PYTHON) scripts/lint.py

## End-to-end pipeline smoke: every figure, reduced profile, 2 workers.
smoke:
	$(PYTHON) -m repro run-all --profile quick --jobs 2 --cache-dir .repro-cache --json smoke-results.json

## Fail if README.md / DESIGN.md drift from the CLI's --help surface.
docs-check:
	$(PYTHON) scripts/check_docs.py

## pytest-benchmark harness.
bench:
	$(PYTHON) -m pytest benchmarks -q

## Simulation-core perf harness; writes BENCH_simcore.json at the root.
## PROFILE=tiny for CI-sized runs.
PROFILE ?= quick
bench-perf:
	$(PYTHON) benchmarks/perf/bench_simcore.py --profile $(PROFILE)

## Remove everything .gitignore ignores: the artifact cache, bytecode
## droppings, egg-info, and smoke output.
clean-cache:
	rm -rf .repro-cache smoke-results.json
	find . -name __pycache__ -type d -prune -exec rm -rf {} +
	rm -rf *.egg-info src/*.egg-info .pytest_cache .benchmarks
