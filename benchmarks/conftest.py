"""Shared fixtures for the figure-regeneration benchmarks.

Each benchmark runs one experiment harness under the quick profile (a
reduced sweep; pass ``REPRO_PROFILE=full`` in the environment to run the
paper-shaped sweep), prints the regenerated table, and writes it to
``results/<figure>.txt``.
"""

import os
import pathlib

import pytest

from repro.experiments.runner import ExperimentContext, ExperimentProfile

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def profile() -> ExperimentProfile:
    if os.environ.get("REPRO_PROFILE") == "full":
        return ExperimentProfile.full()
    return ExperimentProfile.quick()


@pytest.fixture(scope="session")
def _session_context(profile) -> ExperimentContext:
    return ExperimentContext(profile)


@pytest.fixture
def context(_session_context) -> ExperimentContext:
    # Share binaries/traces across benchmarks, but never timing results:
    # each benchmark must measure its own simulation work, not a replay
    # of a memo another benchmark populated.
    return _session_context.with_fresh_timing()


def publish(name: str, table: str) -> None:
    """Print a regenerated table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    print()
    print(table)
