"""Figure 9: dynamic saves and restores eliminated (LVM vs LVM-Stack)."""

from benchmarks.conftest import publish
from repro.experiments import fig9_eliminated


def test_fig9_eliminated(benchmark, profile, context):
    result = benchmark.pedantic(
        fig9_eliminated.run, args=(profile, context), rounds=1, iterations=1,
    )
    publish("fig9_eliminated", result.format_table())
    # Paper shape: the LVM-Stack scheme roughly doubles the LVM scheme
    # (paper averages: 46.5% of saves+restores, 4.8% of instructions).
    lvm = result.average("LVM", "pct_of_saves_restores")
    stack = result.average("LVM-Stack", "pct_of_saves_restores")
    assert 1.5 * lvm <= stack <= 2.5 * lvm
    assert stack > 20.0
