#!/usr/bin/env python
"""Multi-tenant load/SLO benchmark: percentile latency at saturation.

Drives a live service (in-process :class:`~repro.service.server
.ServerThread`, real sockets, the same urllib client the CLI uses)
through the deterministic multi-client harness in
``tests/service/loadsim.py`` and records the numbers mean-req/s
benchmarks hide:

* **mixed** — the headline: N tenants submitting 10k+ seeded
  warm/cold jobs closed-loop, with p50/p95/p99 end-to-end latency,
  saturation throughput, rejection counts, and the exactly-once
  ledger (no accepted job lost, every distinct cold cell simulated
  once);
* **overload** — cold-heavy fire-and-forget tenants hammering a tight
  per-client quota, so the 429/Retry-After path and the
  rejection-rate numbers come from real sustained overload, and the
  accepted subset still completes exactly once.

The full run merges a ``load`` section into ``BENCH_service.json``
(preserving the existing cold/warm metrics); ``--smoke`` runs a
seconds-bounded miniature and writes a standalone report instead —
the CI gate that the harness and the section shape stay healthy.

Usage::

    python benchmarks/perf/bench_load.py
    python benchmarks/perf/bench_load.py --clients 8 --jobs-per-client 1300
    python benchmarks/perf/bench_load.py --smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
from datetime import date
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tests" / "service"))

from loadsim import (  # noqa: E402
    exactly_once_ledger,
    run_load,
    summarize,
    uniform_clients,
)

from repro.service.server import ServerThread  # noqa: E402

#: Keys every phase summary must carry (the smoke gate's contract, and
#: what dashboards reading BENCH_service.json may rely on).
REQUIRED_KEYS = (
    "clients", "jobs_offered", "jobs_accepted", "jobs_rejected_final",
    "retries", "wall_seconds", "throughput_rps",
    "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
    "warm_latency_p99_ms",
    "rejected_quota", "rejected_depth", "rejected_size",
    "exactly_once",
)


def validate_section(section: dict) -> None:
    """Loud structural check: required keys, ordered percentiles."""
    for phase in ("mixed", "overload"):
        summary = section[phase]
        missing = [key for key in REQUIRED_KEYS if key not in summary]
        if missing:
            raise SystemExit(f"load.{phase} is missing keys: {missing}")
        if not (summary["latency_p50_ms"] <= summary["latency_p95_ms"]
                <= summary["latency_p99_ms"]):
            raise SystemExit(f"load.{phase}: percentiles out of order")
        if not summary["exactly_once"]["exactly_once"]:
            raise SystemExit(
                f"load.{phase}: exactly-once ledger failed: "
                f"{summary['exactly_once']}"
            )


def bench_mixed(tmp: Path, clients: int, jobs_each: int, warm_ratio: float,
                seed: int) -> dict:
    """The headline phase: seeded mixed traffic, closed loop."""
    with ServerThread(
        tmp / "mixed-queue", tmp / "mixed-cache",
        workers=2, max_batch=8, quota=64, max_queue_depth=512,
    ) as service:
        result = run_load(
            service.url,
            uniform_clients(clients, jobs_each, warm_ratio=warm_ratio,
                            max_retries=6),
            seed=seed, settle=True,
        )
        summary = summarize(result)
        summary["exactly_once"] = exactly_once_ledger(result, service.url)
    return summary


def bench_overload(tmp: Path, clients: int, jobs_each: int,
                   seed: int) -> dict:
    """Sustained overload: cold-heavy fire-and-forget vs a tight quota."""
    with ServerThread(
        tmp / "over-queue", tmp / "over-cache",
        workers=2, max_batch=8, quota=4,
    ) as service:
        result = run_load(
            service.url,
            uniform_clients(clients, jobs_each, warm_ratio=0.0,
                            wait=False, max_retries=1,
                            backoff_base=0.02, backoff_cap=0.5,
                            prefix="hostile"),
            seed=seed, settle=True,
        )
        summary = summarize(result)
        summary["exactly_once"] = exactly_once_ledger(result, service.url)
    return summary


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--clients", type=int, default=8, metavar="N",
        help="tenants in the mixed phase (default: 8)",
    )
    parser.add_argument(
        "--jobs-per-client", type=int, default=1300, metavar="N",
        help="jobs each mixed-phase tenant offers (default: 1300, so "
             "the headline run is a 10k+ job population)",
    )
    parser.add_argument(
        "--warm-ratio", type=float, default=0.9, metavar="R",
        help="warm (cache-hit) fraction of mixed traffic (default: 0.9)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="schedule seed (default: 0)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-bounded miniature run; writes a standalone report "
             "and never touches BENCH_service.json",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="report destination (default: BENCH_service.json at the "
             "repo root; BENCH_load_smoke.json with --smoke)",
    )
    args = parser.parse_args()

    if args.smoke:
        clients, jobs_each = 4, 30
        overload_clients, overload_jobs = 4, 15
        output = Path(args.output or REPO_ROOT / "BENCH_load_smoke.json")
    else:
        clients, jobs_each = args.clients, args.jobs_per_client
        overload_clients, overload_jobs = 4, 100
        output = Path(args.output or REPO_ROOT / "BENCH_service.json")

    with tempfile.TemporaryDirectory(prefix="bench-load-") as tmp:
        tmp_path = Path(tmp)
        total = clients * jobs_each
        print(f"mixed: {clients} tenants x {jobs_each} jobs "
              f"({total} total, warm ratio {args.warm_ratio}) ...",
              flush=True)
        mixed = bench_mixed(tmp_path, clients, jobs_each,
                            args.warm_ratio, args.seed)
        print(f"  {mixed['jobs_accepted']}/{mixed['jobs_offered']} "
              f"accepted at {mixed['throughput_rps']} jobs/s; "
              f"p50 {mixed['latency_p50_ms']}ms / "
              f"p95 {mixed['latency_p95_ms']}ms / "
              f"p99 {mixed['latency_p99_ms']}ms")
        print(f"overload: {overload_clients} hostile tenants x "
              f"{overload_jobs} cold jobs vs quota=4 ...", flush=True)
        overload = bench_overload(tmp_path, overload_clients,
                                  overload_jobs, args.seed)
        print(f"  {overload['jobs_accepted']}/{overload['jobs_offered']} "
              f"accepted, {overload['rejected_quota']} quota refusals, "
              f"{overload['retries']} retries")

    section = {
        "config": {
            "clients": clients,
            "jobs_per_client": jobs_each,
            "warm_ratio": args.warm_ratio,
            "seed": args.seed,
            "smoke": args.smoke,
        },
        "mixed": mixed,
        "overload": overload,
    }
    validate_section(section)

    if args.smoke:
        report = {
            "bench": "service-load-smoke",
            "date": date.today().isoformat(),
            "load": section,
        }
    else:
        # Merge, never overwrite: the cold/warm metrics bench_service.py
        # maintains live in the same committed file.
        try:
            with open(output, encoding="utf-8") as handle:
                report = json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            report = {"bench": "service", "metrics": {}}
        report["date"] = date.today().isoformat()
        report.setdefault("host", {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "system": platform.system(),
        })
        report.setdefault("metrics", {})["load"] = section

    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
