#!/usr/bin/env python
"""Service performance harness: request throughput and batch latency.

Measures the simulation service's two interesting regimes and writes
the numbers to ``BENCH_service.json`` at the repo root (committed, so
the service's perf trajectory is tracked in-tree like the simulation
core's):

* **warm requests/sec** — sequential and concurrent submit-poll-fetch
  round trips for a request whose result is already in the artifact
  cache (the instant-response path: one journal append, one pickle
  read, zero simulation);
* **cold batch latency** — wall-clock seconds from first HTTP submit to
  result for a tiny sweep against an empty cache (queue + dispatch +
  simulate + assemble + store), and for a fan-out of distinct sweeps
  submitted together — once fused into one dispatcher batch
  (``workers=1``) and once sharded across four concurrent dispatch
  workers (``workers=4``, ``max_batch=1``), so the report tracks the
  scale-out dimension alongside the serial baseline;
* **fault-containment overhead** — the same cold single job and warm
  round trips with ``--job-timeout`` armed (per-cell deadlines, job
  leases, containment bookkeeping), so the report tracks what the
  contained executor costs a healthy workload relative to the
  uncontained baseline above.

The service is hosted in-process (:class:`repro.service.server
.ServerThread`) but driven over real sockets through the same urllib
client the CLI uses.

Usage::

    python benchmarks/perf/bench_service.py
    python benchmarks/perf/bench_service.py --warm-requests 200
    python benchmarks/perf/bench_service.py --output /tmp/report.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from datetime import date
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import get_stats, submit_and_wait  # noqa: E402
from repro.service.server import ServerThread  # noqa: E402

#: One-cell tiny request: the unit of warm-path round trips.
WARM_PAYLOAD = {"kind": "sweep", "axis": "regfile", "values": ["34"],
                "workloads": ["li_like"], "profile": "tiny"}

#: Distinct single-cell requests for the cold fan-out measurement.
FANOUT_VALUES = ("34", "42", "50", "64")


def _payload(value: str) -> dict:
    return {"kind": "sweep", "axis": "regfile", "values": [value],
            "workloads": ["li_like"], "profile": "tiny"}


def bench_cold(tmp: Path) -> dict:
    """First-ever submission: queue + simulate + assemble + store."""
    with ServerThread(tmp / "cold-queue", tmp / "cold-cache") as service:
        started = time.perf_counter()
        submit_and_wait(service.url, dict(WARM_PAYLOAD), client="bench",
                        timeout=300.0)
        single = time.perf_counter() - started

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=len(FANOUT_VALUES)) as pool:
            list(pool.map(
                lambda value: submit_and_wait(
                    service.url, _payload(value), client="bench",
                    timeout=300.0,
                ),
                FANOUT_VALUES,
            ))
        fanout = time.perf_counter() - started
        stats = get_stats(service.url)["dispatcher"]
    return {
        "single_job_seconds": round(single, 3),
        "fanout_jobs": len(FANOUT_VALUES),
        "fanout_seconds": round(fanout, 3),
        "fanout_batches": stats["batches"],
        "cells_executed": stats["cells_executed"],
    }


def bench_cold_sharded(tmp: Path, workers: int) -> dict:
    """The same cold fan-out, sharded across concurrent dispatch workers.

    ``max_batch=1`` pins one job per batch so the fan-out exercises
    ``workers`` truly concurrent batches instead of one fused one.
    """
    with ServerThread(
        tmp / f"shard{workers}-queue", tmp / f"shard{workers}-cache",
        workers=workers, max_batch=1,
    ) as service:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=len(FANOUT_VALUES)) as pool:
            list(pool.map(
                lambda value: submit_and_wait(
                    service.url, _payload(value), client="bench",
                    timeout=300.0,
                ),
                FANOUT_VALUES,
            ))
        fanout = time.perf_counter() - started
        stats = get_stats(service.url)["dispatcher"]
    return {
        "workers": workers,
        "fanout_jobs": len(FANOUT_VALUES),
        "fanout_seconds": round(fanout, 3),
        "fanout_batches": stats["batches"],
        "overlapped_batches": stats["overlapped_batches"],
        "cells_executed": stats["cells_executed"],
    }


def bench_warm(tmp: Path, requests: int) -> dict:
    """Cache-hit round trips: sequential and 8-way concurrent."""
    with ServerThread(tmp / "warm-queue", tmp / "warm-cache") as service:
        submit_and_wait(service.url, dict(WARM_PAYLOAD), client="bench",
                        timeout=300.0)  # prime the cache

        started = time.perf_counter()
        for _ in range(requests):
            submit_and_wait(service.url, dict(WARM_PAYLOAD), client="bench",
                            timeout=60.0)
        sequential = time.perf_counter() - started

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(
                lambda _: submit_and_wait(
                    service.url, dict(WARM_PAYLOAD), client="bench",
                    timeout=60.0,
                ),
                range(requests),
            ))
        concurrent = time.perf_counter() - started
        stats = get_stats(service.url)["dispatcher"]
    return {
        "requests": requests,
        "sequential_seconds": round(sequential, 3),
        "sequential_rps": round(requests / sequential, 1),
        "concurrent_seconds": round(concurrent, 3),
        "concurrent_rps": round(requests / concurrent, 1),
        "cells_executed": stats["cells_executed"],  # must stay 1 (the prime)
    }


def bench_fault_overhead(tmp: Path, requests: int) -> dict:
    """Cold + warm measurements with the contained executor armed.

    ``job_timeout`` switches execution onto the deadline-enforcing
    path (futures with per-cell deadlines, journaled job leases,
    containment counters); on a healthy workload its overhead should be
    noise, and this dimension keeps that claim measured.
    """
    with ServerThread(
        tmp / "fault-queue", tmp / "fault-cache", job_timeout=120.0,
    ) as service:
        started = time.perf_counter()
        submit_and_wait(service.url, dict(WARM_PAYLOAD), client="bench",
                        timeout=300.0)
        cold_single = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(requests):
            submit_and_wait(service.url, dict(WARM_PAYLOAD), client="bench",
                            timeout=60.0)
        sequential = time.perf_counter() - started
        stats = get_stats(service.url)
    containment = stats["containment"]
    return {
        "job_timeout_seconds": 120.0,
        "cold_single_job_seconds": round(cold_single, 3),
        "warm_requests": requests,
        "warm_sequential_seconds": round(sequential, 3),
        "warm_sequential_rps": round(requests / sequential, 1),
        # Must all stay zero on a healthy run: armed is not triggered.
        "retries": containment["retries"],
        "quarantined": containment["quarantined"],
        "pool_crashes": containment["pool_crashes"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--warm-requests", type=int, default=100, metavar="N",
        help="round trips per warm measurement (default: 100)",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_service.json"),
        metavar="PATH", help="report destination (default: repo root)",
    )
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        tmp_path = Path(tmp)
        print("cold: first submission + 4-way fan-out ...", flush=True)
        cold = bench_cold(tmp_path)
        print(f"  single job {cold['single_job_seconds']}s, "
              f"{cold['fanout_jobs']} distinct jobs in "
              f"{cold['fanout_seconds']}s "
              f"({cold['fanout_batches']} batches)")
        print("cold: same fan-out, 4 dispatch workers ...", flush=True)
        sharded = bench_cold_sharded(tmp_path, workers=4)
        print(f"  {sharded['fanout_jobs']} distinct jobs in "
              f"{sharded['fanout_seconds']}s "
              f"({sharded['fanout_batches']} batches, "
              f"{sharded['overlapped_batches']} overlapped)")
        print(f"warm: {args.warm_requests} cache-hit round trips ...",
              flush=True)
        warm = bench_warm(tmp_path, args.warm_requests)
        print(f"  sequential {warm['sequential_rps']} req/s, "
              f"8-way concurrent {warm['concurrent_rps']} req/s")
        print("fault overhead: same cold + warm with --job-timeout ...",
              flush=True)
        fault = bench_fault_overhead(tmp_path, args.warm_requests)
        print(f"  contained cold {fault['cold_single_job_seconds']}s, "
              f"warm sequential {fault['warm_sequential_rps']} req/s")

    # Merge, never overwrite: the `load` section bench_load.py maintains
    # lives in the same committed file.
    try:
        with open(args.output, encoding="utf-8") as handle:
            report = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        report = {"bench": "service", "metrics": {}}
    report["bench"] = "service"
    report["date"] = date.today().isoformat()
    report["host"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
    }
    report.setdefault("metrics", {}).update({
        "cold": cold,
        "cold_sharded": sharded,
        "warm": warm,
        "fault_overhead": fault,
    })
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
