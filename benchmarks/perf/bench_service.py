#!/usr/bin/env python
"""Service performance harness: request throughput and batch latency.

Measures the simulation service's two interesting regimes and writes
the numbers to ``BENCH_service.json`` at the repo root (committed, so
the service's perf trajectory is tracked in-tree like the simulation
core's):

* **warm requests/sec** — sequential and concurrent submit-poll-fetch
  round trips for a request whose result is already in the artifact
  cache (the instant-response path: one journal append, one pickle
  read, zero simulation);
* **cold batch latency** — wall-clock seconds from first HTTP submit to
  result for a tiny sweep against an empty cache (queue + dispatch +
  simulate + assemble + store), and for a fan-out of distinct sweeps
  submitted together — once fused into one dispatcher batch
  (``workers=1``) and once sharded across four concurrent dispatch
  workers (``workers=4``, ``max_batch=1``), so the report tracks the
  scale-out dimension alongside the serial baseline;
* **fault-containment overhead** — the same cold single job and warm
  round trips with ``--job-timeout`` armed (per-cell deadlines, job
  leases, containment bookkeeping), so the report tracks what the
  contained executor costs a healthy workload relative to the
  uncontained baseline above.  The contained server runs with the
  persistent warm pool, so this dimension also records what
  pre-warming buys the contained cold path (pool lifecycle counters
  included);
* the **sharded** fan-out runs with the warm pool too — scale-out is
  where pool-per-batch spin-up used to drown the win;
* **observability overhead** — the same warm sequential round trips
  with zero and with one live SSE subscriber on ``/v1/events``
  (span-stamping is always on), pinning the claim that the live
  operations surface is near-zero-cost when nobody is watching and
  cheap when somebody is.

The service is hosted in-process (:class:`repro.service.server
.ServerThread`) but driven over real sockets through the same urllib
client the CLI uses.

Each section updates only its own key in the committed report — a
partial run (``--skip-*``) preserves every other section verbatim,
including the ``load`` section maintained by bench_load.py.

Usage::

    python benchmarks/perf/bench_service.py
    python benchmarks/perf/bench_service.py --warm-requests 200
    python benchmarks/perf/bench_service.py --skip-warm --skip-fault
    python benchmarks/perf/bench_service.py --output /tmp/report.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from datetime import date
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.service.client import (  # noqa: E402
    get_stats,
    submit_and_wait,
)
from repro.service.server import ServerThread  # noqa: E402

#: One-cell tiny request: the unit of warm-path round trips.
WARM_PAYLOAD = {"kind": "sweep", "axis": "regfile", "values": ["34"],
                "workloads": ["li_like"], "profile": "tiny"}

#: Distinct single-cell requests for the cold fan-out measurement.
FANOUT_VALUES = ("34", "42", "50", "64")


def _payload(value: str) -> dict:
    return {"kind": "sweep", "axis": "regfile", "values": [value],
            "workloads": ["li_like"], "profile": "tiny"}


def _wait_pool_live(service, timeout: float = 60.0) -> None:
    """Block until the server's eager warm-up finishes.

    Pre-warming is a *startup* cost, not a request cost; measuring a
    cold request while the pool is still spawning would charge warmup
    to the request and misstate what a warmed server delivers.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        pool = get_stats(service.url)["workers"].get("warm_pool")
        if pool is not None and pool["live"]:
            return
        time.sleep(0.05)
    raise RuntimeError("warm pool never came up")


def bench_cold(tmp: Path) -> dict:
    """First-ever submission: queue + simulate + assemble + store."""
    with ServerThread(tmp / "cold-queue", tmp / "cold-cache") as service:
        started = time.perf_counter()
        submit_and_wait(service.url, dict(WARM_PAYLOAD), client="bench",
                        timeout=300.0)
        single = time.perf_counter() - started

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=len(FANOUT_VALUES)) as pool:
            list(pool.map(
                lambda value: submit_and_wait(
                    service.url, _payload(value), client="bench",
                    timeout=300.0,
                ),
                FANOUT_VALUES,
            ))
        fanout = time.perf_counter() - started
        stats = get_stats(service.url)["dispatcher"]
    return {
        "single_job_seconds": round(single, 3),
        "fanout_jobs": len(FANOUT_VALUES),
        "fanout_seconds": round(fanout, 3),
        "fanout_batches": stats["batches"],
        "cells_executed": stats["cells_executed"],
    }


def bench_cold_sharded(tmp: Path, workers: int) -> dict:
    """The same cold fan-out, sharded across concurrent dispatch workers.

    ``max_batch=1`` pins one job per batch so the fan-out exercises
    ``workers`` truly concurrent batches instead of one fused one.  The
    server runs with the persistent warm pool (pre-warmed before the
    clock starts), so no batch pays executor spin-up — the regime the
    sharded configuration is meant for.
    """
    with ServerThread(
        tmp / f"shard{workers}-queue", tmp / f"shard{workers}-cache",
        workers=workers, max_batch=1, warm_pool=True,
    ) as service:
        _wait_pool_live(service)
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=len(FANOUT_VALUES)) as pool:
            list(pool.map(
                lambda value: submit_and_wait(
                    service.url, _payload(value), client="bench",
                    timeout=300.0,
                ),
                FANOUT_VALUES,
            ))
        fanout = time.perf_counter() - started
        stats = get_stats(service.url)
    dispatcher = stats["dispatcher"]
    return {
        "workers": workers,
        "fanout_jobs": len(FANOUT_VALUES),
        "fanout_seconds": round(fanout, 3),
        "fanout_batches": dispatcher["batches"],
        "overlapped_batches": dispatcher["overlapped_batches"],
        "cells_executed": dispatcher["cells_executed"],
        "warm_pool": stats["workers"]["warm_pool"],
    }


def bench_warm(tmp: Path, requests: int) -> dict:
    """Cache-hit round trips: sequential and 8-way concurrent."""
    with ServerThread(tmp / "warm-queue", tmp / "warm-cache") as service:
        submit_and_wait(service.url, dict(WARM_PAYLOAD), client="bench",
                        timeout=300.0)  # prime the cache

        started = time.perf_counter()
        for _ in range(requests):
            submit_and_wait(service.url, dict(WARM_PAYLOAD), client="bench",
                            timeout=60.0)
        sequential = time.perf_counter() - started

        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(
                lambda _: submit_and_wait(
                    service.url, dict(WARM_PAYLOAD), client="bench",
                    timeout=60.0,
                ),
                range(requests),
            ))
        concurrent = time.perf_counter() - started
        stats = get_stats(service.url)["dispatcher"]
    return {
        "requests": requests,
        "sequential_seconds": round(sequential, 3),
        "sequential_rps": round(requests / sequential, 1),
        "concurrent_seconds": round(concurrent, 3),
        "concurrent_rps": round(requests / concurrent, 1),
        "cells_executed": stats["cells_executed"],  # must stay 1 (the prime)
    }


def bench_fault_overhead(tmp: Path, requests: int) -> dict:
    """Cold + warm measurements with the contained executor armed.

    ``job_timeout`` switches execution onto the deadline-enforcing
    path (futures with per-cell deadlines, journaled job leases,
    containment counters); on a healthy workload its overhead should be
    noise, and this dimension keeps that claim measured.  The warm pool
    is on and pre-warmed before the clock starts: the contained cold
    path used to pay a full executor spin-up per batch, and this
    number is what remains of it.
    """
    with ServerThread(
        tmp / "fault-queue", tmp / "fault-cache", job_timeout=120.0,
        warm_pool=True,
    ) as service:
        _wait_pool_live(service)
        started = time.perf_counter()
        submit_and_wait(service.url, dict(WARM_PAYLOAD), client="bench",
                        timeout=300.0)
        cold_single = time.perf_counter() - started

        started = time.perf_counter()
        for _ in range(requests):
            submit_and_wait(service.url, dict(WARM_PAYLOAD), client="bench",
                            timeout=60.0)
        sequential = time.perf_counter() - started
        stats = get_stats(service.url)
    containment = stats["containment"]
    return {
        "job_timeout_seconds": 120.0,
        "cold_single_job_seconds": round(cold_single, 3),
        "warm_requests": requests,
        "warm_sequential_seconds": round(sequential, 3),
        "warm_sequential_rps": round(requests / sequential, 1),
        # Must all stay zero on a healthy run: armed is not triggered.
        "retries": containment["retries"],
        "quarantined": containment["quarantined"],
        "pool_crashes": containment["pool_crashes"],
        "warm_pool": stats["workers"]["warm_pool"],
    }


def bench_observability(tmp: Path, requests: int) -> dict:
    """Warm round trips with 0 vs 1 SSE subscriber attached.

    Span stamps are always on (they ride every queue transition), so
    the 0-subscriber number *includes* stamping — the overhead being
    pinned is the whole instrumentation path.  With a subscriber, every
    transition and access record is also serialized onto the stream;
    the delta is what a live dashboard costs the request path.

    Throughput on a shared box drifts tens of percent over seconds,
    and the request path itself slows slightly as the run ages (the
    coalesced job's attach list and the queue journal both grow), so
    whichever phase runs second in a pair is structurally
    disadvantaged.  The design is ABBA: five trial pairs with the
    phase order alternating each pair (idle-first, then
    subscribed-first, ...).  The headline overhead is the ratio of the
    *summed* phase times — order bias cancels across pairs, and
    averaging over all pairs smooths box drift that makes any single
    pair swing tens of percent (the per-pair deltas are reported too,
    as a noise gauge).

    The subscriber runs as a separate ``repro watch --json``
    *process*, like a real dashboard would: an in-process tail thread
    would contend with the server for the GIL and charge the client's
    own ``json.loads`` work to the server's account.
    """
    import os
    import subprocess

    trials = 5
    chunk = max(60, requests // trials)

    def phase(service) -> float:
        started = time.perf_counter()
        for _ in range(chunk):
            submit_and_wait(service.url, dict(WARM_PAYLOAD),
                            client="bench", timeout=60.0)
        return time.perf_counter() - started

    def wait_for_subscribers(service, count: int) -> None:
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if get_stats(service.url)["events"]["subscribers"] == count:
                return
            time.sleep(0.05)
        raise RuntimeError(f"subscriber count never reached {count}")

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    pairs = []
    with ServerThread(tmp / "obs-queue", tmp / "obs-cache") as service:

        def subscribed_phase_run() -> float:
            watcher = subprocess.Popen(
                [sys.executable, "-m", "repro", "watch",
                 "--url", service.url, "--json"],
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
                env=env,
            )
            try:
                wait_for_subscribers(service, 1)
                return phase(service)
            finally:
                watcher.terminate()
                watcher.wait(timeout=10.0)
                # The server only notices the dead socket on its next
                # write; one more round trip publishes an event, which
                # makes that write happen so the stream is reaped
                # before the next idle phase starts.
                submit_and_wait(service.url, dict(WARM_PAYLOAD),
                                client="bench", timeout=60.0)
                wait_for_subscribers(service, 0)

        submit_and_wait(service.url, dict(WARM_PAYLOAD), client="bench",
                        timeout=300.0)  # prime the cache
        for _ in range(min(requests, 50)):  # warm the request path
            submit_and_wait(service.url, dict(WARM_PAYLOAD),
                            client="bench", timeout=60.0)

        for trial in range(trials):
            if trial % 2 == 0:
                idle_phase = phase(service)
                subscribed_phase = subscribed_phase_run()
            else:
                subscribed_phase = subscribed_phase_run()
                idle_phase = phase(service)
            pairs.append((idle_phase, subscribed_phase))
        bus = get_stats(service.url)["events"]
    total = trials * chunk
    idle_seconds = sum(idle for idle, _ in pairs)
    subscribed_seconds = sum(sub for _, sub in pairs)
    idle_rps = total / idle_seconds
    subscribed_rps = total / subscribed_seconds
    per_pair_pct = [
        (sub - idle) / idle * 100 for idle, sub in pairs
    ]
    return {
        "warm_requests_per_phase": chunk,
        "trial_pairs": trials,
        "no_subscriber_seconds": round(idle_seconds, 3),
        "no_subscriber_rps": round(idle_rps, 1),
        "one_subscriber_seconds": round(subscribed_seconds, 3),
        "one_subscriber_rps": round(subscribed_rps, 1),
        "overhead_pct": round(
            max(0.0, (subscribed_seconds - idle_seconds)
               / idle_seconds * 100), 1
        ),
        "overhead_pct_per_pair": [
            round(pct, 1) for pct in per_pair_pct
        ],
        "events_published": bus["published"],
        "events_dropped": bus["dropped"],
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--warm-requests", type=int, default=100, metavar="N",
        help="round trips per warm measurement (default: 100)",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_service.json"),
        metavar="PATH", help="report destination (default: repo root)",
    )
    parser.add_argument(
        "--skip-cold", action="store_true",
        help="skip the serial cold section (its report key is preserved)",
    )
    parser.add_argument(
        "--skip-sharded", action="store_true",
        help="skip the sharded cold fan-out section",
    )
    parser.add_argument(
        "--skip-warm", action="store_true",
        help="skip the warm round-trip section",
    )
    parser.add_argument(
        "--skip-fault", action="store_true",
        help="skip the fault-containment overhead section",
    )
    parser.add_argument(
        "--skip-observability", action="store_true",
        help="skip the observability overhead section (0 vs 1 SSE "
             "subscriber on the warm path)",
    )
    args = parser.parse_args()

    sections = {}
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        tmp_path = Path(tmp)
        if not args.skip_cold:
            print("cold: first submission + 4-way fan-out ...", flush=True)
            cold = sections["cold"] = bench_cold(tmp_path)
            print(f"  single job {cold['single_job_seconds']}s, "
                  f"{cold['fanout_jobs']} distinct jobs in "
                  f"{cold['fanout_seconds']}s "
                  f"({cold['fanout_batches']} batches)")
        if not args.skip_sharded:
            print("cold: same fan-out, 4 dispatch workers + warm pool ...",
                  flush=True)
            sharded = sections["cold_sharded"] = bench_cold_sharded(
                tmp_path, workers=4
            )
            print(f"  {sharded['fanout_jobs']} distinct jobs in "
                  f"{sharded['fanout_seconds']}s "
                  f"({sharded['fanout_batches']} batches, "
                  f"{sharded['overlapped_batches']} overlapped, "
                  f"{sharded['warm_pool']['reuses']} pool reuses)")
        if not args.skip_warm:
            print(f"warm: {args.warm_requests} cache-hit round trips ...",
                  flush=True)
            warm = sections["warm"] = bench_warm(tmp_path, args.warm_requests)
            print(f"  sequential {warm['sequential_rps']} req/s, "
                  f"8-way concurrent {warm['concurrent_rps']} req/s")
        if not args.skip_fault:
            print("fault overhead: cold + warm, --job-timeout + warm "
                  "pool ...", flush=True)
            fault = sections["fault_overhead"] = bench_fault_overhead(
                tmp_path, args.warm_requests
            )
            print(f"  contained cold {fault['cold_single_job_seconds']}s, "
                  f"warm sequential {fault['warm_sequential_rps']} req/s")
        if not args.skip_observability:
            print(f"observability: {args.warm_requests} warm round "
                  "trips, 0 vs 1 SSE subscriber ...", flush=True)
            obs = sections["observability_overhead"] = bench_observability(
                tmp_path, args.warm_requests
            )
            print(f"  no subscriber {obs['no_subscriber_rps']} req/s, "
                  f"one subscriber {obs['one_subscriber_rps']} req/s "
                  f"({obs['overhead_pct']}% overhead, "
                  f"{obs['events_published']} events published)")

    # Merge, never overwrite: only the sections measured above are
    # replaced.  Everything else in the committed report — skipped
    # sections, and the `load` section bench_load.py maintains — is
    # preserved verbatim.
    try:
        with open(args.output, encoding="utf-8") as handle:
            report = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        report = {"bench": "service", "metrics": {}}
    report["bench"] = "service"
    report["date"] = date.today().isoformat()
    report["host"] = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "system": platform.system(),
    }
    report.setdefault("metrics", {}).update(sections)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
