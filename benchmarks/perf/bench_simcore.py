#!/usr/bin/env python
"""Simulation-core performance harness.

Measures the throughput of the two simulation hot paths and the
end-to-end experiment pipeline, and writes the numbers to a JSON file
(``BENCH_simcore.json`` at the repo root by convention) so the perf
trajectory of the simulator is tracked in-tree, PR over PR:

* **functional** — simulated instructions per second of the functional
  emulator, with and without trace collection;
* **timing** — simulated instructions per second of the out-of-order
  core replaying a trace on the Figure 2 machine;
* **superblocks** — the compiled shape of the hot workload (blocks,
  mean block length) and fused-dispatch vs per-pc-dispatch throughput;
* **run-all** — wall-clock seconds of ``python -m repro run-all`` on a
  chosen profile, cold (fresh cache directory; everything simulated and
  stored) and warm (second invocation; everything replayed from the
  artifact cache).

Usage::

    python benchmarks/perf/bench_simcore.py                  # quick profile
    python benchmarks/perf/bench_simcore.py --profile tiny   # CI-sized
    python benchmarks/perf/bench_simcore.py --skip-run-all   # hot loops only
    python benchmarks/perf/bench_simcore.py --baseline old.json

``--baseline`` merges a previous output (e.g. one produced by running
this same script on the pre-optimization tree) into the report and
computes speedups; the committed ``BENCH_simcore.json`` records the
before/after of the columnar-trace + specialized-dispatch rewrite, both
sides measured on the same machine.

The harness is intentionally import-light and API-stable (it only uses
``run_program``, ``simulate``, and the CLI) so the identical file can be
dropped onto older revisions of this repo to produce comparable
baselines.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import subprocess
import sys
import tempfile
import time
from datetime import date
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.dvi.config import DVIConfig  # noqa: E402
from repro.sim.config import MachineConfig  # noqa: E402
from repro.sim.functional import run_program  # noqa: E402
from repro.sim.ooo.core import simulate  # noqa: E402
from repro.workloads.suite import get_program  # noqa: E402

try:  # superblocks landed after the specialization rewrite; keep this
    # harness droppable onto older trees (the dimension is just skipped).
    from repro.sim.compile import compile_program  # noqa: E402
except ImportError:  # pragma: no cover - baseline revisions only
    compile_program = None

#: Workload used for the hot-loop measurements (procedure-heavy, mixed
#: ALU/memory/control — representative of the suite).
HOT_WORKLOAD = "li_like"
#: Repetitions for the hot-loop measurements; the best time is reported
#: (standard practice: the minimum is the least noise-contaminated).
REPEATS = 3


def _best(measure, repeats: int = REPEATS) -> float:
    return min(measure() for _ in range(repeats))


def bench_functional(*, collect_trace: bool) -> dict:
    program = get_program(HOT_WORKLOAD, 1)
    insts = 0

    def measure() -> float:
        nonlocal insts
        started = time.perf_counter()
        result = run_program(
            program, DVIConfig.none(), collect_trace=collect_trace
        )
        elapsed = time.perf_counter() - started
        insts = result.stats.program_insts
        return elapsed

    elapsed = _best(measure)
    return {
        "instructions": insts,
        "seconds": round(elapsed, 4),
        "insts_per_sec": round(insts / elapsed),
    }


def bench_timing() -> dict:
    program = get_program(HOT_WORKLOAD, 1)
    trace = run_program(program, DVIConfig.none(), collect_trace=True).trace
    config = MachineConfig.micro97()
    committed = 0

    def measure() -> float:
        nonlocal committed
        started = time.perf_counter()
        stats = simulate(config, trace)
        elapsed = time.perf_counter() - started
        committed = stats.committed
        return elapsed

    elapsed = _best(measure)
    return {
        "instructions": committed,
        "seconds": round(elapsed, 4),
        "insts_per_sec": round(committed / elapsed),
    }


def bench_superblocks() -> dict:
    """Fused-block dispatch vs pure per-pc dispatch, same workload.

    Reports the static shape of the compiled program (blocks, mean
    block length, fraction of static instructions inside fused runs)
    and the dynamic throughput of both dispatch modes, trace on — the
    configuration every experiment cell actually runs.
    """
    program = get_program(HOT_WORKLOAD, 1)
    compiled = compile_program(program)

    def measure(superblocks: bool):
        insts = 0

        def once() -> float:
            nonlocal insts
            started = time.perf_counter()
            result = run_program(
                program, DVIConfig.none(),
                collect_trace=True, superblocks=superblocks,
            )
            elapsed = time.perf_counter() - started
            insts = result.stats.program_insts
            return elapsed

        elapsed = _best(once)
        return insts, elapsed

    insts, fused = measure(True)
    _, per_pc = measure(False)
    return {
        "blocks_compiled": compiled.n_blocks,
        "mean_block_len": round(compiled.mean_block_len, 2),
        # Distinct static pcs reachable through fused dispatch (a control
        # transfer appears both as a block tail and as its own entry
        # block, so summed block lengths would overcount).
        "fused_static_coverage": round(
            len({
                pc
                for start, length in compiled.blocks
                for pc in range(start, start + length)
            }) / max(1, compiled.n), 3
        ),
        "instructions": insts,
        "fused_insts_per_sec": round(insts / fused),
        "per_pc_insts_per_sec": round(insts / per_pc),
        "fused_over_per_pc": round(per_pc / fused, 2),
    }


def bench_run_all(profile: str) -> dict:
    """Cold then warm ``run-all`` wall time against a fresh cache dir."""
    cache_dir = tempfile.mkdtemp(prefix="bench-simcore-cache-")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    command = [
        sys.executable, "-m", "repro", "run-all",
        "--profile", profile, "--cache-dir", cache_dir,
    ]
    try:
        timings = []
        for _ in range(2):  # first: cold, second: warm replay
            started = time.perf_counter()
            subprocess.run(
                command, env=env, check=True,
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            timings.append(time.perf_counter() - started)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "profile": profile,
        "cold_seconds": round(timings[0], 2),
        "warm_seconds": round(timings[1], 2),
    }


def _speedups(current: dict, baseline: dict) -> dict:
    """Baseline-over-current ratios for the headline numbers."""
    out = {}
    try:
        out["functional_insts_per_sec"] = round(
            current["functional_trace"]["insts_per_sec"]
            / baseline["functional_trace"]["insts_per_sec"], 2,
        )
        out["timing_insts_per_sec"] = round(
            current["timing"]["insts_per_sec"]
            / baseline["timing"]["insts_per_sec"], 2,
        )
    except (KeyError, ZeroDivisionError):
        pass
    try:
        out["run_all_cold"] = round(
            baseline["run_all"]["cold_seconds"]
            / current["run_all"]["cold_seconds"], 2,
        )
        out["run_all_warm"] = round(
            baseline["run_all"]["warm_seconds"]
            / current["run_all"]["warm_seconds"], 2,
        )
    except (KeyError, ZeroDivisionError):
        pass
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--profile", default="quick", choices=("tiny", "quick", "full"),
        help="run-all profile to measure (default: quick)",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_simcore.json"),
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--skip-run-all", action="store_true",
        help="measure only the hot loops (no end-to-end pipeline runs)",
    )
    parser.add_argument(
        "--baseline", metavar="JSON",
        help="previous bench_simcore output to embed and compute speedups "
             "against",
    )
    args = parser.parse_args(argv)

    metrics = {}
    print("benchmarking functional emulator (trace on)...", flush=True)
    metrics["functional_trace"] = bench_functional(collect_trace=True)
    print("benchmarking functional emulator (trace off)...", flush=True)
    metrics["functional_no_trace"] = bench_functional(collect_trace=False)
    print("benchmarking out-of-order timing core...", flush=True)
    metrics["timing"] = bench_timing()
    if compile_program is not None:
        print("benchmarking superblock dispatch (fused vs per-pc)...",
              flush=True)
        metrics["superblocks"] = bench_superblocks()
    if not args.skip_run_all:
        print(f"benchmarking run-all ({args.profile}, cold+warm)...", flush=True)
        metrics["run_all"] = bench_run_all(args.profile)

    report = {
        "bench": "simcore",
        "date": date.today().isoformat(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "hot_workload": HOT_WORKLOAD,
        "metrics": metrics,
    }
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text(encoding="utf-8"))
        report["baseline"] = baseline.get("metrics", baseline)
        report["speedup"] = _speedups(metrics, report["baseline"])

    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    Path(args.output).write_text(payload, encoding="utf-8")
    print(payload)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
