"""Figure 13: E-DVI annotation overhead (unexploited)."""

from benchmarks.conftest import publish
from repro.experiments import fig13_edvi_overhead


def test_fig13_edvi_overhead(benchmark, profile, context):
    result = benchmark.pedantic(
        fig13_edvi_overhead.run, args=(profile, context),
        rounds=1, iterations=1,
    )
    publish("fig13_edvi_overhead", result.format_table())
    # Paper shape: "E-DVI overhead ... is negligible"; IPC overhead is
    # bounded by the dynamic fetch overhead.
    for row in result.rows:
        assert row.pct_dynamic < 5.0
        for value in row.pct_ipc.values():
            assert value <= row.pct_dynamic + 0.5
