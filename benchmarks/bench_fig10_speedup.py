"""Figure 10: IPC speedups from dead save/restore elimination."""

from benchmarks.conftest import publish
from repro.experiments import fig10_speedup


def test_fig10_speedup(benchmark, profile, context):
    result = benchmark.pedantic(
        fig10_speedup.run, args=(profile, context), rounds=1, iterations=1,
    )
    publish("fig10_speedup", result.format_table())
    # Paper shape: best benchmark gains a few percent (perl: 4.8%), and
    # save elimination alone provides more than half the benefit.
    best = result.best()
    assert best.lvm_stack_speedup > 2.0
    assert best.lvm_speedup > 0.4 * best.lvm_stack_speedup
