"""Figure 5: average IPC vs. physical register file size (three DVI modes)."""

from benchmarks.conftest import publish
from repro.experiments import fig5_regfile_ipc


def test_fig5_regfile_ipc(benchmark, profile, context):
    result = benchmark.pedantic(
        fig5_regfile_ipc.run, args=(profile, context), rounds=1, iterations=1,
    )
    ninety = {mode: result.size_reaching(mode, 0.9) for mode in result.curves}
    publish(
        "fig5_regfile_ipc",
        result.format_table()
        + "\nSizes reaching 90% of each mode's peak IPC: "
        + ", ".join(f"{mode}: {size}" for mode, size in ninety.items()),
    )
    # Paper shape: I-DVI reaches 90% of peak at a smaller file than no DVI.
    assert ninety["I-DVI"] <= ninety["No DVI"]
