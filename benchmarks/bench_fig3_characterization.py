"""Figure 3: benchmark characterization table."""

from benchmarks.conftest import publish
from repro.experiments import fig3_characterization


def test_fig3_characterization(benchmark, profile, context):
    result = benchmark.pedantic(
        fig3_characterization.run, args=(profile, context),
        rounds=1, iterations=1,
    )
    publish(
        "fig3_characterization",
        fig3_characterization.machine_description()
        + "\n\n" + result.format_table(),
    )
    for row in result.rows:
        assert row.dynamic_insts > 0
