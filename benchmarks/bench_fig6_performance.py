"""Figure 6: performance (IPC / register-file cycle time) vs. size."""

from benchmarks.conftest import publish
from repro.experiments import fig6_performance


def test_fig6_performance(benchmark, profile, context):
    result = benchmark.pedantic(
        fig6_performance.run, args=(profile, context), rounds=1, iterations=1,
    )
    publish("fig6_performance", result.format_table())
    # Paper shape: DVI moves the optimal design point to a smaller file
    # (paper: 64 -> 50, a 22% reduction, +1.1% performance).
    assert result.optimized_peak_size <= result.reference_peak_size
    assert result.improvement > 0
