"""Ablation: LVM-Stack capacity sweep (paper: 16 entries suffice)."""

from benchmarks.conftest import publish
from repro.experiments import ablation_lvmstack_depth


def test_ablation_lvmstack_depth(benchmark, profile, context):
    result = benchmark.pedantic(
        ablation_lvmstack_depth.run, args=(profile, context),
        rounds=1, iterations=1,
    )
    publish("ablation_lvmstack_depth", result.format_table())
    # Paper: "a 16-entry mechanism captures nearly 100% of the benefit of
    # an unbounded size structure" (94% on li).
    for row in result.rows:
        assert row.capture_fraction(16) > 0.9
