"""Figure 11: cache-port / issue-width sensitivity of the optimization."""

from benchmarks.conftest import publish
from repro.experiments import fig11_sensitivity


def test_fig11_sensitivity(benchmark, profile, context):
    result = benchmark.pedantic(
        fig11_sensitivity.run, args=(profile, context), rounds=1, iterations=1,
    )
    publish("fig11_sensitivity", result.format_table())
    # Paper shape: "the relative effectiveness of save/restore elimination
    # increases as the number of cache ports decreases."
    one_port = result.lookup("gcc_like", 4, 1).speedup
    three_ports = result.lookup("gcc_like", 4, 3).speedup
    assert one_port > three_ports
    # ijpeg (few saves/restores) is insensitive.
    assert abs(result.lookup("ijpeg_like", 4, 1).speedup) < 3.0
