"""Figure 12: context-switch saves and restores eliminated."""

from benchmarks.conftest import publish
from repro.experiments import fig12_context_switch


def test_fig12_context_switch(benchmark, profile, context):
    result = benchmark.pedantic(
        fig12_context_switch.run, args=(profile, context),
        rounds=1, iterations=1,
    )
    publish("fig12_context_switch", result.format_table())
    # Paper shape: I-DVI alone ~42%, E-DVI + I-DVI ~51%.
    idvi = result.average("pct_eliminated_idvi")
    full = result.average("pct_eliminated_full")
    assert full >= idvi > 20.0
    for measurement in result.scheduler:
        assert measurement.all_correct
