"""Generic typed component registries.

Every pluggable component family in the reproduction — branch predictors,
cache-hierarchy presets, workloads, experiments, sweep axes — registers
named specs in a :class:`Registry`.  The pattern (one directory object,
components self-register at import, lookups fail with the full list of
valid names) is what lets a new predictor or workload be a *declaration*
rather than a new module wired through bespoke plumbing, and what lets
the CLI enumerate every axis a sweep can range over.

Design rules:

* **Names are the interface.**  A registered name is a stable, cache-key-
  safe identifier: specs referenced from
  :class:`~repro.sim.config.MachineConfig` fields flow (as plain strings)
  into the content-addressed artifact cache, so renaming a component is
  an artifact-invalidating change and duplicate registration is an error,
  never a silent overwrite.
* **Lookups fail helpfully.**  :class:`UnknownComponentError` is a
  ``KeyError`` carrying the sorted list of valid names; the CLI turns it
  into an exit-code-2 message instead of a traceback.
* **Registries are data, not behavior.**  A registry maps names to specs
  (usually small frozen dataclasses with a ``build`` callable); what a
  spec *means* is up to the family that owns the registry.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Tuple, TypeVar

__all__ = [
    "DuplicateComponentError",
    "Registry",
    "UnknownComponentError",
]

T = TypeVar("T")


class UnknownComponentError(KeyError):
    """An unregistered name was looked up.

    Carries the registry ``kind`` and the sorted valid names so callers
    (the CLI in particular) can render a friendly message.
    """

    def __init__(self, kind: str, name: str, valid: List[str]) -> None:
        self.kind = kind
        self.name = name
        self.valid = list(valid)
        super().__init__(
            f"no {kind} named {name!r}; valid names: {', '.join(valid)}"
        )

    def __str__(self) -> str:  # KeyError.__str__ repr()s the argument
        return self.args[0]


class DuplicateComponentError(ValueError):
    """A name was registered twice in the same registry."""

    def __init__(self, kind: str, name: str) -> None:
        self.kind = kind
        self.name = name
        super().__init__(f"{kind} {name!r} registered twice")


class Registry(Generic[T]):
    """An ordered name -> spec directory for one component family.

    Iteration and :meth:`names` preserve registration order (which for
    import-time registration is module order — deterministic for a given
    source tree); :meth:`get` raises :class:`UnknownComponentError` with
    the sorted name list on a miss.
    """

    def __init__(self, kind: str) -> None:
        #: Human-readable singular component kind ("predictor", ...).
        self.kind = kind
        self._entries: Dict[str, T] = {}

    def register(self, name: str, spec: T) -> T:
        """Register ``spec`` under ``name``; duplicate names are an error."""
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")
        if name in self._entries:
            raise DuplicateComponentError(self.kind, name)
        self._entries[name] = spec
        return spec

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownComponentError(
                self.kind, name, sorted(self._entries)
            ) from None

    def names(self) -> List[str]:
        """Registered names, in registration order."""
        return list(self._entries)

    def items(self) -> List[Tuple[str, T]]:
        return list(self._entries.items())

    def all(self) -> List[T]:
        return list(self._entries.values())

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {len(self._entries)} entries)"
