"""Per-thread context blocks for the preemptive scheduler.

A context block is what the switch routine of section 6.1 manipulates: the
saved architectural registers plus the saved LVM (written by ``lvm_save``,
consulted to skip dead saves, and reloaded by ``lvm_load`` before the
restores when the thread resumes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.dvi.lvm import ALL_LIVE
from repro.isa import registers as regs


@dataclass
class ContextBlock:
    """Saved state of one descheduled thread."""

    #: Saved register values, indexed by architectural register.
    saved_regs: Dict[int, int] = field(default_factory=dict)
    #: The LVM at switch-out time (the ``lvm_save`` word).
    saved_lvm: int = ALL_LIVE

    def save(self, reg_file: List[int], lvm_mask: int, saveable: int) -> int:
        """Save the live subset of the register file; returns saves executed.

        A register whose LVM bit is clear is dead: its save is eliminated
        (not executed, nothing written to the block).
        """
        self.saved_lvm = lvm_mask
        self.saved_regs.clear()
        executed = 0
        for reg in regs.regs_in_mask(saveable):
            if lvm_mask & (1 << reg):
                self.saved_regs[reg] = reg_file[reg]
                executed += 1
        return executed

    def restore(self, reg_file: List[int], saveable: int) -> int:
        """Restore the live subset into the register file; returns restores.

        Restores are skipped for registers whose *saved* LVM bit is clear —
        the matching save was eliminated, so there is nothing to reload
        (and the dead register's content is irrelevant by definition).
        """
        executed = 0
        for reg in regs.regs_in_mask(saveable):
            if self.saved_lvm & (1 << reg):
                reg_file[reg] = self.saved_regs[reg]
                executed += 1
            else:
                # The save was eliminated; the physical register now holds
                # whatever the previously-running thread left behind.
                # Clobber it with a sentinel so the end-to-end tests prove
                # the thread really never reads an unsaved dead register.
                reg_file[reg] = 0xDEAD_BEEF
        return executed


@dataclass
class SwitchStats:
    """Save/restore accounting across all context switches."""

    switches: int = 0
    saves_executed: int = 0
    restores_executed: int = 0
    saves_possible: int = 0
    restores_possible: int = 0

    @property
    def executed(self) -> int:
        return self.saves_executed + self.restores_executed

    @property
    def possible(self) -> int:
        return self.saves_possible + self.restores_possible

    @property
    def pct_eliminated(self) -> float:
        """Percentage of context-switch saves+restores eliminated."""
        if not self.possible:
            return 0.0
        return 100.0 * (self.possible - self.executed) / self.possible

    @property
    def average_saved(self) -> float:
        """Mean registers actually saved per switch."""
        if not self.switches:
            return 0.0
        return self.saves_executed / self.switches
