"""Preemptive thread scheduling substrate (section 6)."""

from repro.threads.context import ContextBlock, SwitchStats
from repro.threads.scheduler import RoundRobinScheduler, ScheduleResult, ThreadResult

__all__ = [
    "ContextBlock",
    "RoundRobinScheduler",
    "ScheduleResult",
    "SwitchStats",
    "ThreadResult",
]
