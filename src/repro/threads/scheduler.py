"""A preemptive round-robin thread scheduler over the functional emulator.

This is the section 6 substrate: multiple guest programs time-share one
simulated processor, preempted every ``quantum`` instructions.  At each
switch the scheduler behaves exactly like a switch routine built from the
paper's primitives:

* ``lvm_save``: the outgoing thread's LVM is stored in its context block;
* live-stores: only registers the LVM marks live are saved;
* ``lvm_load`` + live-loads: on resume, the saved LVM is reloaded first and
  only registers it marks live are restored.

Preemption points are arbitrary (mid-procedure), which is precisely the
case static techniques cannot optimize — the paper's motivation for doing
this in hardware.  Correctness is checked end-to-end: every thread must
finish with the same exit value and data segment it produces running alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.dvi.config import DVIConfig
from repro.errors import SimulationError
from repro.program.program import Program
from repro.sim.functional import FunctionalSimulator, FunctionalStats
from repro.threads.context import ContextBlock, SwitchStats


@dataclass
class ThreadResult:
    """Outcome of one thread in a multiprogrammed run."""

    name: str
    stats: FunctionalStats
    exit_value: int


@dataclass
class ScheduleResult:
    """Outcome of a multiprogrammed run."""

    threads: List[ThreadResult]
    switch_stats: SwitchStats
    total_steps: int


class RoundRobinScheduler:
    """Preemptively multiplex guest programs on one simulated CPU."""

    def __init__(
        self,
        programs: Sequence[Program],
        dvi: Optional[DVIConfig] = None,
        *,
        quantum: int = 2_000,
        max_total_steps: int = 20_000_000,
    ) -> None:
        if not programs:
            raise ValueError("need at least one program")
        if quantum < 1:
            raise ValueError("quantum must be >= 1")
        self.dvi = dvi if dvi is not None else DVIConfig.none()
        self.quantum = quantum
        self.max_total_steps = max_total_steps
        self._sims = [
            FunctionalSimulator(program, self.dvi, collect_trace=False)
            for program in programs
        ]
        self._contexts = [ContextBlock() for _ in programs]
        self._ever_saved = [False] * len(programs)
        self._saveable = self.dvi.abi.saveable_mask()
        self._n_saveable = bin(self._saveable).count("1")

    def run(self) -> ScheduleResult:
        """Run all threads to completion, switching every quantum."""
        switch_stats = SwitchStats()
        total = 0
        current = -1  # no thread loaded yet
        runnable = set(range(len(self._sims)))

        while runnable:
            if total >= self.max_total_steps:
                raise SimulationError(
                    f"scheduler exceeded {self.max_total_steps} total steps"
                )
            # pick the next runnable thread, round-robin from current+1
            n = len(self._sims)
            next_thread = None
            for offset in range(1, n + 1):
                candidate = (current + offset) % n
                if candidate in runnable:
                    next_thread = candidate
                    break
            assert next_thread is not None

            if next_thread != current:
                if current >= 0 and current in runnable:
                    self._switch_out(current, switch_stats)
                self._switch_in(next_thread, switch_stats, first=current < 0)
                if current >= 0:
                    switch_stats.switches += 1
                current = next_thread

            sim = self._sims[current]
            still_running = sim.execute(self.quantum)
            total += self.quantum
            if not still_running:
                runnable.discard(current)

        return ScheduleResult(
            threads=[
                ThreadResult(
                    name=sim.program.name,
                    stats=sim.stats,
                    exit_value=sim.stats.exit_value,
                )
                for sim in self._sims
            ],
            switch_stats=switch_stats,
            total_steps=total,
        )

    # ------------------------------------------------------------------

    def _switch_out(self, thread: int, stats: SwitchStats) -> None:
        sim = self._sims[thread]
        executed = self._contexts[thread].save(
            sim.regs, sim.engine.save_lvm(), self._saveable
        )
        self._ever_saved[thread] = True
        stats.saves_executed += executed
        stats.saves_possible += self._n_saveable

    def _switch_in(self, thread: int, stats: SwitchStats, *, first: bool) -> None:
        if not self._ever_saved[thread]:
            # First dispatch of this thread: nothing to restore.
            return
        sim = self._sims[thread]
        context = self._contexts[thread]
        # lvm_load precedes the restores (section 6.1).
        sim.engine.load_lvm(context.saved_lvm)
        executed = context.restore(sim.regs, self._saveable)
        stats.restores_executed += executed
        stats.restores_possible += self._n_saveable
