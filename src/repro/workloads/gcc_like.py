"""gcc-like workload: expression-tree construction, folding, and emission.

Mirrors SPEC95 ``gcc``: many small procedures over tree-shaped IR — build
a random expression tree, constant-fold it recursively, then run an
emission pass that walks the tree and appends "instructions" to a buffer
through a shared ``emit_op`` routine.  High call density with varied save
sets, and several genuinely context-sensitive call sites (the emit pass's
registers die before its final ``emit_op`` call; the fold recursion's
sibling register is dead at the first recursive call).
"""

from __future__ import annotations

from repro.isa.registers import (
    A0, A1, A2, S0, S1, S2, S3, T0, T1, T2, T3, V0, ZERO,
)
from repro.program.builder import ProgramBuilder
from repro.program.program import Program
from repro.workloads.common import REGISTRY, Workload

_DEPTH = 6
_NODE_WORDS = 3
_EMIT_RING = 32


def build(scale: int = 1) -> Program:
    """Build the gcc-like program; ``scale`` multiplies the tree count."""
    n_trees = 7 * scale
    b = ProgramBuilder("gcc_like")

    b.zeros("arena", _NODE_WORDS * (1 << (_DEPTH + 1)))
    b.zeros("arena_next", 1)
    b.zeros("emit_buf", _EMIT_RING)
    b.zeros("emit_count", 1)
    b.zeros("checksum", 1)

    # main: s0=tree index, s1=checksum, s2=tree count, s3=current root.
    with b.proc("main", saves=(S0, S1, S2, S3), save_ra=True):
        b.li(S0, 0)
        b.li(S1, 0)
        b.li(S2, n_trees)
        b.label("tree_loop")
        b.la(T0, "arena_next")
        b.sw(ZERO, 0, T0)
        b.li(A0, _DEPTH)
        b.slli(T1, S0, 5)
        b.addi(A1, T1, 0x9E3)
        b.jal("build_tree")
        b.move(S3, V0)  # root (s3 is otherwise unused in main)
        b.move(A0, S3)
        b.jal("fold")
        b.xor(S1, S1, V0)
        b.move(A0, S3)
        b.jal("emit_pass")
        b.add(S1, S1, V0)
        b.addi(S0, S0, 1)
        b.blt(S0, S2, "tree_loop")
        b.la(T0, "checksum")
        b.sw(S1, 0, T0)
        b.move(V0, S1)
        b.halt()

    # new_node(a0=tag, a1=left, a2=right) -> v0.  Leaf allocator.
    with b.proc("new_node"):
        b.la(T0, "arena_next")
        b.lw(T1, 0, T0)
        b.la(T2, "arena")
        b.add(T2, T2, T1)
        b.sw(A0, 0, T2)
        b.sw(A1, 4, T2)
        b.sw(A2, 8, T2)
        b.addi(T1, T1, 4 * _NODE_WORDS)
        b.sw(T1, 0, T0)
        b.move(V0, T2)
        b.epilogue()

    # build_tree(a0=depth, a1=seed) -> v0: like the li builder but with
    # four operator tags (add/sub/mul/xor-shift).
    with b.proc("build_tree", saves=(S0, S1, S2), save_ra=True):
        b.move(S0, A0)
        b.move(S1, A1)
        b.bgtz(S0, "bt_rec")
        b.li(A0, 0)
        b.andi(A1, S1, 0xFFF)
        b.li(A2, 0)
        b.jal("new_node")
        b.j("bt_done")
        b.label("bt_rec")
        b.addi(A0, S0, -1)          # s2 dead at this call
        b.slli(T0, S1, 1)
        b.xori(A1, T0, 0x55)
        b.jal("build_tree")
        b.move(S2, V0)
        b.addi(A0, S0, -1)          # s0 dies here
        b.slli(T0, S1, 2)
        b.addi(A1, T0, 3)
        b.jal("build_tree")
        b.andi(T0, S1, 3)
        b.addi(A0, T0, 1)           # tag 1..4
        b.move(A1, S2)
        b.move(A2, V0)
        b.jal("new_node")
        b.label("bt_done")
        b.epilogue()

    # fold(a0=node) -> v0: recursive constant folding.  s0=node, s1=left.
    with b.proc("fold", saves=(S0, S1), save_ra=True):
        b.lw(T0, 0, A0)
        b.bne(T0, ZERO, "fo_op")
        b.lw(V0, 4, A0)
        b.j("fo_done")
        b.label("fo_op")
        b.move(S0, A0)
        b.lw(A0, 4, S0)             # s1 dead at this call
        b.jal("fold")
        b.move(S1, V0)
        b.lw(A0, 8, S0)
        b.jal("fold")
        b.lw(T0, 0, S0)
        b.li(T1, 1)
        b.beq(T0, T1, "fo_add")
        b.li(T1, 2)
        b.beq(T0, T1, "fo_sub")
        b.li(T1, 3)
        b.beq(T0, T1, "fo_mul")
        b.slli(T2, S1, 1)
        b.xor(V0, T2, V0)
        b.j("fo_store")
        b.label("fo_add")
        b.add(V0, S1, V0)
        b.j("fo_store")
        b.label("fo_sub")
        b.sub(V0, S1, V0)
        b.j("fo_store")
        b.label("fo_mul")
        b.mul(V0, S1, V0)
        b.label("fo_store")
        # fold in place: node becomes a leaf holding the folded value
        b.sw(ZERO, 0, S0)
        b.sw(V0, 4, S0)
        b.label("fo_done")
        b.epilogue()

    # emit_pass(a0=node) -> v0: post-order walk calling emit_op per node.
    # s0=node, s1=left cost.  At the trailing emit_op call both are dead,
    # so the rewriter kills them and emit_op's saves are squashed there.
    with b.proc("emit_pass", saves=(S0, S1), save_ra=True):
        b.lw(T0, 0, A0)
        b.bne(T0, ZERO, "ep_op")
        b.lw(A0, 4, A0)             # s0, s1 dead: leaf emit
        b.jal("emit_op")
        b.j("ep_done")
        b.label("ep_op")
        b.move(S0, A0)
        b.lw(A0, 4, S0)             # s1 dead at this call
        b.jal("emit_pass")
        b.move(S1, V0)
        b.lw(A0, 8, S0)
        b.jal("emit_pass")
        b.add(T0, S1, V0)
        b.lw(T1, 0, S0)
        b.add(A0, T0, T1)           # s0, s1 dead at this call
        b.jal("emit_op")
        b.label("ep_done")
        b.epilogue()

    # emit_op(a0=value) -> v0 cost: append to the emission ring buffer.
    # s0=count, s1=slot address (conservatively saved, often dead at the
    # caller).
    with b.proc("emit_op", saves=(S0, S1)):
        b.la(T0, "emit_count")
        b.lw(S0, 0, T0)
        b.andi(T1, S0, _EMIT_RING - 1)
        b.slli(T1, T1, 2)
        b.la(T2, "emit_buf")
        b.add(S1, T2, T1)
        b.lw(T3, 0, S1)
        b.xor(T3, T3, A0)
        b.sw(T3, 0, S1)
        b.addi(S0, S0, 1)
        b.sw(S0, 0, T0)
        b.andi(V0, A0, 0xFF)
        b.addi(V0, V0, 1)
        b.epilogue()

    return b.build()


WORKLOAD = REGISTRY.register(
    Workload(
        name="gcc_like",
        analog="gcc",
        description="tree build + constant fold + emission pass; many "
                    "small procedures",
        build=build,
    )
)
