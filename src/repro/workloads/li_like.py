"""li-like workload: a recursive expression-tree builder and evaluator.

Mirrors SPEC95 ``li`` (xlisp): deeply recursive tree construction and
evaluation over cons-cell-style nodes in an arena, giving the suite's
highest call density and heavy callee-save traffic.  Elimination arises
from the natural recursion pattern: at the first recursive call a sibling
register is not yet live (``s2`` before the left subtree is built), and at
the second the depth register is already dead — exactly the
context-sensitive liveness that calling conventions cannot express.
"""

from __future__ import annotations

from repro.isa.registers import (
    A0, A1, A2, S0, S1, S2, T0, T1, T2, V0, ZERO,
)
from repro.program.builder import ProgramBuilder
from repro.program.program import Program
from repro.workloads.common import REGISTRY, Workload

_DEPTH = 7  # 2^7 - 1 = 127 nodes per tree
_NODE_WORDS = 3  # [tag, left/value, right]


def build(scale: int = 1) -> Program:
    """Build the li-like program; ``scale`` multiplies the tree count."""
    n_trees = 4 * scale
    b = ProgramBuilder("li_like")

    b.zeros("arena", _NODE_WORDS * (1 << (_DEPTH + 1)))
    b.zeros("arena_next", 1)
    b.zeros("checksum", 1)

    # main: s0=tree index, s1=checksum accumulator, s2=tree count.
    with b.proc("main", saves=(S0, S1, S2), save_ra=True):
        b.li(S0, 0)
        b.li(S1, 0)
        b.li(S2, n_trees)

        b.label("tree_loop")
        # reset the arena bump pointer for each tree
        b.la(T0, "arena_next")
        b.sw(ZERO, 0, T0)
        # build_expr(depth, seed)
        b.li(A0, _DEPTH)
        b.slli(T1, S0, 3)
        b.addi(A1, T1, 0x135)
        b.jal("build_expr")
        # eval(root)
        b.move(A0, V0)
        b.jal("eval")
        # checksum = rotl(checksum, 1) ^ value
        b.slli(T0, S1, 1)
        b.srli(T1, S1, 31)
        b.or_(S1, T0, T1)
        b.xor(S1, S1, V0)
        b.addi(S0, S0, 1)
        b.blt(S0, S2, "tree_loop")

        b.la(T0, "checksum")
        b.sw(S1, 0, T0)
        b.move(V0, S1)
        b.halt()

    # alloc_node(a0=tag, a1=left, a2=right) -> v0 node address.  Leaf
    # procedure: bump-allocates three words from the arena.
    with b.proc("alloc_node"):
        b.la(T0, "arena_next")
        b.lw(T1, 0, T0)
        b.la(T2, "arena")
        b.add(T2, T2, T1)
        b.sw(A0, 0, T2)
        b.sw(A1, 4, T2)
        b.sw(A2, 8, T2)
        b.addi(T1, T1, 4 * _NODE_WORDS)
        b.sw(T1, 0, T0)
        b.move(V0, T2)
        b.epilogue()

    # build_expr(a0=depth, a1=seed) -> v0 node.
    # s0=depth, s1=seed, s2=left child (assigned only on the
    # recursive path, after the first recursive call).
    with b.proc("build_expr", saves=(S0, S1, S2), save_ra=True):
        b.move(S0, A0)
        b.move(S1, A1)
        b.bgtz(S0, "be_rec")
        # leaf node: tag 0, value derived from the seed
        b.li(A0, 0)
        b.andi(A1, S1, 0x1FFF)
        b.li(A2, 0)
        b.jal("alloc_node")
        b.j("be_done")
        b.label("be_rec")
        # left = build_expr(depth-1, seed*2+1)   [s2 dead here]
        b.addi(A0, S0, -1)
        b.slli(T0, S1, 1)
        b.addi(A1, T0, 1)
        b.jal("build_expr")
        b.move(S2, V0)
        # right = build_expr(depth-1, seed*3+7)  [s0 dead after arg setup]
        b.addi(A0, S0, -1)
        b.slli(T0, S1, 1)
        b.add(T0, T0, S1)
        b.addi(A1, T0, 7)
        b.jal("build_expr")
        # op node: tag in 1..3 from the seed    [s1, s2 die at this call]
        b.li(T1, 3)
        b.rem(T0, S1, T1)
        b.addi(A0, T0, 1)
        b.move(A1, S2)
        b.move(A2, V0)
        b.jal("alloc_node")
        b.label("be_done")
        b.epilogue()

    # eval(a0=node) -> v0 value.  s0=node, s1=left value.
    with b.proc("eval", saves=(S0, S1), save_ra=True):
        b.lw(T0, 0, A0)
        b.bne(T0, ZERO, "ev_op")
        # leaf: return the stored value
        b.lw(V0, 4, A0)
        b.j("ev_done")
        b.label("ev_op")
        b.move(S0, A0)
        # left value                               [s1 dead at this call]
        b.lw(A0, 4, S0)
        b.jal("eval")
        b.move(S1, V0)
        # right value                              [s0, s1 both live]
        b.lw(A0, 8, S0)
        b.jal("eval")
        # combine by tag
        b.lw(T0, 0, S0)
        b.li(T1, 1)
        b.beq(T0, T1, "ev_add")
        b.li(T2, 2)
        b.beq(T0, T2, "ev_sub")
        b.mul(V0, S1, V0)
        b.j("ev_done")
        b.label("ev_add")
        b.add(V0, S1, V0)
        b.j("ev_done")
        b.label("ev_sub")
        b.sub(V0, S1, V0)
        b.label("ev_done")
        b.epilogue()

    return b.build()


WORKLOAD = REGISTRY.register(
    Workload(
        name="li_like",
        analog="li (xlisp)",
        description="recursive expression build + eval; highest call density",
        build=build,
    )
)
