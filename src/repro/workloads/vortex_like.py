"""vortex-like workload: an object store with hashed index.

Mirrors SPEC95 ``vortex``: an object database exercised through layered
accessor procedures — inserts allocate fixed-shape records and register
them in an open-addressing hash index; queries probe the index and fold a
record checksum; updates rewrite record fields.  The mid-level procedures
(``do_insert``/``do_query``/``do_update``) hold setup state in a
callee-saved register that dies before their trailing helper calls, which
is where the E-DVI rewriter earns its keep.
"""

from __future__ import annotations

from repro.isa.registers import (
    A0, A1, S0, S1, S2, S3, T0, T1, T2, T3, T4, T5, T6, V0, ZERO,
)
from repro.program.builder import ProgramBuilder
from repro.program.program import Program
from repro.workloads.common import REGISTRY, Workload, emit_lcg_step

_REC_WORDS = 8  # key, 6 data fields, checksum slot
_INDEX_BITS = 10
_INDEX_SIZE = 1 << _INDEX_BITS


def build(scale: int = 1) -> Program:
    """Build the vortex-like program; ``scale`` multiplies the op count."""
    n_ops = 150 * scale
    max_records = min(n_ops + 4, _INDEX_SIZE // 2)
    b = ProgramBuilder("vortex_like")

    b.zeros("records", _REC_WORDS * max_records)
    b.zeros("rec_count", 1)
    # index entries: 0 = empty, else record address
    b.zeros("index", _INDEX_SIZE)
    b.zeros("checksum", 1)

    # main: s0=op counter, s1=lcg state, s2=checksum, s3=op count.
    with b.proc("main", saves=(S0, S1, S2, S3), save_ra=True):
        b.li(S0, 0)
        b.li(S1, 0xBEEF)
        b.li(S2, 0)
        b.li(S3, n_ops)
        b.label("op_loop")
        emit_lcg_step(b, S1, T0)
        b.srli(T1, S1, 8)
        b.andi(A0, T1, 0xFFFF)  # key
        b.andi(T2, S1, 3)       # selector
        b.li(T3, 2)
        b.blt(T2, T3, "do_ins")
        b.beq(T2, T3, "do_upd")
        b.jal("do_query")
        b.j("op_next")
        b.label("do_ins")
        b.jal("do_insert")
        b.j("op_next")
        b.label("do_upd")
        b.srli(A1, S1, 3)
        b.jal("do_update")
        b.label("op_next")
        b.add(S2, S2, V0)
        b.addi(S0, S0, 1)
        b.blt(S0, S3, "op_loop")
        b.la(T0, "checksum")
        b.sw(S2, 0, T0)
        b.move(V0, S2)
        b.halt()

    # hash_slot(a0=key) -> v0 &index[slot]: linear probe to the key's
    # record or the first empty slot.  Leaf, temporaries only.
    with b.proc("hash_slot"):
        b.li(T0, 2654435761 & 0xFFFFFFFF)
        b.mul(T1, A0, T0)
        b.srli(T1, T1, 32 - _INDEX_BITS)
        b.la(T2, "index")
        b.label("hs_probe")
        b.slli(T3, T1, 2)
        b.add(T3, T2, T3)
        b.lw(T4, 0, T3)
        b.beq(T4, ZERO, "hs_found")  # empty slot
        b.lw(T5, 0, T4)              # record key
        b.beq(T5, A0, "hs_found")
        b.addi(T1, T1, 1)
        b.andi(T1, T1, _INDEX_SIZE - 1)
        b.j("hs_probe")
        b.label("hs_found")
        b.move(V0, T3)
        b.epilogue()

    # rec_fill(a0=rec, a1=seed): write the six data fields.  s2=cursor,
    # s3=value state.  The register choice overlaps the mid-level callers'
    # dead registers, so their kills eliminate part of this save set.
    with b.proc("rec_fill", saves=(S2, S3)):
        b.li(S2, 1)
        b.move(S3, A1)
        b.label("rf_loop")
        b.slli(T0, S2, 2)
        b.add(T0, A0, T0)
        b.li(T1, 0x9E37)
        b.mul(S3, S3, T1)
        b.addi(S3, S3, 0x79B9)
        b.sw(S3, 0, T0)
        b.addi(S2, S2, 1)
        b.slti(T2, S2, 7)
        b.bne(T2, ZERO, "rf_loop")
        b.li(V0, 0)
        b.epilogue()

    # rec_checksum(a0=rec) -> v0: fold all eight words.  s2=index,
    # s3=accumulator.
    with b.proc("rec_checksum", saves=(S2, S3)):
        b.li(S2, 0)
        b.li(S3, 0)
        b.label("rc_loop")
        b.slli(T0, S2, 2)
        b.add(T0, A0, T0)
        b.lw(T1, 0, T0)
        b.slli(T2, S3, 1)
        b.srli(T3, S3, 31)
        b.or_(S3, T2, T3)
        b.xor(S3, S3, T1)
        b.addi(S2, S2, 1)
        b.slti(T4, S2, _REC_WORDS)
        b.bne(T4, ZERO, "rc_loop")
        b.move(V0, S3)
        b.epilogue()

    # do_insert(a0=key) -> v0: allocate + index + fill a record.
    # s0=key, s1=record, s2=index slot address (dead after the store,
    # i.e. before the rec_fill/rec_checksum calls).
    with b.proc("do_insert", saves=(S0, S1, S2), save_ra=True):
        b.move(S0, A0)
        b.jal("hash_slot")
        b.move(S2, V0)
        b.lw(T0, 0, S2)
        b.bne(T0, ZERO, "di_exists")
        # capacity guard: drop the insert once the store is full
        b.la(T1, "rec_count")
        b.lw(T2, 0, T1)
        b.slti(T3, T2, max_records)
        b.beq(T3, ZERO, "di_full")
        # allocate
        b.addi(T4, T2, 1)
        b.sw(T4, 0, T1)
        b.li(T5, 4 * _REC_WORDS)
        b.mul(T6, T2, T5)
        b.la(T5, "records")
        b.add(S1, T5, T6)
        b.sw(S0, 0, S1)   # record key
        b.sw(S1, 0, S2)   # index entry (s2 dead after this)
        b.move(A0, S1)
        b.srli(A1, S0, 2)
        b.jal("rec_fill")
        b.move(A0, S1)
        b.jal("rec_checksum")
        b.slli(T0, S0, 2)
        b.add(T1, S1, T0)  # fold key back in
        b.xor(V0, V0, T1)
        b.j("di_done")
        b.label("di_exists")
        b.li(V0, 1)
        b.j("di_done")
        b.label("di_full")
        b.li(V0, 2)
        b.label("di_done")
        b.epilogue()

    # do_query(a0=key) -> v0: probe; checksum the record if present.
    # s2=record -- dead once staged into a0, so the rewriter kills it at
    # the rec_checksum call and that half of the helper's saves vanishes.
    with b.proc("do_query", saves=(S2,), save_ra=True):
        b.jal("hash_slot")
        b.lw(S2, 0, V0)
        b.bne(S2, ZERO, "dq_hit")
        b.li(V0, 3)
        b.j("dq_done")
        b.label("dq_hit")
        b.move(A0, S2)   # s2 dead from here on
        b.jal("rec_checksum")
        b.label("dq_done")
        b.epilogue()

    # do_update(a0=key, a1=seed) -> v0: rewrite a record's fields.
    # s0=record, s1=seed, s2=probe slot (dead before the helper calls).
    with b.proc("do_update", saves=(S0, S1, S2), save_ra=True):
        b.move(S1, A1)
        b.jal("hash_slot")
        b.move(S2, V0)
        b.lw(S0, 0, S2)
        b.bne(S0, ZERO, "du_hit")
        b.li(V0, 4)
        b.j("du_done")
        b.label("du_hit")
        b.move(A0, S0)
        b.move(A1, S1)
        b.jal("rec_fill")
        b.move(A0, S0)
        b.jal("rec_checksum")
        b.slli(T0, V0, 18)
        b.srli(T1, V0, 14)
        b.or_(V0, T0, T1)
        b.label("du_done")
        b.epilogue()

    return b.build()


WORKLOAD = REGISTRY.register(
    Workload(
        name="vortex_like",
        analog="vortex",
        description="object store: layered insert/query/update accessors "
                    "over a hashed index",
        build=build,
    )
)
