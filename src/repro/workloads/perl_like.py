"""perl-like workload: a bytecode interpreter with indirect dispatch.

Mirrors SPEC95 ``perl``: an interpreter main loop that fetches fixed-width
(opcode, operand) pairs and dispatches through a handler table with
indirect calls (``jalr``), plus a numeric helper under the POLY opcode.
This is the suite's heaviest save/restore workload and its biggest
elimination winner, as in the paper (perl: 74.6% of callee saves/restores
eliminated).

Where the elimination comes from: the dispatch loop lives in the program's
entry procedure and keeps its state in ``s0``-``s3``; the handlers — shared
by every call site and compiled conservatively — keep *their* locals in
``s4``-``s6`` and dutifully save them.  At the dispatch site ``s4``-``s6``
are provably dead (the entry procedure never uses them and never returns),
so the rewriter inserts one ``kill`` covering the handlers' whole save set
and the LVM squashes essentially all handler save/restore traffic —
context-sensitive liveness that no static convention could express.
"""

from __future__ import annotations

from typing import List

from repro.isa.registers import (
    A0, A1, S0, S1, S2, S3, S4, S5, S6,
    T0, T1, T2, T3, T4, T5, V0, ZERO,
)
from repro.program.builder import ProgramBuilder
from repro.program.program import Program
from repro.workloads.common import REGISTRY, Workload

# Bytecode opcodes.  Every instruction is two words: (opcode, operand).
OP_HALT = 0
OP_PUSHI = 1
OP_LOAD = 2
OP_STORE = 3
OP_ADD = 4
OP_SUB = 5
OP_MUL = 6
OP_DUP = 7
OP_HASHMIX = 8
OP_POLY = 9
OP_JNZ = 10

_HANDLER_LABELS = [
    "op_halt", "op_pushi", "op_load", "op_store", "op_add", "op_sub",
    "op_mul", "op_dup", "op_hashmix", "op_poly", "op_jnz",
]

_N_VARS = 16
_STACK_WORDS = 64


def _vm_program(iterations: int) -> List[int]:
    """The interpreted program: an arithmetic loop with hashing and POLY.

    Variables: v0 = loop counter, v1 = running hash, v2 = polynomial state.
    """
    code: List[int] = []

    def op(opcode: int, operand: int = 0) -> None:
        code.extend((opcode, operand))

    op(OP_PUSHI, iterations)
    op(OP_STORE, 0)
    loop_start = len(code) // 2
    # v1 = hashmix(v1 + v0)
    op(OP_LOAD, 1)
    op(OP_LOAD, 0)
    op(OP_ADD)
    op(OP_HASHMIX)
    op(OP_STORE, 1)
    # v2 = poly(v2 * 3 + v0, k=5)
    op(OP_LOAD, 2)
    op(OP_PUSHI, 3)
    op(OP_MUL)
    op(OP_LOAD, 0)
    op(OP_ADD)
    op(OP_POLY, 5)
    op(OP_STORE, 2)
    # v0 -= 1; loop while nonzero
    op(OP_LOAD, 0)
    op(OP_PUSHI, 1)
    op(OP_SUB)
    op(OP_DUP)
    op(OP_STORE, 0)
    op(OP_JNZ, loop_start)
    # result = v1 + v2 (left on the VM stack)
    op(OP_LOAD, 1)
    op(OP_LOAD, 2)
    op(OP_ADD)
    op(OP_HALT)
    return code


def build(scale: int = 1) -> Program:
    """Build the perl-like program; ``scale`` multiplies VM iterations."""
    b = ProgramBuilder("perl_like")

    b.words("bytecode", _vm_program(55 * scale))
    b.zeros("vm_vars", _N_VARS)
    b.zeros("vm_stack", _STACK_WORDS)
    b.zeros("vm_sp", 1)  # stack top index (in words)
    b.zeros("checksum", 1)
    b.label_words("handlers", _HANDLER_LABELS)

    # Dispatch loop: s0=&bytecode, s1=ip (word index), s2=&handlers,
    # s3=dispatch counter.  Handler protocol: v0 = -1 (continue),
    # -2 (halt), else the new ip.
    with b.proc("main", saves=(S0, S1, S2, S3), save_ra=True):
        b.la(S0, "bytecode")
        b.la(S2, "handlers")
        b.li(S1, 0)
        b.li(S3, 0)
        b.label("dispatch")
        b.slli(T0, S1, 2)
        b.add(T0, S0, T0)
        b.lw(T1, 0, T0)   # opcode
        b.lw(A0, 4, T0)   # operand
        b.addi(S1, S1, 2)
        b.slli(T2, T1, 2)
        b.add(T2, S2, T2)
        b.lw(T3, 0, T2)
        b.jalr(T3)
        b.addi(S3, S3, 1)
        b.li(T0, -1)
        b.beq(V0, T0, "dispatch")
        b.li(T0, -2)
        b.beq(V0, T0, "vm_done")
        b.move(S1, V0)    # taken VM branch: new ip
        b.j("dispatch")
        b.label("vm_done")
        # result = top of VM stack, mixed with the dispatch count
        b.la(T0, "vm_sp")
        b.lw(T1, 0, T0)
        b.addi(T1, T1, -1)
        b.la(T2, "vm_stack")
        b.slli(T3, T1, 2)
        b.add(T3, T2, T3)
        b.lw(T4, 0, T3)
        b.xor(V0, T4, S3)
        b.la(T0, "checksum")
        b.sw(V0, 0, T0)
        b.halt()

    def load_sp(sp: int, scratch: int) -> None:
        b.la(scratch, "vm_sp")
        b.lw(sp, 0, scratch)

    def store_sp(sp: int, scratch: int) -> None:
        b.la(scratch, "vm_sp")
        b.sw(sp, 0, scratch)

    def stack_addr(dest: int, sp: int, scratch: int) -> None:
        b.la(scratch, "vm_stack")
        b.slli(dest, sp, 2)
        b.add(dest, scratch, dest)

    # op_halt: signal the dispatch loop to stop.
    with b.proc("op_halt"):
        b.li(V0, -2)
        b.epilogue()

    # op_pushi(a0=value): push an immediate.  s4 = stack index.
    with b.proc("op_pushi", saves=(S4,)):
        load_sp(S4, T0)
        stack_addr(T1, S4, T2)
        b.sw(A0, 0, T1)
        b.addi(S4, S4, 1)
        store_sp(S4, T0)
        b.li(V0, -1)
        b.epilogue()

    # op_load(a0=var): push vars[var].
    with b.proc("op_load", saves=(S4,)):
        b.la(T0, "vm_vars")
        b.slli(T1, A0, 2)
        b.add(T1, T0, T1)
        b.lw(T2, 0, T1)
        load_sp(S4, T0)
        stack_addr(T3, S4, T4)
        b.sw(T2, 0, T3)
        b.addi(S4, S4, 1)
        store_sp(S4, T0)
        b.li(V0, -1)
        b.epilogue()

    # op_store(a0=var): pop into vars[var].
    with b.proc("op_store", saves=(S4,)):
        load_sp(S4, T0)
        b.addi(S4, S4, -1)
        stack_addr(T1, S4, T2)
        b.lw(T3, 0, T1)
        b.la(T4, "vm_vars")
        b.slli(T5, A0, 2)
        b.add(T5, T4, T5)
        b.sw(T3, 0, T5)
        store_sp(S4, T0)
        b.li(V0, -1)
        b.epilogue()

    def binary_op(name: str, emit_combine) -> None:
        # Pop two, push combine(lhs, rhs).  s4 = stack index, s3 = lhs.
        # s3 is live in the dispatch loop, so -- unlike the rest of the
        # handler locals -- its save/restore pair is never eliminated:
        # the paper's Figure 7 caller1 case, keeping the elimination rate
        # near perl's 74.6% rather than at 100%.
        with b.proc(name, saves=(S3, S4)):
            load_sp(S4, T0)
            b.addi(S4, S4, -2)
            stack_addr(T1, S4, T2)
            b.lw(S3, 0, T1)   # lhs
            b.lw(T3, 4, T1)   # rhs
            emit_combine(S3, T3)  # result in s3
            b.sw(S3, 0, T1)
            b.addi(S4, S4, 1)
            store_sp(S4, T0)
            b.li(V0, -1)
            b.epilogue()

    binary_op("op_add", lambda lhs, rhs: b.add(lhs, lhs, rhs))
    binary_op("op_sub", lambda lhs, rhs: b.sub(lhs, lhs, rhs))
    binary_op("op_mul", lambda lhs, rhs: b.mul(lhs, lhs, rhs))

    # op_dup: push a copy of the top of stack.
    with b.proc("op_dup", saves=(S4, S5)):
        load_sp(S4, T0)
        stack_addr(T1, S4, T2)
        b.lw(S5, -4, T1)
        b.sw(S5, 0, T1)
        b.addi(S4, S4, 1)
        store_sp(S4, T0)
        b.li(V0, -1)
        b.epilogue()

    # op_hashmix: top = avalanche(top).
    with b.proc("op_hashmix", saves=(S4, S5)):
        load_sp(S4, T0)
        stack_addr(T1, S4, T2)
        b.lw(S5, -4, T1)
        b.srli(T3, S5, 15)
        b.xor(S5, S5, T3)
        b.li(T4, 0x85EB)
        b.mul(S5, S5, T4)
        b.srli(T3, S5, 13)
        b.xor(S5, S5, T3)
        b.sw(S5, -4, T1)
        b.li(V0, -1)
        b.epilogue()

    # op_poly(a0=k): top = poly_k(top), via the math helper.  s4 = stack
    # index (live across the helper call); s5 = operand staging (dead at
    # the call, so the rewriter kills it there).
    with b.proc("op_poly", saves=(S4, S5), save_ra=True):
        load_sp(S4, T0)
        b.move(S5, A0)
        stack_addr(T1, S4, T2)
        b.lw(A0, -4, T1)
        b.move(A1, S5)
        b.jal("math_poly")
        stack_addr(T1, S4, T2)
        b.sw(V0, -4, T1)
        b.li(V0, -1)
        b.epilogue()

    # math_poly(a0=x, a1=k) -> v0: Horner evaluation of a small polynomial
    # with coefficients derived from k.  s4=x, s5=acc, s6=i.
    with b.proc("math_poly", saves=(S4, S5, S6)):
        b.move(S4, A0)
        b.move(S5, A1)
        b.li(S6, 0)
        b.label("mp_loop")
        b.mul(S5, S5, S4)
        b.xor(T0, S6, A1)
        b.addi(T0, T0, 11)
        b.add(S5, S5, T0)
        b.addi(S6, S6, 1)
        b.slti(T1, S6, 4)
        b.bne(T1, ZERO, "mp_loop")
        b.move(V0, S5)
        b.epilogue()

    # op_jnz(a0=target): pop; branch the VM if nonzero.  Leaf, no saves.
    with b.proc("op_jnz"):
        b.la(T0, "vm_sp")
        b.lw(T1, 0, T0)
        b.addi(T1, T1, -1)
        b.sw(T1, 0, T0)
        b.la(T2, "vm_stack")
        b.slli(T3, T1, 2)
        b.add(T3, T2, T3)
        b.lw(T4, 0, T3)
        b.bne(T4, ZERO, "jnz_taken")
        b.li(V0, -1)
        b.epilogue()
        b.label("jnz_taken")
        b.slli(V0, A0, 1)  # word index of the target instruction pair
        b.epilogue()

    return b.build()


WORKLOAD = REGISTRY.register(
    Workload(
        name="perl_like",
        analog="perl",
        description="bytecode interpreter with indirect dispatch; "
                    "heaviest save/restore traffic",
        build=build,
    )
)
