"""Synthetic SPEC95-analog workloads (the paper's benchmark suite)."""

from repro.workloads.common import REGISTRY, Workload, lcg_stream

__all__ = ["REGISTRY", "Workload", "lcg_stream"]
