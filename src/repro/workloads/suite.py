"""The benchmark suite: the seven SPEC95-integer analogs (Figure 3).

Importing this module registers every workload.  The orderings below match
the paper's figures: :func:`all_workloads` is the Figure 3/5 suite;
:func:`save_restore_suite` is the six-benchmark subset of Figures 9 and 10
("the six benchmarks that exhibit significant save and restore activity",
i.e. everything but compress).
"""

from __future__ import annotations

from typing import List

# Importing for side effect: each module registers itself.
from repro.workloads import (  # noqa: F401
    compress_like,
    gcc_like,
    go_like,
    ijpeg_like,
    li_like,
    m88ksim_like,
    perl_like,
    vortex_like,
)
from repro.workloads.common import REGISTRY, Workload
from repro.program.program import Program
from repro.registry import UnknownComponentError

#: Figure 9/10 ordering (li, ijpeg, gcc, perl, vortex, go).
SAVE_RESTORE_ORDER = [
    "li_like", "ijpeg_like", "gcc_like", "perl_like", "vortex_like", "go_like",
]

#: Figure 3 ordering (full suite).  Deliberately excludes workloads that
#: are registered but not part of the paper's benchmark set (m88ksim),
#: so every figure reproduces the paper's exact suite.
ALL_ORDER = ["compress_like"] + SAVE_RESTORE_ORDER


def all_workloads() -> List[Workload]:
    """All seven workloads, in the paper's characterization order."""
    return [REGISTRY.get(name) for name in ALL_ORDER]


def save_restore_suite() -> List[Workload]:
    """The six workloads with significant save/restore activity."""
    return [REGISTRY.get(name) for name in SAVE_RESTORE_ORDER]


def get_workload(name: str) -> Workload:
    """Look a workload up by name (accepts the bare analog name too)."""
    if name in REGISTRY:
        return REGISTRY.get(name)
    if f"{name}_like" in REGISTRY:
        return REGISTRY.get(f"{name}_like")
    raise UnknownComponentError("workload", name, sorted(REGISTRY.names()))


def get_program(name: str, scale: int = 1) -> Program:
    """Build (with caching) a workload program."""
    workload = get_workload(name)
    return REGISTRY.program(workload.name, scale)
