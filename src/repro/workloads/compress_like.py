"""compress-like workload: an LZW-flavoured hashing compression loop.

Mirrors SPEC95 ``compress``: a single hot loop that hashes a rolling code
against a table, with very rare procedure calls (one ``emit_code`` call per
256 symbols).  Lowest call and save/restore density of the suite — the
paper's Figure 9 accordingly omits compress from the procedure-call
save/restore charts, while Figure 12 still includes it for context
switches.
"""

from __future__ import annotations

from repro.isa.registers import (
    A0, S0, S1, S2, S3, S4, S5, S6, S7, T0, T1, T2, T3, T4, T5, T6, V0, ZERO,
)
from repro.program.builder import ProgramBuilder
from repro.program.program import Program
from repro.workloads.common import REGISTRY, Workload, lcg_stream

_HASH_BITS = 12
_HASH_SIZE = 1 << _HASH_BITS
_EMIT_EVERY_MASK = 255  # call emit_code every 256 symbols


def build(scale: int = 1) -> Program:
    """Build the compress-like program; ``scale`` multiplies the input size."""
    n_symbols = 1536 * scale
    b = ProgramBuilder("compress_like")

    b.words("input", lcg_stream(0xC0FFEE, n_symbols, modulo=256))
    b.zeros("htab", _HASH_SIZE)
    b.zeros("vtab", _HASH_SIZE)
    b.zeros("out", n_symbols // (_EMIT_EVERY_MASK + 1) + 8)
    b.zeros("out_count", 1)
    b.zeros("checksum", 1)

    # Register roles in main: s0=i, s1=code, s2=&input, s3=&htab, s4=&vtab,
    # s5=checksum, s6=n, s7=symbols-since-emit.
    with b.proc("main", saves=(S0, S1, S2, S3, S4, S5, S6, S7), save_ra=True):
        b.la(S2, "input")
        b.la(S3, "htab")
        b.la(S4, "vtab")
        b.li(S0, 0)
        b.li(S1, 1)
        b.li(S5, 0)
        b.li(S6, n_symbols)
        b.li(S7, 0)

        b.label("loop")
        # sym = input[i]
        b.slli(T0, S0, 2)
        b.add(T0, S2, T0)
        b.lw(T1, 0, T0)
        # code = (code << 4) ^ sym
        b.slli(T2, S1, 4)
        b.xor(S1, T2, T1)
        # h = (code * 40503) >> 8 & (HASH_SIZE-1)
        b.li(T3, 40503)
        b.mul(T2, S1, T3)
        b.srli(T2, T2, 8)
        b.andi(T2, T2, _HASH_SIZE - 1)
        b.slli(T2, T2, 2)
        # probe htab[h]
        b.add(T3, S3, T2)
        b.lw(T4, 0, T3)
        b.bne(T4, S1, "miss")
        # hit: code = vtab[h]; checksum++
        b.add(T5, S4, T2)
        b.lw(S1, 0, T5)
        b.addi(S5, S5, 1)
        b.j("cont")
        b.label("miss")
        # install: htab[h] = code; vtab[h] = code ^ i
        b.sw(S1, 0, T3)
        b.add(T5, S4, T2)
        b.xor(T6, S1, S0)
        b.sw(T6, 0, T5)
        b.label("cont")
        # rare emit call
        b.addi(S7, S7, 1)
        b.andi(T0, S7, _EMIT_EVERY_MASK)
        b.bne(T0, ZERO, "skip_emit")
        b.move(A0, S1)
        b.jal("emit_code")
        b.add(S5, S5, V0)
        b.label("skip_emit")
        b.addi(S0, S0, 1)
        b.blt(S0, S6, "loop")

        # publish checksum and exit
        b.la(T0, "checksum")
        b.sw(S5, 0, T0)
        b.move(V0, S5)
        b.halt()

    # emit_code(a0=code) -> v0: append to output ring, return a mixed value.
    with b.proc("emit_code", saves=(S0,)):
        b.la(T0, "out_count")
        b.lw(T1, 0, T0)
        b.la(T2, "out")
        b.andi(T3, T1, 7)  # small ring to bound memory
        b.slli(T3, T3, 2)
        b.add(T3, T2, T3)
        b.sw(A0, 0, T3)
        b.addi(T1, T1, 1)
        b.sw(T1, 0, T0)
        b.xor(S0, A0, T1)
        b.move(V0, S0)
        b.epilogue()

    return b.build()


WORKLOAD = REGISTRY.register(
    Workload(
        name="compress_like",
        analog="compress95",
        description="LZW-style hashing loop; minimal calls and saves",
        build=build,
        save_restore_heavy=False,
    )
)
