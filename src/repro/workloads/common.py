"""Shared infrastructure for the synthetic SPEC95-analog workloads.

Each workload mirrors the *structure* that makes its SPEC95 analog behave
the way Figure 3 characterizes it — call density, memory reference density,
and callee-save/restore density — using a real algorithm written in the
assembly DSL.  All workloads follow the calling convention strictly (the
DVI verifier runs over every one in the test suite) and compute a
deterministic checksum into ``v0`` and a data-segment word, so functional
correctness is pinned by golden values and observational equivalence.

The save/restore *elimination* opportunities are not contrived: they arise
from the paper's own Figure 7 pattern — a procedure uses a callee-saved
register in an early phase, the register is dead at later call sites, and
the (conservatively compiled, shared) callee saves it anyway.  The E-DVI
rewriter discovers these sites by liveness analysis; nothing in the
workloads marks them by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.program.builder import ProgramBuilder
from repro.program.program import Program
from repro.registry import Registry

#: Multiplier/increment of the data-generation LCG (Numerical Recipes).
LCG_MUL = 1664525
LCG_INC = 1013904223
_MASK32 = 0xFFFF_FFFF


def lcg_stream(seed: int, count: int, *, modulo: int = 0) -> List[int]:
    """Deterministic pseudo-random 32-bit values for data-segment arrays."""
    values = []
    state = seed & _MASK32
    for _ in range(count):
        state = (state * LCG_MUL + LCG_INC) & _MASK32
        values.append(state % modulo if modulo else state)
    return values


def emit_lcg_step(b: ProgramBuilder, state_reg: int, tmp_reg: int) -> None:
    """Emit ``state = state * LCG_MUL + LCG_INC`` (guest-side LCG)."""
    b.li(tmp_reg, LCG_MUL)
    b.mul(state_reg, state_reg, tmp_reg)
    b.li(tmp_reg, LCG_INC)
    b.add(state_reg, state_reg, tmp_reg)


@dataclass(frozen=True)
class Workload:
    """A named, scalable guest program."""

    name: str
    analog: str
    description: str
    build: Callable[[int], Program]
    #: Whether the paper includes it in the save/restore figures (9/10):
    #: compress has too little save/restore activity to chart.
    save_restore_heavy: bool = True

    def program(self, scale: int = 1) -> Program:
        """Build the linked program at the given scale (>= 1)."""
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        return self.build(scale)


class WorkloadRegistry(Registry[Workload]):
    """The generic component registry plus a memoizing program cache.

    Experiments re-run the same program under many machine configurations;
    the cache keeps builds (and their E-DVI rewrites, cached by the
    experiment runner) from dominating wall-clock time.  Lookup failures
    and duplicate registrations follow the shared
    :mod:`repro.registry` contract (a miss lists the valid names).
    """

    def __init__(self) -> None:
        super().__init__("workload")
        self._cache: Dict[tuple, Program] = {}

    def register(self, workload: Workload) -> Workload:  # type: ignore[override]
        return super().register(workload.name, workload)

    def program(self, name: str, scale: int = 1) -> Program:
        key = (name, scale)
        if key not in self._cache:
            self._cache[key] = self.get(name).program(scale)
        return self._cache[key]


#: The global registry the workload modules populate on import.
REGISTRY = WorkloadRegistry()
