"""Random ABI-compliant program generation for differential testing.

:func:`generate_program` builds a random but *calling-convention-correct*
program: a tree of procedures with random arithmetic bodies, loops,
memory traffic on private data arrays, randomly chosen callee-saved
register usage (saved in prologues, restored in epilogues), and random
points at which those registers genuinely die.  Because the generator
never violates the ABI, every generated program must:

* pass the DVI poison verifier after E-DVI rewriting,
* be observationally equivalent under any elimination scheme,
* survive preemptive multiplexing with dead-register clobbering.

This turns the correctness argument of the paper into a property the test
suite checks over thousands of random programs — differential testing of
the whole toolchain (liveness -> rewriter -> LVM/LVM-Stack -> emulator).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.isa import registers as R
from repro.program.builder import ProgramBuilder
from repro.program.program import Program

#: Temporaries the generated bodies may scratch freely.
_TEMPS = (R.T0, R.T1, R.T2, R.T3, R.T4, R.T5, R.T6, R.T7)
#: Callee-saved registers procedures may adopt as locals.
_SAVED = (R.S0, R.S1, R.S2, R.S3, R.S4, R.S5)


@dataclass(frozen=True)
class FuzzConfig:
    """Shape knobs for generated programs."""

    n_procs: int = 4
    max_body_blocks: int = 4
    max_block_ops: int = 6
    max_loop_trips: int = 5
    data_words: int = 32


class _ProcPlan:
    """A planned procedure: which s-registers it uses, whom it may call."""

    def __init__(self, name: str, saves: Sequence[int], callees: List[str]) -> None:
        self.name = name
        self.saves = tuple(saves)
        self.callees = callees


def generate_program(seed: int, config: FuzzConfig = FuzzConfig()) -> Program:
    """Generate a deterministic random program from ``seed``."""
    rng = random.Random(seed)
    b = ProgramBuilder(f"fuzz_{seed}")
    data = b.words(
        "data", [rng.randrange(1 << 16) for _ in range(config.data_words)]
    )
    b.zeros("out", 1)

    # Plan a strictly layered call DAG: proc i may call procs > i, so the
    # program always terminates.
    plans: List[_ProcPlan] = []
    names = ["main"] + [f"p{i}" for i in range(1, config.n_procs)]
    for index, name in enumerate(names):
        later = names[index + 1:]
        callees = rng.sample(later, k=min(len(later), rng.randint(0, 2)))
        n_saves = rng.randint(0, min(3, len(_SAVED)))
        saves = rng.sample(_SAVED, k=n_saves)
        plans.append(_ProcPlan(name, saves, callees))

    unique = [0]

    def fresh(stem: str) -> str:
        unique[0] += 1
        return f"{stem}_{unique[0]}"

    for plan in plans:
        _emit_procedure(b, rng, plan, config, fresh, is_main=plan.name == "main")
    return b.build()


def _emit_procedure(b, rng, plan, config, fresh, *, is_main):
    saves = plan.saves
    save_ra = bool(plan.callees) or is_main
    with b.proc(plan.name, saves=saves, save_ra=save_ra):
        live_saved: List[int] = []
        # Adopt the saved registers as locals, seeded from the argument.
        for reg in saves:
            b.addi(reg, R.A0, rng.randint(-100, 100))
            live_saved.append(reg)
        acc = R.V0
        b.addi(acc, R.A0, 1)
        # Temporaries hold garbage at entry (and after every call, whose
        # I-DVI kills them); the generator only ever reads initialized
        # ones -- the discipline a real register allocator follows.
        init_temps: set = set()

        for _ in range(rng.randint(1, config.max_body_blocks)):
            choice = rng.random()
            if choice < 0.45:
                _emit_alu_block(b, rng, config, live_saved, init_temps)
            elif choice < 0.65:
                _emit_memory_block(b, rng, config, init_temps)
            elif choice < 0.8 and plan.callees:
                # A register may die right before a call: stage its value
                # into the argument and stop using it afterwards.
                if live_saved and rng.random() < 0.6:
                    victim = live_saved.pop(rng.randrange(len(live_saved)))
                    b.move(R.A0, victim)
                else:
                    b.andi(R.A0, acc, 0xFFF)
                b.jal(rng.choice(plan.callees))
                init_temps.clear()  # the call clobbered every temporary
                b.xor(acc, R.V0, R.ZERO if not live_saved
                      else rng.choice(live_saved))
            else:
                _emit_loop(b, rng, config, fresh, init_temps)
            # fold any still-live saved locals into the accumulator
            for reg in live_saved:
                b.add(acc, acc, reg)

        if is_main:
            b.la(R.T9, "out")
            b.sw(acc, 0, R.T9)
            b.halt()
        else:
            b.epilogue()


def _emit_alu_block(b, rng, config, live_saved, init_temps):
    for _ in range(rng.randint(1, config.max_block_ops)):
        dst = rng.choice(_TEMPS)
        src = rng.choice(sorted(init_temps) + [R.V0])
        op = rng.choice(("addi", "slli", "xori", "andi"))
        if op == "addi":
            b.addi(dst, src, rng.randint(-64, 64))
        elif op == "slli":
            b.slli(dst, src, rng.randint(0, 7))
        elif op == "xori":
            b.xori(dst, src, rng.randrange(1 << 12))
        else:
            b.andi(dst, src, rng.randrange(1 << 12))
        init_temps.add(dst)
    if live_saved and init_temps and rng.random() < 0.5:
        reg = rng.choice(live_saved)
        b.add(reg, reg, rng.choice(sorted(init_temps)))


def _emit_memory_block(b, rng, config, init_temps):
    offset = 4 * rng.randrange(config.data_words)
    b.la(R.T8, "data")
    b.lw(R.T0, offset, R.T8)
    b.add(R.V0, R.V0, R.T0)
    init_temps.update((R.T8, R.T0))
    if rng.random() < 0.4:
        b.sw(R.V0, 4 * rng.randrange(config.data_words), R.T8)


def _emit_loop(b, rng, config, fresh, init_temps):
    trips = rng.randint(1, config.max_loop_trips)
    top = fresh("loop")
    b.li(R.T6, trips)
    b.label(top)
    b.addi(R.V0, R.V0, rng.randint(1, 9))
    b.addi(R.T6, R.T6, -1)
    b.bgtz(R.T6, top)
    init_temps.add(R.T6)
