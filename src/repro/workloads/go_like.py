"""go-like workload: recursive game-tree search with position evaluation.

Mirrors SPEC95 ``go``: a branchy, integer-heavy recursive search.  A small
board is mutated by make/undo around recursive calls; leaves run a
wide-footprint evaluator over the whole board.  At the leaf call every
callee-saved register of ``search`` is dead (its values are already on the
stack, and the epilogue will restore them), so the evaluator's entire
save/restore set is eliminated on the search frontier — which is most of
the dynamic calls.
"""

from __future__ import annotations

from repro.isa.registers import (
    A0, A1, A2, S0, S1, S2, S3, S4, T0, T1, T2, T3, T4, T5, V0, ZERO,
)
from repro.program.builder import ProgramBuilder
from repro.program.program import Program
from repro.workloads.common import REGISTRY, Workload, lcg_stream

_BOARD_WORDS = 24
_MOVES = 3  # branching factor
_DEPTH = 4


def build(scale: int = 1) -> Program:
    """Build the go-like program; ``scale`` multiplies the search count."""
    n_searches = 3 * scale
    b = ProgramBuilder("go_like")

    b.words("board", lcg_stream(0x60BA, _BOARD_WORDS, modulo=64))
    b.zeros("checksum", 1)

    # main: s0=search index, s1=checksum, s2=search count.
    with b.proc("main", saves=(S0, S1, S2), save_ra=True):
        b.li(S0, 0)
        b.li(S1, 0)
        b.li(S2, n_searches)
        b.label("search_loop")
        b.la(A0, "board")
        b.li(A1, _DEPTH)
        b.slli(A2, S0, 4)
        b.addi(A2, A2, 5)
        b.jal("search")
        b.slli(T0, S1, 3)
        b.srli(T1, S1, 29)
        b.or_(S1, T0, T1)
        b.xor(S1, S1, V0)
        b.addi(S0, S0, 1)
        b.blt(S0, S2, "search_loop")
        b.la(T0, "checksum")
        b.sw(S1, 0, T0)
        b.move(V0, S1)
        b.halt()

    # search(a0=board, a1=depth, a2=seed) -> v0 best score.
    # s0=board, s1=depth, s2=best, s3=move index, s4=undo value.
    with b.proc("search", saves=(S0, S1, S2, S3, S4), save_ra=True):
        b.bgtz(A1, "se_rec")
        # Leaf: every s-register of this frame is dead here (the epilogue
        # will overwrite them); the rewriter kills the evaluator's whole
        # save set.
        b.jal("evaluate")
        b.j("se_done")
        b.label("se_rec")
        b.move(S0, A0)
        b.move(S1, A1)
        b.li(S2, -0x8000)
        b.li(S3, 0)
        b.move(S4, A2)
        b.label("se_moves")
        # position = (seed + move*7) % BOARD_WORDS
        b.slli(T0, S3, 3)
        b.sub(T0, T0, S3)
        b.add(T0, S4, T0)
        b.li(T1, _BOARD_WORDS)
        b.rem(T0, T0, T1)
        b.slli(T0, T0, 2)
        b.add(T0, S0, T0)  # cell address
        # make move: cell += depth + move (remember undo in s4's place? no:
        # the cell address is recomputed for undo, the delta re-derived)
        b.lw(T2, 0, T0)
        b.add(T3, S1, S3)
        b.addi(T3, T3, 1)
        b.add(T4, T2, T3)
        b.sw(T4, 0, T0)
        # recurse
        b.move(A0, S0)
        b.addi(A1, S1, -1)
        b.slli(T5, S4, 1)
        b.add(A2, T5, S3)
        b.jal("search")
        # alpha: best = max(best, -score + move)
        b.sub(T0, ZERO, V0)
        b.add(T0, T0, S3)
        b.blt(T0, S2, "se_no_improve")
        b.move(S2, T0)
        b.label("se_no_improve")
        # undo move: recompute the cell and delta
        b.slli(T0, S3, 3)
        b.sub(T0, T0, S3)
        b.add(T0, S4, T0)
        b.li(T1, _BOARD_WORDS)
        b.rem(T0, T0, T1)
        b.slli(T0, T0, 2)
        b.add(T0, S0, T0)
        b.lw(T2, 0, T0)
        b.add(T3, S1, S3)
        b.addi(T3, T3, 1)
        b.sub(T4, T2, T3)
        b.sw(T4, 0, T0)
        b.addi(S3, S3, 1)
        b.slti(T5, S3, _MOVES)
        b.bne(T5, ZERO, "se_moves")
        b.move(V0, S2)
        b.label("se_done")
        b.epilogue()

    # evaluate(a0=board) -> v0: weighted fold over all cells with
    # neighbour differences.  s0=index, s1=acc, s2=previous cell.
    with b.proc("evaluate", saves=(S0, S1, S2)):
        b.li(S0, 0)
        b.li(S1, 0)
        b.li(S2, 0)
        b.label("ev_loop")
        b.slli(T0, S0, 2)
        b.add(T0, A0, T0)
        b.lw(T1, 0, T0)
        b.sub(T2, T1, S2)
        b.mul(T3, T2, T2)
        b.add(S1, S1, T3)
        b.slli(T4, T1, 1)
        b.xor(S1, S1, T4)
        b.move(S2, T1)
        b.addi(S0, S0, 1)
        b.slti(T5, S0, _BOARD_WORDS)
        b.bne(T5, ZERO, "ev_loop")
        b.andi(V0, S1, 0x7FFF)
        b.epilogue()

    return b.build()


WORKLOAD = REGISTRY.register(
    Workload(
        name="go_like",
        analog="go",
        description="recursive game-tree search with leaf evaluation",
        build=build,
    )
)
