"""m88ksim-like workload: an instruction-set-simulator dispatch loop.

Mirrors SPEC95 ``m88ksim`` (a Motorola 88100 simulator): the hot loop
fetches encoded words from a synthetic instruction stream, decodes a
class field, and dispatches to per-class handler procedures that operate
on a memory-resident simulated register file.  That structure gives a
call per simulated instruction (interpreter-grade call density), steady
memory traffic through the register-file and data arrays, and handler
prologues/epilogues whose callee saves follow the paper's Figure 7
pattern — a saved register is used in an early phase and dead at the
later bookkeeping call, so the E-DVI rewriter finds elimination sites
without anything being marked by hand.

Registered but *not* part of the paper's Figure 3 suite: the seven
SPEC95-analog orderings (and therefore every figure) are unchanged; this
workload exists for the scenario layer (``sweep --workloads m88ksim``).
"""

from __future__ import annotations

from repro.isa.registers import (
    A0, A1, S0, S1, S2, S3, S4, S5, T0, T1, T2, T3, T4, V0, ZERO,
)
from repro.program.builder import ProgramBuilder
from repro.program.program import Program
from repro.workloads.common import REGISTRY, Workload, lcg_stream

_REGS = 32          # simulated architectural register file (words)
_DMEM_WORDS = 512   # simulated data memory
_STATS_WORDS = 8    # per-class event counters


def build(scale: int = 1) -> Program:
    """Build the m88ksim-like program; ``scale`` multiplies the stream."""
    n_insts = 1200 * scale
    b = ProgramBuilder("m88ksim_like")

    b.words("istream", lcg_stream(0x88100, n_insts))
    b.words("regs", lcg_stream(0x88110, _REGS))
    b.zeros("dmem", _DMEM_WORDS)
    b.zeros("stats", _STATS_WORDS)
    b.zeros("checksum", 1)

    # main: s0=i, s1=checksum, s2=&istream, s3=&regs, s4=n, s5=&stats.
    with b.proc("main", saves=(S0, S1, S2, S3, S4, S5), save_ra=True):
        b.la(S2, "istream")
        b.la(S3, "regs")
        b.la(S5, "stats")
        b.li(S0, 0)
        b.li(S1, 0)
        b.li(S4, n_insts)

        b.label("fetch")
        # w = istream[i]
        b.slli(T0, S0, 2)
        b.add(T0, S2, T0)
        b.lw(T1, 0, T0)
        # dispatch on the 2-bit class field
        b.andi(T2, T1, 3)
        b.move(A0, T1)
        b.move(A1, S3)
        b.beq(T2, ZERO, "do_alu")
        b.li(T3, 1)
        b.beq(T2, T3, "do_mem")
        b.li(T3, 2)
        b.beq(T2, T3, "do_mul")
        # class 3: control transfer — taken/not-taken counter inline
        b.srli(T3, T1, 2)
        b.andi(T3, T3, _STATS_WORDS - 1)
        b.slli(T3, T3, 2)
        b.add(T3, S5, T3)
        b.lw(T4, 0, T3)
        b.addi(T4, T4, 1)
        b.sw(T4, 0, T3)
        b.move(V0, T4)
        b.j("retire")

        b.label("do_alu")
        b.jal("step_alu")
        b.j("retire")
        b.label("do_mem")
        b.jal("step_mem")
        b.j("retire")
        b.label("do_mul")
        b.jal("step_mul")

        b.label("retire")
        # checksum = rotl(checksum, 1) ^ result
        b.slli(T0, S1, 1)
        b.srli(T1, S1, 31)
        b.or_(S1, T0, T1)
        b.xor(S1, S1, V0)
        b.addi(S0, S0, 1)
        b.blt(S0, S4, "fetch")

        b.la(T0, "checksum")
        b.sw(S1, 0, T0)
        b.move(V0, S1)
        b.halt()

    # step_alu(a0=w, a1=&regs) -> v0: regs[rd] = regs[rs] op regs[rt].
    # Leaf procedure with one callee save (s0 holds the decoded rd slot).
    with b.proc("step_alu", saves=(S0,)):
        b.srli(T0, A0, 2)
        b.andi(T0, T0, _REGS - 1)   # rd
        b.slli(S0, T0, 2)
        b.add(S0, A1, S0)           # &regs[rd]
        b.srli(T1, A0, 7)
        b.andi(T1, T1, _REGS - 1)   # rs
        b.slli(T1, T1, 2)
        b.add(T1, A1, T1)
        b.lw(T2, 0, T1)             # regs[rs]
        b.srli(T3, A0, 12)
        b.andi(T3, T3, _REGS - 1)   # rt
        b.slli(T3, T3, 2)
        b.add(T3, A1, T3)
        b.lw(T4, 0, T3)             # regs[rt]
        b.add(T2, T2, T4)
        b.xor(T2, T2, A0)
        b.sw(T2, 0, S0)
        b.move(V0, T2)
        b.epilogue()

    # step_mem(a0=w, a1=&regs) -> v0: a load/store against dmem, then an
    # event-log call.  s0 (the dmem slot address) is used in the access
    # phase and dead by the log_event call — the Figure 7 shape.
    with b.proc("step_mem", saves=(S0, S1), save_ra=True):
        b.srli(T0, A0, 2)
        b.andi(T0, T0, _DMEM_WORDS - 1)
        b.slli(S0, T0, 2)
        b.la(T1, "dmem")
        b.add(S0, T1, S0)           # &dmem[slot]
        b.srli(T2, A0, 11)
        b.andi(T2, T2, _REGS - 1)
        b.slli(T2, T2, 2)
        b.add(S1, A1, T2)           # &regs[r]
        b.andi(T3, A0, 4)
        b.bne(T3, ZERO, "sm_store")
        # load: regs[r] = dmem[slot] ^ w
        b.lw(T4, 0, S0)
        b.xor(T4, T4, A0)
        b.sw(T4, 0, S1)
        b.move(S1, T4)
        b.j("sm_log")
        b.label("sm_store")
        # store: dmem[slot] = regs[r] + w
        b.lw(T4, 0, S1)
        b.add(T4, T4, A0)
        b.sw(T4, 0, S0)
        b.move(S1, T4)
        b.label("sm_log")
        # s0 is dead here; only the result (s1) survives the call.
        b.li(A0, 1)
        b.jal("log_event")
        b.add(V0, S1, V0)
        b.epilogue()

    # step_mul(a0=w, a1=&regs) -> v0: a two-phase multiply-accumulate.
    # s0 carries the first phase's product and is dead at the log call.
    with b.proc("step_mul", saves=(S0, S1), save_ra=True):
        b.srli(T0, A0, 2)
        b.andi(T0, T0, _REGS - 1)
        b.slli(T0, T0, 2)
        b.add(T0, A1, T0)
        b.lw(S0, 0, T0)             # regs[ra]
        b.srli(T1, A0, 7)
        b.andi(T1, T1, _REGS - 1)
        b.slli(T1, T1, 2)
        b.add(T1, A1, T1)
        b.lw(T2, 0, T1)             # regs[rb]
        b.mul(S0, S0, T2)           # phase 1: product
        b.xor(S1, S0, A0)           # phase 2 folds it; s0 dead below
        b.li(A0, 2)
        b.jal("log_event")
        b.add(V0, S1, V0)
        b.epilogue()

    # log_event(a0=class) -> v0: bump stats[class].  Leaf with one save.
    with b.proc("log_event", saves=(S0,)):
        b.la(S0, "stats")
        b.andi(T0, A0, _STATS_WORDS - 1)
        b.slli(T0, T0, 2)
        b.add(S0, S0, T0)
        b.lw(T1, 0, S0)
        b.addi(T1, T1, 1)
        b.sw(T1, 0, S0)
        b.move(V0, T1)
        b.epilogue()

    return b.build()


WORKLOAD = REGISTRY.register(
    Workload(
        name="m88ksim_like",
        analog="m88ksim",
        description="ISA-simulator dispatch loop; interpreter-grade calls "
                    "over a memory-resident register file",
        build=build,
    )
)
