"""ijpeg-like workload: 8x8 block transforms and quantization.

Mirrors SPEC95 ``ijpeg``: long-running loop-nest arithmetic over image
blocks with very few procedure calls (two per block).  The block transform
is register-hungry (it saves six callee-saved registers, like heavily
unrolled compiled code), while ``main`` only needs two of those registers
during its setup phase — so the E-DVI rewriter kills ``s4``/``s5`` at the
in-loop call sites and the LVM eliminates that slice of the transform's
save/restore traffic, the Figure 7 pattern at low call frequency.
"""

from __future__ import annotations

from repro.isa.registers import (
    A0, A1, S0, S1, S2, S3, S4, S5, S6, T0, T1, T2, T3, T4, T5, T6, T7, T8, V0, ZERO,
)
from repro.program.builder import ProgramBuilder
from repro.program.program import Program
from repro.workloads.common import REGISTRY, Workload, lcg_stream

_BLOCK_WORDS = 64  # 8x8
_QTAB_WORDS = 16


def build(scale: int = 1) -> Program:
    """Build the ijpeg-like program; ``scale`` multiplies the block count."""
    n_blocks = 24 * scale
    b = ProgramBuilder("ijpeg_like")

    b.words("blocks", lcg_stream(0x1DEA, n_blocks * _BLOCK_WORDS, modulo=4096))
    b.zeros("qtab", _QTAB_WORDS)
    b.zeros("checksum", 1)

    # main: s0=block idx, s1=&blocks, s2=checksum, s3=n_blocks, s6=&qtab;
    # s4 (qtab cursor) and s5 (scale factor) are live only during setup.
    with b.proc("main", saves=(S0, S1, S2, S3, S4, S5, S6), save_ra=True):
        # -- setup phase: build the quantization table using s4/s5 --------
        b.la(S6, "qtab")
        b.li(S4, 0)
        b.li(S5, 7)
        b.label("qsetup")
        b.mul(T0, S4, S5)
        b.andi(T0, T0, 31)
        b.addi(T0, T0, 1)
        b.slli(T1, S4, 2)
        b.add(T1, S6, T1)
        b.sw(T0, 0, T1)
        b.addi(S4, S4, 1)
        b.slti(T2, S4, _QTAB_WORDS)
        b.bne(T2, ZERO, "qsetup")

        # -- block loop: s4/s5 are dead at every call site below ----------
        b.la(S1, "blocks")
        b.li(S0, 0)
        b.li(S2, 0)
        b.li(S3, n_blocks)
        b.label("block_loop")
        b.slli(T0, S0, 8)  # block byte offset = idx * 64 words * 4
        b.add(A0, S1, T0)
        b.jal("transform_block")
        b.xor(S2, S2, V0)
        b.slli(T0, S0, 8)
        b.add(A0, S1, T0)
        b.move(A1, S6)
        b.jal("quant_block")
        b.add(S2, S2, V0)
        b.addi(S0, S0, 1)
        b.blt(S0, S3, "block_loop")

        b.la(T0, "checksum")
        b.sw(S2, 0, T0)
        b.move(V0, S2)
        b.halt()

    # transform_block(a0=block) -> v0: in-place row and column butterflies
    # with running accumulators.  s0=row/col counter, s1=line pointer,
    # s2..s5=accumulators (a wide register footprint, as unrolled compiled
    # code would have).
    with b.proc("transform_block", saves=(S0, S1, S2, S3, S4, S5)):
        b.li(S2, 0)
        b.li(S3, 0)
        b.li(S4, 0)
        b.li(S5, 1)
        # --- row pass: 8 rows of 4 unrolled butterflies ------------------
        b.li(S0, 0)
        b.label("tb_row")
        b.slli(T0, S0, 5)  # row byte offset = row * 8 words * 4
        b.add(S1, A0, T0)
        for k in range(4):
            lo, hi = 4 * k, 4 * (7 - k)
            b.lw(T1, lo, S1)
            b.lw(T2, hi, S1)
            b.add(T3, T1, T2)
            b.sub(T4, T1, T2)
            b.srai(T4, T4, 1)
            b.sw(T3, lo, S1)
            b.sw(T4, hi, S1)
        b.lw(T5, 0, S1)
        b.add(S2, S2, T5)
        b.lw(T6, 28, S1)
        b.xor(S3, S3, T6)
        b.addi(S0, S0, 1)
        b.slti(T0, S0, 8)
        b.bne(T0, ZERO, "tb_row")
        # --- column pass: 8 columns, stride 32 bytes ----------------------
        b.li(S0, 0)
        b.label("tb_col")
        b.slli(T0, S0, 2)
        b.add(S1, A0, T0)
        for k in range(4):
            lo, hi = 32 * k, 32 * (7 - k)
            b.lw(T1, lo, S1)
            b.lw(T2, hi, S1)
            b.add(T3, T1, T2)
            b.sub(T4, T1, T2)
            b.srai(T4, T4, 1)
            b.sw(T3, lo, S1)
            b.sw(T4, hi, S1)
        b.lw(T7, 0, S1)
        b.add(S4, S4, T7)
        b.lw(T8, 224, S1)
        b.add(S5, S5, T8)
        b.addi(S0, S0, 1)
        b.slti(T0, S0, 8)
        b.bne(T0, ZERO, "tb_col")
        # summary value
        b.add(T0, S2, S3)
        b.add(T1, S4, S5)
        b.xor(V0, T0, T1)
        b.epilogue()

    # quant_block(a0=block, a1=qtab) -> v0: divide every coefficient by a
    # table entry (exercising the long-latency divider) and accumulate.
    # s0=index, s1=accumulator, s2=bound.
    with b.proc("quant_block", saves=(S0, S1, S2)):
        b.li(S0, 0)
        b.li(S1, 0)
        b.li(S2, _BLOCK_WORDS)
        b.label("qb_loop")
        b.slli(T0, S0, 2)
        b.add(T1, A0, T0)
        b.lw(T2, 0, T1)
        b.andi(T3, S0, _QTAB_WORDS - 1)
        b.slli(T3, T3, 2)
        b.add(T3, A1, T3)
        b.lw(T4, 0, T3)
        b.div(T5, T2, T4)
        b.sw(T5, 0, T1)
        b.xor(S1, S1, T5)
        b.addi(S0, S0, 1)
        b.blt(S0, S2, "qb_loop")
        b.move(V0, S1)
        b.epilogue()

    return b.build()


WORKLOAD = REGISTRY.register(
    Workload(
        name="ijpeg_like",
        analog="ijpeg",
        description="8x8 block transform + quantization; few calls, "
                    "wide-footprint leaf procedures",
        build=build,
    )
)
