"""repro: a reproduction of "Exploiting Dead Value Information" (MICRO-30, 1997).

The public API re-exports the pieces a downstream user needs to author or
rewrite programs, run them functionally, time them on the out-of-order
model, and regenerate every figure of the paper's evaluation.  See
README.md for a tour and DESIGN.md for the system inventory.
"""

from repro.dvi import DVIConfig, DVIEngine, LiveValueMask, LVMStack, SRScheme
from repro.errors import DVIViolationError, ReproError, SimulationError
from repro.isa import ABI, DEFAULT_ABI, Instruction, Opcode
from repro.program import Program, ProgramBuilder, assemble, disassemble
from repro.rewrite import check_equivalence, insert_edvi, strip_edvi, verify_dvi
from repro.sim import (
    FunctionalResult,
    MachineConfig,
    PipelineStats,
    Trace,
    run_program,
    simulate,
)
from repro.timing import RegFileTimingModel, performance_curves

__version__ = "1.0.0"

__all__ = [
    "ABI",
    "DEFAULT_ABI",
    "DVIConfig",
    "DVIEngine",
    "DVIViolationError",
    "FunctionalResult",
    "Instruction",
    "LVMStack",
    "LiveValueMask",
    "MachineConfig",
    "Opcode",
    "PipelineStats",
    "Program",
    "ProgramBuilder",
    "RegFileTimingModel",
    "ReproError",
    "SRScheme",
    "SimulationError",
    "Trace",
    "assemble",
    "check_equivalence",
    "disassemble",
    "insert_edvi",
    "performance_curves",
    "run_program",
    "simulate",
    "strip_edvi",
    "verify_dvi",
]
