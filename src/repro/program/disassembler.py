"""Disassembler: render programs or encoded words back to assembly text."""

from __future__ import annotations

from typing import Iterable, List

from repro.isa.encoding import decode
from repro.isa.instruction import INST_BYTES, format_instruction
from repro.program.program import Program


def disassemble_words(words: Iterable[int]) -> List[str]:
    """Decode and format a sequence of encoded 32-bit words."""
    return [
        format_instruction(decode(word, index))
        for index, word in enumerate(words)
    ]


def disassemble(program: Program, *, addresses: bool = True) -> str:
    """A labelled listing of ``program`` (like ``objdump -d``)."""
    label_lines = {}
    for label, index in sorted(program.labels.items(), key=lambda kv: kv[1]):
        label_lines.setdefault(index, []).append(label)
    lines: List[str] = []
    for index, inst in enumerate(program.insts):
        for label in label_lines.get(index, []):
            lines.append(f"{label}:")
        prefix = f"  {index * INST_BYTES:#06x}  " if addresses else "  "
        lines.append(prefix + format_instruction(inst))
    return "\n".join(lines)
