"""Program representation, authoring DSL, assembler, and disassembler."""

from repro.program.assembler import AssemblerError, assemble
from repro.program.builder import ProgramBuilder
from repro.program.disassembler import disassemble
from repro.program.program import (
    DATA_BASE,
    STACK_TOP,
    ProcedureDecl,
    Program,
    ProgramError,
)

__all__ = [
    "AssemblerError",
    "DATA_BASE",
    "STACK_TOP",
    "ProcedureDecl",
    "Program",
    "ProgramBuilder",
    "ProgramError",
    "assemble",
    "disassemble",
]
