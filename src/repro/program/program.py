"""Program container: instructions, labels, data segment, linking.

A :class:`Program` is the unit everything else operates on — the binary
rewriter transforms one, the functional emulator executes one, and the
experiments characterize one.  Control-flow targets are authored as label
strings and resolved to instruction indices by :meth:`Program.link`; most
consumers require a linked program.

Memory layout (byte addresses):

* code starts at address 0; instruction *i* occupies ``[4i, 4i+4)``,
* the data segment starts at :data:`DATA_BASE`,
* the stack starts at :data:`STACK_TOP` and grows down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.isa.instruction import INST_BYTES, Instruction

#: First byte address of the data segment.
DATA_BASE = 0x0010_0000

#: Initial stack pointer (grows toward lower addresses).
STACK_TOP = 0x7FFF_F000


class ProgramError(ValueError):
    """A structural problem with a program (bad label, unlinked use, ...)."""


@dataclass(frozen=True)
class ProcedureDecl:
    """A declared procedure: a name and its half-open instruction range."""

    name: str
    start: int
    end: int

    def __contains__(self, index: int) -> bool:
        return self.start <= index < self.end


@dataclass
class Program:
    """A complete guest program.

    Attributes:
        name: Identifier used in reports.
        insts: The instruction list; ``insts[i]`` sits at byte address ``4i``.
        labels: Label name -> instruction index.
        data: Initial data-segment contents, word address -> 32-bit value.
        entry: Label of the first executed instruction.
        procedures: Declared procedure extents (from the builder), used by
            the analyses.  Order follows program layout.
        linked: Whether all control targets have been resolved to indices.
    """

    name: str
    insts: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    data: Dict[int, int] = field(default_factory=dict)
    entry: str = "main"
    procedures: List[ProcedureDecl] = field(default_factory=list)
    linked: bool = False
    #: Data words that hold *code addresses* (jump/call tables): byte
    #: address -> label whose byte address the word must contain.  A binary
    #: rewriter that moves code must re-resolve these (see
    #: :meth:`apply_relocations`), exactly like relocation entries in a
    #: real object format.
    relocations: List[Tuple[int, str]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Basic queries.
    # ------------------------------------------------------------------

    def __getstate__(self) -> Dict[str, object]:
        # The superblock compiler caches its (exec-generated, hence
        # unpicklable) output on the instance; artifacts and worker IPC
        # must ship the program without it.  Receivers recompile lazily.
        state = self.__dict__.copy()
        state.pop("_superblocks", None)
        return state

    def __len__(self) -> int:
        return len(self.insts)

    @property
    def code_bytes(self) -> int:
        """Static code size in bytes (the Figure 13 metric)."""
        return len(self.insts) * INST_BYTES

    @property
    def entry_index(self) -> int:
        if self.entry not in self.labels:
            raise ProgramError(f"entry label {self.entry!r} is not defined")
        return self.labels[self.entry]

    def label_at(self, index: int) -> Optional[str]:
        """Some label mapping to instruction ``index``, if any."""
        for name, where in self.labels.items():
            if where == index:
                return name
        return None

    def procedure_at(self, index: int) -> Optional[ProcedureDecl]:
        """The declared procedure containing instruction ``index``, if any."""
        for proc in self.procedures:
            if index in proc:
                return proc
        return None

    def procedure_named(self, name: str) -> ProcedureDecl:
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise ProgramError(f"no procedure named {name!r}")

    # ------------------------------------------------------------------
    # Linking.
    # ------------------------------------------------------------------

    def link(self) -> "Program":
        """Resolve all label targets to instruction indices (in place).

        Idempotent; returns ``self`` for chaining.  Raises
        :class:`ProgramError` on undefined labels or out-of-range targets.
        """
        resolved: List[Instruction] = []
        for index, inst in enumerate(self.insts):
            target = inst.target
            if isinstance(target, str):
                if target not in self.labels:
                    raise ProgramError(
                        f"instruction {index} ({inst.op.name}) targets "
                        f"undefined label {target!r}"
                    )
                inst = inst.with_target(self.labels[target])
            elif isinstance(target, int):
                if not 0 <= target < len(self.insts):
                    raise ProgramError(
                        f"instruction {index} targets out-of-range index {target}"
                    )
            resolved.append(inst)
        self.insts = resolved
        self.linked = True
        self.validate()
        return self

    def require_linked(self) -> None:
        if not self.linked:
            raise ProgramError(f"program {self.name!r} must be linked first")

    def validate(self) -> None:
        """Structural sanity checks (labels and procedures in range)."""
        size = len(self.insts)
        for name, index in self.labels.items():
            if not 0 <= index <= size:
                raise ProgramError(f"label {name!r} out of range: {index}")
        for proc in self.procedures:
            if not (0 <= proc.start <= proc.end <= size):
                raise ProgramError(f"procedure {proc.name!r} out of range")

    # ------------------------------------------------------------------
    # Data-segment helpers.
    # ------------------------------------------------------------------

    def set_words(self, addr: int, values: Sequence[int]) -> None:
        """Install ``values`` as consecutive words starting at ``addr``."""
        if addr % 4:
            raise ProgramError(f"unaligned data address: {addr:#x}")
        for offset, value in enumerate(values):
            self.data[addr + 4 * offset] = value & 0xFFFF_FFFF

    # ------------------------------------------------------------------
    # Transformation support (used by the binary rewriter).
    # ------------------------------------------------------------------

    def with_insts(
        self,
        insts: List[Instruction],
        labels: Dict[str, int],
        procedures: List[ProcedureDecl],
        *,
        name: Optional[str] = None,
        linked: bool = False,
    ) -> "Program":
        """A copy of this program with a rewritten text segment."""
        result = Program(
            name=name or self.name,
            insts=list(insts),
            labels=dict(labels),
            data=dict(self.data),
            entry=self.entry,
            procedures=list(procedures),
            linked=linked,
            relocations=list(self.relocations),
        )
        result.apply_relocations()
        return result

    def apply_relocations(self) -> None:
        """Re-resolve jump-table data words against the current labels."""
        for addr, label in self.relocations:
            if label not in self.labels:
                raise ProgramError(
                    f"relocation at {addr:#x} references undefined label {label!r}"
                )
            self.data[addr] = (self.labels[label] * INST_BYTES) & 0xFFFF_FFFF

    def listing(self) -> str:
        """A human-readable disassembly listing with labels."""
        by_index: Dict[int, List[str]] = {}
        for label, index in sorted(self.labels.items(), key=lambda kv: kv[1]):
            by_index.setdefault(index, []).append(label)
        lines: List[str] = []
        for index, inst in enumerate(self.insts):
            for label in by_index.get(index, []):
                lines.append(f"{label}:")
            lines.append(f"  {index * INST_BYTES:#06x}  {inst}")
        return "\n".join(lines)


def call_targets(program: Program) -> Dict[int, Tuple[int, ...]]:
    """Map each direct call-site index to its (single) target index.

    Requires a linked program.  Indirect calls (``jalr``) have no static
    target and are omitted.
    """
    program.require_linked()
    targets: Dict[int, Tuple[int, ...]] = {}
    for index, inst in enumerate(program.insts):
        if inst.is_call and isinstance(inst.target, int):
            targets[index] = (inst.target,)
    return targets
