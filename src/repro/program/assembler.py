"""A text assembler for the MIPS-like ISA.

The assembler accepts a small, conventional syntax and produces a
:class:`~repro.program.program.Program`.  Workloads are authored with the
:class:`~repro.program.builder.ProgramBuilder` DSL, but the text form is
handy for examples, tests, and pasting listings from the paper.

Syntax overview::

    .data
    table:  .word 1, 2, 3
    buf:    .space 64            # bytes (rounded up to words)

    .text
    .proc main save_ra           # emits prologue; .endproc records extent
    main_body:
        li   t0, 100
        lw   t1, 0(t0)
        addi t1, t1, 1
        beq  t1, zero, out
        jal  helper
    out:
        epilogue                 # emits restores + return
    .endproc

Directives: ``.data``, ``.text``, ``.word``, ``.space``, ``.entry NAME``,
``.proc NAME [saves=s0,s1] [save_ra] [locals=N]``, ``.endproc``.
Pseudo-instructions: ``li``, ``la``, ``move``, ``epilogue``.
Comments run from ``#`` or ``;`` to end of line.  Operands may be separated
by commas or spaces.  ``kill`` takes a register list: ``kill s0, s1``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence

from repro.isa import registers as regs
from repro.isa.opcodes import Opcode
from repro.program.builder import ProgramBuilder
from repro.program.program import Program, ProgramError


class AssemblerError(ProgramError):
    """A parse or semantic error, annotated with the source line number."""

    def __init__(self, lineno: int, message: str) -> None:
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_LABEL_RE = re.compile(r"^([A-Za-z_][\w.$]*):\s*(.*)$")
_MEM_OPERAND_RE = re.compile(r"^(-?\w+)\((\$?\w+)\)$")

_RRR_NAMES = {
    "add", "sub", "mul", "div", "rem", "and", "or", "xor", "nor",
    "sll", "srl", "sra", "slt", "sltu",
}
_RRI_NAMES = {"addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti"}
_LOAD_NAMES = {"lw": Opcode.LW, "lb": Opcode.LB, "live_lw": Opcode.LIVE_LW}
_STORE_NAMES = {"sw": Opcode.SW, "sb": Opcode.SB, "live_sw": Opcode.LIVE_SW}
_BRANCH_RR_NAMES = {"beq", "bne", "blt", "bge"}
_BRANCH_RZ_NAMES = {"blez", "bgtz"}


def assemble(source: str, *, name: str = "asm", link: bool = True) -> Program:
    """Assemble ``source`` into a program."""
    return _Assembler(source, name).run(link=link)


class _Assembler:
    def __init__(self, source: str, name: str) -> None:
        self.source = source
        self.builder = ProgramBuilder(name)
        self.section = ".text"
        self.proc_stack: List[object] = []
        self.pending_data_label: Optional[str] = None

    def run(self, *, link: bool) -> Program:
        for lineno, raw in enumerate(self.source.splitlines(), start=1):
            try:
                self._line(raw)
            except AssemblerError:
                raise
            except (ProgramError, ValueError) as exc:
                raise AssemblerError(lineno, str(exc)) from exc
        if self.proc_stack:
            raise AssemblerError(0, "missing .endproc at end of file")
        return self.builder.build(link=link)

    # ------------------------------------------------------------------

    def _line(self, raw: str) -> None:
        text = re.split(r"[#;]", raw, maxsplit=1)[0].strip()
        if not text:
            return
        match = _LABEL_RE.match(text)
        if match:
            label, rest = match.group(1), match.group(2).strip()
            if self.section == ".data":
                self.pending_data_label = label
                if rest:
                    self._data_directive(rest)
                return
            self.builder.label(label)
            if not rest:
                return
            text = rest
        if text.startswith("."):
            self._directive(text)
        elif self.section == ".data":
            self._data_directive(text)
        else:
            self._instruction(text)

    def _directive(self, text: str) -> None:
        parts = text.split(None, 1)
        head = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if head in (".data", ".text"):
            self.section = head
        elif head == ".entry":
            self.builder.entry = rest.strip()
        elif head == ".word":
            self._data_directive(text)
        elif head == ".space":
            self._data_directive(text)
        elif head == ".proc":
            self._proc_directive(rest)
        elif head == ".endproc":
            if not self.proc_stack:
                raise ProgramError(".endproc without .proc")
            ctx = self.proc_stack.pop()
            ctx.__exit__(None, None, None)  # type: ignore[attr-defined]
        else:
            raise ProgramError(f"unknown directive {head!r}")

    def _proc_directive(self, rest: str) -> None:
        tokens = rest.replace(",", " ").split()
        if not tokens:
            raise ProgramError(".proc needs a name")
        name = tokens[0]
        saves: List[int] = []
        save_ra = False
        locals_words = 0
        for token in tokens[1:]:
            if token == "save_ra":
                save_ra = True
            elif token.startswith("saves="):
                saves = [regs.parse_reg(r) for r in token[6:].split("+") if r]
            elif token.startswith("locals="):
                locals_words = int(token[7:])
            else:
                raise ProgramError(f"bad .proc attribute {token!r}")
        ctx = self.builder.proc(
            name, saves=saves, save_ra=save_ra, locals_words=locals_words
        )
        ctx.__enter__()
        self.proc_stack.append(ctx)

    def _data_directive(self, text: str) -> None:
        parts = text.split(None, 1)
        head = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        label = self.pending_data_label
        self.pending_data_label = None
        if label is None:
            raise ProgramError(f"data directive {head!r} needs a label")
        if head == ".word":
            values = [self._int(v) for v in rest.replace(",", " ").split()]
            self.builder.words(label, values)
        elif head == ".space":
            byte_count = self._int(rest.strip())
            self.builder.zeros(label, (byte_count + 3) // 4)
        else:
            raise ProgramError(f"unknown data directive {head!r}")

    # ------------------------------------------------------------------

    def _instruction(self, text: str) -> None:
        parts = text.replace(",", " ").split()
        mnemonic, operands = parts[0].lower(), parts[1:]
        b = self.builder
        if mnemonic in _RRR_NAMES:
            op = Opcode[("AND" if mnemonic == "and" else
                          "OR" if mnemonic == "or" else mnemonic).upper()]
            self._argc(operands, 3, mnemonic)
            b._rrr(op, *(regs.parse_reg(r) for r in operands))
        elif mnemonic in _RRI_NAMES:
            self._argc(operands, 3, mnemonic)
            b._rri(
                Opcode[mnemonic.upper()],
                regs.parse_reg(operands[0]),
                regs.parse_reg(operands[1]),
                self._int(operands[2]),
            )
        elif mnemonic == "lui":
            self._argc(operands, 2, mnemonic)
            b.lui(regs.parse_reg(operands[0]), self._int(operands[1]))
        elif mnemonic in _LOAD_NAMES:
            self._argc(operands, 2, mnemonic)
            rd = regs.parse_reg(operands[0])
            offset, base = self._mem_operand(operands[1])
            b.emit_load(_LOAD_NAMES[mnemonic], rd, base, offset)
        elif mnemonic in _STORE_NAMES:
            self._argc(operands, 2, mnemonic)
            data = regs.parse_reg(operands[0])
            offset, base = self._mem_operand(operands[1])
            b.emit_store(_STORE_NAMES[mnemonic], data, base, offset)
        elif mnemonic in _BRANCH_RR_NAMES:
            self._argc(operands, 3, mnemonic)
            getattr(b, mnemonic)(
                regs.parse_reg(operands[0]),
                regs.parse_reg(operands[1]),
                operands[2],
            )
        elif mnemonic in _BRANCH_RZ_NAMES:
            self._argc(operands, 2, mnemonic)
            getattr(b, mnemonic)(regs.parse_reg(operands[0]), operands[1])
        elif mnemonic in ("j", "jal"):
            self._argc(operands, 1, mnemonic)
            getattr(b, mnemonic)(operands[0])
        elif mnemonic == "jr":
            self._argc(operands, 1, mnemonic)
            b.jr(regs.parse_reg(operands[0]))
        elif mnemonic == "jalr":
            b.jalr(regs.parse_reg(operands[-1]))
        elif mnemonic == "nop":
            b.nop()
        elif mnemonic == "halt":
            b.halt()
        elif mnemonic == "kill":
            if not operands:
                raise ProgramError("kill needs at least one register")
            b.kill(*(regs.parse_reg(r) for r in operands))
        elif mnemonic in ("lvm_save", "lvm_load"):
            self._argc(operands, 1, mnemonic)
            offset, base = self._mem_operand(operands[0])
            getattr(b, mnemonic)(offset, base)
        elif mnemonic == "li":
            self._argc(operands, 2, mnemonic)
            b.li(regs.parse_reg(operands[0]), self._int(operands[1]))
        elif mnemonic == "la":
            self._argc(operands, 2, mnemonic)
            b.la(regs.parse_reg(operands[0]), operands[1])
        elif mnemonic == "move":
            self._argc(operands, 2, mnemonic)
            b.move(regs.parse_reg(operands[0]), regs.parse_reg(operands[1]))
        elif mnemonic == "epilogue":
            b.epilogue()
        else:
            raise ProgramError(f"unknown mnemonic {mnemonic!r}")

    @staticmethod
    def _argc(operands: Sequence[str], count: int, mnemonic: str) -> None:
        if len(operands) != count:
            raise ProgramError(
                f"{mnemonic} expects {count} operands, got {len(operands)}"
            )

    def _mem_operand(self, text: str) -> tuple:
        match = _MEM_OPERAND_RE.match(text)
        if not match:
            raise ProgramError(f"bad memory operand {text!r}")
        return self._int(match.group(1)), regs.parse_reg(match.group(2))

    def _int(self, text: str) -> int:
        text = text.strip()
        try:
            return int(text, 0)
        except ValueError:
            # Allow data-object names as immediates (e.g. `li t0, table`).
            return self.builder.addr_of(text)
