"""An embedded assembly DSL for authoring guest programs.

:class:`ProgramBuilder` is how the synthetic workloads (and many tests) are
written: one method per opcode, a handful of pseudo-instructions (``li``,
``move``), label management, a data-segment allocator, and a procedure
helper that emits ABI-correct prologues and epilogues.

Procedure saves and restores of callee-saved registers are emitted as
``live_sw`` / ``live_lw`` — the paper's new store/load variants that the LVM
hardware may squash when the saved value is dead (section 5.1).  The return
address is saved with ordinary ``sw``/``lw``: it is caller-saved and its
save is required unconditionally in non-leaf procedures.

Example::

    b = ProgramBuilder("demo")
    with b.proc("main", saves=(S0,), save_ra=True):
        b.li(S0, 41)
        b.jal("inc")
        b.move(A0, S0)
        b.epilogue()
    with b.proc("inc"):
        b.addi(V0, A0, 1)
        b.epilogue()
    program = b.build()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.isa import registers as regs
from repro.isa.instruction import Instruction, kill as kill_inst
from repro.isa.opcodes import Opcode
from repro.program.program import DATA_BASE, ProcedureDecl, Program, ProgramError

Target = Union[str, int]


@dataclass
class _OpenProc:
    """Bookkeeping for the procedure currently being emitted."""

    name: str
    start: int
    saves: Tuple[int, ...]
    save_ra: bool
    frame_bytes: int


class ProgramBuilder:
    """Incrementally build a :class:`Program`."""

    def __init__(self, name: str, *, entry: str = "main") -> None:
        self.name = name
        self.entry = entry
        self._insts: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._data: Dict[int, int] = {}
        self._data_next = DATA_BASE
        self._data_names: Dict[str, int] = {}
        self._procs: List[ProcedureDecl] = []
        self._label_fixups: List[Tuple[int, str]] = []
        self._open_proc: Optional[_OpenProc] = None
        self._unique_counter = 0

    # ------------------------------------------------------------------
    # Emission primitives.
    # ------------------------------------------------------------------

    def emit(self, inst: Instruction) -> "ProgramBuilder":
        """Append a raw instruction."""
        self._insts.append(inst)
        return self

    def label(self, name: str) -> str:
        """Define ``name`` at the current position; returns the name."""
        if name in self._labels:
            raise ProgramError(f"label {name!r} defined twice")
        self._labels[name] = len(self._insts)
        return name

    def unique(self, stem: str) -> str:
        """A fresh label name derived from ``stem`` (not yet defined)."""
        self._unique_counter += 1
        return f"{stem}__{self._unique_counter}"

    @property
    def here(self) -> int:
        """The index the next emitted instruction will occupy."""
        return len(self._insts)

    # ------------------------------------------------------------------
    # Data segment.
    # ------------------------------------------------------------------

    def words(self, name: str, values: Sequence[int]) -> int:
        """Allocate and initialize a word array; returns its byte address."""
        addr = self._alloc(name, len(values))
        for offset, value in enumerate(values):
            self._data[addr + 4 * offset] = value & 0xFFFF_FFFF
        return addr

    def zeros(self, name: str, count: int) -> int:
        """Allocate a zero-initialized word array; returns its address."""
        return self._alloc(name, count)

    def label_words(self, name: str, label_names: Sequence[str]) -> int:
        """Allocate a word array of *code addresses* (a jump/call table).

        Each entry is the byte address of a label; resolution is deferred to
        :meth:`build`, so the labels need not exist yet.
        """
        addr = self._alloc(name, len(label_names))
        for offset, label in enumerate(label_names):
            self._label_fixups.append((addr + 4 * offset, label))
        return addr

    def addr_of(self, name: str) -> int:
        """The address of a previously allocated data object."""
        if name not in self._data_names:
            raise ProgramError(f"no data object named {name!r}")
        return self._data_names[name]

    def _alloc(self, name: str, count: int) -> int:
        if name in self._data_names:
            raise ProgramError(f"data object {name!r} allocated twice")
        if count < 0:
            raise ProgramError(f"negative allocation for {name!r}")
        addr = self._data_next
        self._data_names[name] = addr
        self._data_next += 4 * max(count, 1)
        return addr

    # ------------------------------------------------------------------
    # One method per opcode.
    # ------------------------------------------------------------------

    def _rrr(self, op: Opcode, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self.emit(Instruction(op, rd=rd, rs1=rs1, rs2=rs2))

    def _rri(self, op: Opcode, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self.emit(Instruction(op, rd=rd, rs1=rs1, imm=imm))

    def add(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.ADD, rd, rs1, rs2)

    def sub(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.SUB, rd, rs1, rs2)

    def mul(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.MUL, rd, rs1, rs2)

    def div(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.DIV, rd, rs1, rs2)

    def rem(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.REM, rd, rs1, rs2)

    def and_(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.AND, rd, rs1, rs2)

    def or_(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.OR, rd, rs1, rs2)

    def xor(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.XOR, rd, rs1, rs2)

    def nor(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.NOR, rd, rs1, rs2)

    def sll(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.SLL, rd, rs1, rs2)

    def srl(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.SRL, rd, rs1, rs2)

    def sra(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.SRA, rd, rs1, rs2)

    def slt(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.SLT, rd, rs1, rs2)

    def sltu(self, rd: int, rs1: int, rs2: int) -> "ProgramBuilder":
        return self._rrr(Opcode.SLTU, rd, rs1, rs2)

    def addi(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._rri(Opcode.ADDI, rd, rs1, imm)

    def andi(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._rri(Opcode.ANDI, rd, rs1, imm)

    def ori(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._rri(Opcode.ORI, rd, rs1, imm)

    def xori(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._rri(Opcode.XORI, rd, rs1, imm)

    def slli(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._rri(Opcode.SLLI, rd, rs1, imm)

    def srli(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._rri(Opcode.SRLI, rd, rs1, imm)

    def srai(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._rri(Opcode.SRAI, rd, rs1, imm)

    def slti(self, rd: int, rs1: int, imm: int) -> "ProgramBuilder":
        return self._rri(Opcode.SLTI, rd, rs1, imm)

    def lui(self, rd: int, imm: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.LUI, rd=rd, imm=imm))

    def lw(self, rd: int, offset: int, base: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.LW, rd=rd, rs1=base, imm=offset))

    def lb(self, rd: int, offset: int, base: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.LB, rd=rd, rs1=base, imm=offset))

    def sw(self, data: int, offset: int, base: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.SW, rs2=data, rs1=base, imm=offset))

    def sb(self, data: int, offset: int, base: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.SB, rs2=data, rs1=base, imm=offset))

    def live_sw(self, data: int, offset: int, base: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.LIVE_SW, rs2=data, rs1=base, imm=offset))

    def live_lw(self, rd: int, offset: int, base: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.LIVE_LW, rd=rd, rs1=base, imm=offset))

    def emit_load(self, op: Opcode, rd: int, base: int, offset: int) -> "ProgramBuilder":
        """Emit any load opcode (used by the text assembler)."""
        return self.emit(Instruction(op, rd=rd, rs1=base, imm=offset))

    def emit_store(self, op: Opcode, data: int, base: int, offset: int) -> "ProgramBuilder":
        """Emit any store opcode (used by the text assembler)."""
        return self.emit(Instruction(op, rs2=data, rs1=base, imm=offset))

    def beq(self, rs1: int, rs2: int, target: Target) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.BEQ, rs1=rs1, rs2=rs2, target=target))

    def bne(self, rs1: int, rs2: int, target: Target) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.BNE, rs1=rs1, rs2=rs2, target=target))

    def blt(self, rs1: int, rs2: int, target: Target) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.BLT, rs1=rs1, rs2=rs2, target=target))

    def bge(self, rs1: int, rs2: int, target: Target) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.BGE, rs1=rs1, rs2=rs2, target=target))

    def blez(self, rs1: int, target: Target) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.BLEZ, rs1=rs1, target=target))

    def bgtz(self, rs1: int, target: Target) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.BGTZ, rs1=rs1, target=target))

    def j(self, target: Target) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.J, target=target))

    def jal(self, target: Target) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.JAL, target=target))

    def jr(self, rs1: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.JR, rs1=rs1))

    def jalr(self, rs1: int, rd: int = regs.RA) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.JALR, rd=rd, rs1=rs1))

    def nop(self) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.NOP))

    def halt(self) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.HALT))

    def kill(self, *kill_regs: int) -> "ProgramBuilder":
        """Emit an E-DVI kill instruction for the named registers."""
        return self.emit(kill_inst(regs.mask_of(kill_regs)))

    def kill_mask(self, mask: int) -> "ProgramBuilder":
        return self.emit(kill_inst(mask))

    def lvm_save(self, offset: int, base: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.LVM_SAVE, rs1=base, imm=offset))

    def lvm_load(self, offset: int, base: int) -> "ProgramBuilder":
        return self.emit(Instruction(Opcode.LVM_LOAD, rs1=base, imm=offset))

    # ------------------------------------------------------------------
    # Pseudo-instructions.
    # ------------------------------------------------------------------

    def li(self, rd: int, value: int) -> "ProgramBuilder":
        """Load a 32-bit constant (one or two real instructions)."""
        value &= 0xFFFF_FFFF
        signed = value - (1 << 32) if value & (1 << 31) else value
        if -(1 << 15) <= signed < (1 << 15):
            return self.addi(rd, regs.ZERO, signed)
        high = (value >> 16) & 0xFFFF
        low = value & 0xFFFF
        self.lui(rd, high - (1 << 16) if high & (1 << 15) else high)
        if low:
            self.ori(rd, rd, low - (1 << 16) if low & (1 << 15) else low)
        return self

    def la(self, rd: int, name: str) -> "ProgramBuilder":
        """Load the address of a data object allocated by this builder."""
        return self.li(rd, self.addr_of(name))

    def move(self, rd: int, rs: int) -> "ProgramBuilder":
        return self.or_(rd, rs, regs.ZERO)

    # ------------------------------------------------------------------
    # Procedures.
    # ------------------------------------------------------------------

    def proc(
        self,
        name: str,
        *,
        saves: Sequence[int] = (),
        save_ra: bool = False,
        locals_words: int = 0,
    ) -> "_ProcContext":
        """Open a procedure; use as a context manager.

        ``saves`` lists the callee-saved registers the body assigns;
        prologue ``live_sw`` and epilogue ``live_lw`` pairs are emitted for
        each.  ``save_ra`` must be true for non-leaf procedures.  Local
        word slots (``locals_words``) sit below the saved registers and are
        addressed at ``sp + 4*i`` via :meth:`local_offset`.
        """
        return _ProcContext(self, name, tuple(saves), save_ra, locals_words)

    def epilogue(self) -> "ProgramBuilder":
        """Emit the current procedure's epilogue: restores and return."""
        proc = self._require_open_proc()
        offset = proc.frame_bytes - 4 * (len(proc.saves) + (1 if proc.save_ra else 0))
        for reg in proc.saves:
            self.live_lw(reg, offset, regs.SP)
            offset += 4
        if proc.save_ra:
            self.lw(regs.RA, offset, regs.SP)
        self.addi(regs.SP, regs.SP, proc.frame_bytes)
        return self.jr(regs.RA)

    def local_offset(self, slot: int) -> int:
        """Byte offset from ``sp`` of local word slot ``slot``."""
        proc = self._require_open_proc()
        reserved = proc.frame_bytes - 4 * (len(proc.saves) + (1 if proc.save_ra else 0))
        if not 0 <= 4 * slot < reserved:
            raise ProgramError(
                f"local slot {slot} outside frame of procedure {proc.name!r}"
            )
        return 4 * slot

    def _require_open_proc(self) -> _OpenProc:
        if self._open_proc is None:
            raise ProgramError("no procedure is open")
        return self._open_proc

    # ------------------------------------------------------------------
    # Build.
    # ------------------------------------------------------------------

    def build(self, *, link: bool = True) -> Program:
        """Produce the program (linked by default)."""
        if self._open_proc is not None:
            raise ProgramError(
                f"procedure {self._open_proc.name!r} is still open"
            )
        data = dict(self._data)
        program = Program(
            name=self.name,
            insts=list(self._insts),
            labels=dict(self._labels),
            data=data,
            entry=self.entry,
            procedures=list(self._procs),
            relocations=list(self._label_fixups),
        )
        for __, label in self._label_fixups:
            if label not in self._labels:
                raise ProgramError(f"jump-table label {label!r} is undefined")
        program.apply_relocations()
        return program.link() if link else program


class _ProcContext:
    """Context manager emitting a procedure prologue on entry."""

    def __init__(
        self,
        builder: ProgramBuilder,
        name: str,
        saves: Tuple[int, ...],
        save_ra: bool,
        locals_words: int,
    ) -> None:
        for reg in saves:
            if not 0 < reg < regs.NUM_REGS:
                raise ProgramError(f"bad save register: {reg}")
        self._builder = builder
        self._name = name
        self._saves = saves
        self._save_ra = save_ra
        self._locals = locals_words

    def __enter__(self) -> ProgramBuilder:
        b = self._builder
        if b._open_proc is not None:
            raise ProgramError(
                f"cannot open {self._name!r}: {b._open_proc.name!r} is still open"
            )
        frame = 4 * (self._locals + len(self._saves) + (1 if self._save_ra else 0))
        b.label(self._name)
        start = b.here
        if frame:
            b.addi(regs.SP, regs.SP, -frame)
        offset = 4 * self._locals
        for reg in self._saves:
            b.live_sw(reg, offset, regs.SP)
            offset += 4
        if self._save_ra:
            b.sw(regs.RA, offset, regs.SP)
        # Record the extent starting at the label so the prologue is part
        # of the procedure for the analyses.
        b._open_proc = _OpenProc(self._name, start, self._saves, self._save_ra, frame)
        return b

    def __exit__(self, exc_type, exc, tb) -> None:
        b = self._builder
        if exc_type is None:
            proc = b._open_proc
            assert proc is not None and proc.name == self._name
            b._procs.append(ProcedureDecl(proc.name, proc.start, b.here))
        b._open_proc = None
