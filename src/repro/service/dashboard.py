"""The ``GET /dashboard`` page: one self-contained HTML document.

Zero dependencies by design — inline CSS + JS, no CDN, no framework —
so the page works on an air-gapped deployment and adds nothing to the
supply chain.  It is EventSource-driven: the page opens
``/v1/events`` and updates from pushed records (job transitions,
batches, drop markers), refreshing the gauge tiles from ``/v1/stats``
when events indicate change (debounced) plus a slow idle timer.

Visual conventions (deliberate, not decorative):

* gauge tiles carry the headline numbers (queue depth, running,
  in-flight cells, worker occupancy, cache hit rate);
* one single-series sparkline tracks queue depth over time (2px line,
  hover crosshair with value readout; a single series needs no legend —
  the tile title names it);
* job states are *status* colors (done=good, failed=serious,
  quarantined=critical) and always appear beside their text label, so
  state is never encoded by color alone;
* light and dark are both first-class: the dark values are their own
  validated steps, not an automatic inversion, and follow the OS
  setting.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>repro service — live operations</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb;   /* chart surface */
    --page: #f9f9f7;
    --text-primary: #0b0b0b;
    --text-secondary: #52514e;
    --muted: #898781;
    --grid: #e1e0d9;
    --border: rgba(11,11,11,0.10);
    --series-1: #2a78d6;    /* queue-depth sparkline */
    --status-good: #0ca30c;
    --status-serious: #ec835a;
    --status-critical: #d03b3b;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19;
      --page: #0d0d0d;
      --text-primary: #ffffff;
      --text-secondary: #c3c2b7;
      --muted: #898781;
      --grid: #2c2c2a;
      --border: rgba(255,255,255,0.10);
      --series-1: #3987e5;
    }
  }
  * { box-sizing: border-box; }
  body {
    margin: 0; padding: 16px 20px; background: var(--page);
    color: var(--text-primary);
    font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  }
  header { display: flex; align-items: baseline; gap: 12px; margin-bottom: 14px; }
  header h1 { font-size: 17px; font-weight: 600; margin: 0; }
  #conn { font-size: 12px; color: var(--text-secondary); }
  #conn .dot { display: inline-block; width: 8px; height: 8px; border-radius: 50%;
               margin-right: 4px; background: var(--muted); vertical-align: baseline; }
  #conn.live .dot { background: var(--status-good); }
  .tiles { display: grid; grid-template-columns: repeat(auto-fit, minmax(150px, 1fr));
           gap: 10px; margin-bottom: 14px; }
  .tile { background: var(--surface-1); border: 1px solid var(--border);
          border-radius: 8px; padding: 10px 12px; }
  .tile .label { font-size: 11px; text-transform: uppercase; letter-spacing: .04em;
                 color: var(--muted); }
  .tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
  .tile .sub { font-size: 11px; color: var(--text-secondary); }
  .panel { background: var(--surface-1); border: 1px solid var(--border);
           border-radius: 8px; padding: 10px 12px; margin-bottom: 14px; }
  .panel h2 { font-size: 12px; text-transform: uppercase; letter-spacing: .04em;
              color: var(--muted); margin: 0 0 8px; font-weight: 600; }
  #spark-wrap { position: relative; }
  #spark { width: 100%; height: 72px; display: block; cursor: crosshair; }
  #spark-tip { position: absolute; pointer-events: none; display: none;
               background: var(--surface-1); border: 1px solid var(--border);
               border-radius: 4px; padding: 2px 7px; font-size: 11px;
               color: var(--text-primary); white-space: nowrap; }
  table { width: 100%; border-collapse: collapse; font-size: 12.5px; }
  th { text-align: left; color: var(--muted); font-weight: 500; font-size: 11px;
       text-transform: uppercase; letter-spacing: .04em;
       border-bottom: 1px solid var(--grid); padding: 3px 8px 5px 0; }
  td { padding: 4px 8px 4px 0; border-bottom: 1px solid var(--grid);
       color: var(--text-secondary); font-variant-numeric: tabular-nums; }
  td.ev { color: var(--text-primary); }
  .state { color: var(--text-primary); }
  .state .dot { display: inline-block; width: 8px; height: 8px; border-radius: 50%;
                margin-right: 5px; background: var(--muted); }
  .state.done .dot { background: var(--status-good); }
  .state.failed .dot { background: var(--status-serious); }
  .state.quarantined .dot { background: var(--status-critical); }
  .state.running .dot, .state.claimed .dot { background: var(--series-1); }
  .controls { float: right; font-size: 12px; color: var(--text-secondary);
              font-weight: 400; text-transform: none; letter-spacing: 0; }
  #empty-feed { color: var(--muted); font-size: 12.5px; }
</style>
</head>
<body>
<header>
  <h1>repro service — live operations</h1>
  <span id="conn"><span class="dot"></span><span id="conn-text">connecting…</span></span>
  <span id="uptime" style="font-size:12px;color:var(--muted)"></span>
</header>

<div class="tiles">
  <div class="tile"><div class="label">Queue depth</div>
    <div class="value" id="t-depth">–</div>
    <div class="sub" id="t-states"></div></div>
  <div class="tile"><div class="label">Workers active</div>
    <div class="value" id="t-active">–</div>
    <div class="sub" id="t-workers"></div></div>
  <div class="tile"><div class="label">In-flight cells</div>
    <div class="value" id="t-cells">–</div>
    <div class="sub" id="t-batches"></div></div>
  <div class="tile"><div class="label">Cache hit rate</div>
    <div class="value" id="t-cache">–</div>
    <div class="sub" id="t-cache-n"></div></div>
  <div class="tile"><div class="label">Quarantined</div>
    <div class="value" id="t-quar">–</div>
    <div class="sub" id="t-dropped"></div></div>
</div>

<div class="panel">
  <h2>Queue depth — live</h2>
  <div id="spark-wrap">
    <canvas id="spark" height="72"></canvas>
    <div id="spark-tip"></div>
  </div>
</div>

<div class="panel">
  <h2>Recent quarantines</h2>
  <table id="quar-table" style="display:none">
    <thead><tr><th>Time</th><th>Job</th><th>Reason</th></tr></thead>
    <tbody id="quar-rows"></tbody>
  </table>
  <div id="empty-quar" style="color:var(--muted);font-size:12.5px">none</div>
</div>

<div class="panel">
  <h2>Event feed
    <label class="controls"><input type="checkbox" id="show-http"> show http</label>
  </h2>
  <table>
    <thead><tr><th>Time</th><th>Event</th><th>Detail</th></tr></thead>
    <tbody id="feed-rows"></tbody>
  </table>
  <div id="empty-feed">waiting for events…</div>
</div>

<script>
"use strict";
const $ = (id) => document.getElementById(id);
const FEED_CAP = 50, QUAR_CAP = 10, SPARK_CAP = 240;
const feed = [], quars = [], depths = [];
let dropped = 0, showHttp = false, statsTimer = null, statsDirty = false;

function fmtTime(ts) {
  return new Date(ts * 1000).toLocaleTimeString([], {hour12: false});
}

function stateCell(state) {
  const span = document.createElement("span");
  span.className = "state " + state;
  const dot = document.createElement("span");
  dot.className = "dot";
  span.appendChild(dot);
  span.appendChild(document.createTextNode(state));
  return span;
}

function renderFeed() {
  const rows = $("feed-rows");
  rows.textContent = "";
  let shown = 0;
  for (let i = feed.length - 1; i >= 0 && shown < FEED_CAP; i--) {
    const ev = feed[i];
    if (ev.event === "http" && !showHttp) continue;
    shown++;
    const tr = document.createElement("tr");
    const t0 = document.createElement("td");
    t0.textContent = ev.ts ? fmtTime(ev.ts) : "";
    const t1 = document.createElement("td");
    t1.className = "ev";
    t1.textContent = ev.event;
    const t2 = document.createElement("td");
    if (ev.event === "job") {
      t2.appendChild(stateCell(ev.state));
      t2.appendChild(document.createTextNode(
        " " + ev.id + (ev.source ? " (" + ev.source + ")" : "")));
    } else if (ev.event === "dropped") {
      t2.textContent = ev.count + " event(s) dropped (slow consumer)";
    } else if (ev.event === "http") {
      t2.textContent = ev.method + " " + ev.path + " → " + ev.status +
        " (" + ev.duration_ms + " ms)";
    } else {
      const detail = Object.entries(ev)
        .filter(([k]) => !["event", "ts", "seq"].includes(k))
        .map(([k, v]) => k + "=" + JSON.stringify(v)).join(" ");
      t2.textContent = detail;
    }
    tr.append(t0, t1, t2);
    rows.appendChild(tr);
  }
  $("empty-feed").style.display = shown ? "none" : "";
}

function renderQuars() {
  const rows = $("quar-rows");
  rows.textContent = "";
  for (let i = quars.length - 1; i >= 0; i--) {
    const ev = quars[i];
    const tr = document.createElement("tr");
    const cells = [fmtTime(ev.ts), ev.id, ev.failure_reason || ""];
    for (const text of cells) {
      const td = document.createElement("td");
      td.textContent = text;
      tr.appendChild(td);
    }
    rows.appendChild(tr);
  }
  $("quar-table").style.display = quars.length ? "" : "none";
  $("empty-quar").style.display = quars.length ? "none" : "";
}

function drawSpark(hover) {
  const canvas = $("spark");
  const dpr = window.devicePixelRatio || 1;
  const w = canvas.clientWidth, h = canvas.clientHeight;
  canvas.width = w * dpr; canvas.height = h * dpr;
  const ctx = canvas.getContext("2d");
  ctx.scale(dpr, dpr);
  ctx.clearRect(0, 0, w, h);
  const css = getComputedStyle(document.documentElement);
  // hairline baseline
  ctx.strokeStyle = css.getPropertyValue("--grid").trim();
  ctx.lineWidth = 1;
  ctx.beginPath(); ctx.moveTo(0, h - 1.5); ctx.lineTo(w, h - 1.5); ctx.stroke();
  if (depths.length < 2) return;
  const max = Math.max(1, ...depths.map((d) => d.v));
  const x = (i) => (i / (SPARK_CAP - 1)) * (w - 4) + 2;
  const y = (v) => h - 4 - (v / max) * (h - 10);
  const offset = SPARK_CAP - depths.length;
  ctx.strokeStyle = css.getPropertyValue("--series-1").trim();
  ctx.lineWidth = 2;
  ctx.lineJoin = "round";
  ctx.beginPath();
  depths.forEach((d, i) => {
    if (i === 0) ctx.moveTo(x(offset + i), y(d.v));
    else ctx.lineTo(x(offset + i), y(d.v));
  });
  ctx.stroke();
  if (hover != null) {
    const i = Math.max(0, Math.min(depths.length - 1, hover - offset));
    const d = depths[i];
    ctx.strokeStyle = css.getPropertyValue("--muted").trim();
    ctx.lineWidth = 1;
    ctx.beginPath();
    ctx.moveTo(x(offset + i), 2); ctx.lineTo(x(offset + i), h - 2); ctx.stroke();
    const tip = $("spark-tip");
    tip.style.display = "block";
    tip.style.left = Math.min(x(offset + i) + 8, w - 120) + "px";
    tip.style.top = "2px";
    tip.textContent = "depth " + d.v + " · " + fmtTime(d.t);
  } else {
    $("spark-tip").style.display = "none";
  }
}

$("spark").addEventListener("mousemove", (e) => {
  const rect = e.target.getBoundingClientRect();
  drawSpark(Math.round(((e.clientX - rect.left) / rect.width) * (SPARK_CAP - 1)));
});
$("spark").addEventListener("mouseleave", () => drawSpark(null));

function applyStats(stats) {
  const q = stats.queue, wk = stats.workers, d = stats.dispatcher;
  $("t-depth").textContent = q.depth;
  $("t-states").textContent =
    q.states.queued + " queued · " + q.states.running + " running";
  $("t-active").textContent = wk.active + "/" + wk.count;
  $("t-workers").textContent = "pool " + wk.pool_size +
    (wk.warm_pool ? (wk.warm_pool.live ? " · warm" : " · cold") : "");
  $("t-cells").textContent = wk.inflight_cells;
  $("t-batches").textContent = d.batches + " batches · " +
    d.cells_executed + " cells";
  let hits = 0, misses = 0;
  for (const c of Object.values(stats.cache.session)) {
    hits += c.hits; misses += c.misses;
  }
  $("t-cache").textContent =
    hits + misses ? Math.round((100 * hits) / (hits + misses)) + "%" : "–";
  $("t-cache-n").textContent = hits + " hits · " + misses + " misses";
  $("t-quar").textContent = q.states.quarantined;
  $("t-dropped").textContent = dropped ? dropped + " events dropped here" : "";
  $("uptime").textContent = "up " + Math.round(stats.uptime_seconds) + "s";
  depths.push({t: Date.now() / 1000, v: q.depth});
  if (depths.length > SPARK_CAP) depths.shift();
  drawSpark(null);
}

function refreshStats() {
  statsDirty = false;
  fetch("/v1/stats").then((r) => r.json()).then(applyStats).catch(() => {});
}

function scheduleStats() {
  // Debounced: a burst of pushed events costs one stats fetch.
  if (statsDirty) return;
  statsDirty = true;
  setTimeout(refreshStats, 400);
}

function onEvent(ev) {
  feed.push(ev);
  if (feed.length > FEED_CAP * 4) feed.splice(0, feed.length - FEED_CAP * 2);
  if (ev.event === "dropped") dropped += ev.count;
  if (ev.event === "job" && ev.state === "quarantined") {
    quars.push(ev);
    if (quars.length > QUAR_CAP) quars.shift();
    renderQuars();
  }
  renderFeed();
  if (ev.event !== "http") scheduleStats();
}

function connect() {
  const source = new EventSource("/v1/events");
  source.onopen = () => {
    $("conn").className = "live";
    $("conn-text").textContent = "live";
  };
  source.onerror = () => {
    $("conn").className = "";
    $("conn-text").textContent = "disconnected — retrying";
  };
  source.onmessage = (message) => {
    const ev = JSON.parse(message.data);
    if (ev.event === "hello") { applyStats(ev.stats); return; }
    onEvent(ev);
  };
}

connect();
refreshStats();
setInterval(() => { if (!statsDirty) refreshStats(); }, 5000);
window.addEventListener("resize", () => drawSpark(null));
</script>
</body>
</html>
"""
