"""Consistent-hash routing of request fingerprints to shard servers.

Sharded serving runs N independent server processes; dedup only
converges if every spelling of one logical request reaches the *same*
process, so the routing key is the request *fingerprint* —
``request_digest(normalize_request(payload))`` — not the raw JSON.
Normalization already collapses axis ordering, value spellings
(``1`` vs ``1.0``), and workload aliases, so two clients that would
share a cache artifact also share a shard.

The ring is classic consistent hashing with virtual nodes: each shard
URL is hashed at :data:`VNODES` points on a 64-bit circle, and a key is
owned by the first vnode clockwise of its own hash.  Adding or removing
one shard therefore remaps only ~1/N of the keyspace (pinned by a test)
— the other shards' warm caches and in-flight dedup stay valid, which
is the whole reason for a ring over ``hash(key) % N``.

Everything here is pure stdlib and deterministic (SHA-256, no process
state), so clients, servers, and tests agree on placement without
coordination.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple

__all__ = [
    "VNODES",
    "ConsistentHashRing",
    "parse_shard_spec",
    "route_request",
]

#: Virtual nodes per shard.  64 keeps the max/min keyspace-share ratio
#: under ~1.4 for small N while the ring stays tiny (N*64 points).
VNODES = 64


def _point(token: str) -> int:
    """A stable 64-bit position on the ring for one token."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


def parse_shard_spec(spec: str) -> Tuple[int, int]:
    """Parse ``"K/N"`` into ``(index, count)`` with 0-based K < N."""
    try:
        k_text, n_text = str(spec).split("/", 1)
        index, count = int(k_text), int(n_text)
    except ValueError:
        raise ValueError(
            f"shard spec must look like K/N (e.g. 0/2), got {spec!r}"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"shard spec {spec!r} out of range: need 0 <= K < N"
        )
    return index, count


class ConsistentHashRing:
    """Maps string keys onto a fixed set of node names.

    Nodes are whatever identifies a shard — its announced base URL in
    practice.  Duplicate nodes are rejected (they would silently double
    one shard's keyspace share).
    """

    def __init__(self, nodes: Sequence[str], *, vnodes: int = VNODES) -> None:
        names = [str(n) for n in nodes]
        if not names:
            raise ValueError("consistent-hash ring needs at least one node")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate ring nodes: {names!r}")
        self.nodes: Tuple[str, ...] = tuple(names)
        self.vnodes = int(vnodes)
        points: List[Tuple[int, str]] = []
        for name in names:
            for replica in range(self.vnodes):
                points.append((_point(f"{name}#{replica}"), name))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [owner for _, owner in points]

    def owner(self, key: str) -> str:
        """The node owning ``key``: first vnode clockwise of its hash."""
        position = bisect_right(self._points, _point(str(key)))
        if position == len(self._points):
            position = 0
        return self._owners[position]

    def shares(self, keys: Sequence[str]) -> Dict[str, int]:
        """How many of ``keys`` each node owns (diagnostics + tests)."""
        counts = {name: 0 for name in self.nodes}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts


def route_request(urls: Sequence[str], payload: dict) -> str:
    """Pick the shard URL that owns a raw submit payload.

    Normalizes the payload exactly as the dispatcher will (so ``1`` and
    ``1.0`` spellings, axis order, and aliases all land together) and
    walks the ring over the given URLs.  Raises the dispatcher's
    ``RequestError`` on a malformed payload — better to fail at the
    client than to park an unparseable job on an arbitrary shard.
    """
    from repro.service.dispatcher import normalize_request, request_digest

    ring = ConsistentHashRing([str(u).rstrip("/") for u in urls])
    return ring.owner(request_digest(normalize_request(payload)))
