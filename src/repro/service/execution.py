"""Contained batch execution: deadlines, crash isolation, bisection.

:func:`repro.experiments.parallel.execute` is the fast path — a plain
``multiprocessing.Pool`` map with no story for a worker that hangs
forever or dies mid-cell (``Pool`` even respawns dead workers
silently, which turns a crash into a hang).  This module is the
dispatcher's *containment* path, used when a per-job deadline
(``--job-timeout``) is configured:

* cells run on a ``concurrent.futures.ProcessPoolExecutor`` (spawn
  context), whose contract on worker death is exact: futures that
  completed before the death keep their results, every other future
  raises :class:`BrokenProcessPool` — so a pool crash is a *batch-level
  event with an unknown culprit*;
* each future is awaited with a wall-clock deadline; a cell that blows
  it is declared hung, the pool's processes are killed (a hung worker
  never exits on its own), and the *other* unfinished cells — innocent
  victims of the kill — are re-run on a fresh pool;
* a pool crash triggers **bisection**: the unfinished cells are split
  in half and each half re-executed on its own pool, recursively, until
  the poison cell is isolated in a singleton group (its healthy
  batchmates complete along the way, each cell at most
  ``O(log batch)`` re-submissions — and re-running an already-completed
  cell is a cache hit, so isolation costs pool spawns, not recompute).

The report maps every cell that could not produce a result to a
:class:`CellFailure` (``timeout`` / ``crash`` / ``error``); the
dispatcher turns those into bounded retries or quarantine.

Deterministic fault injection (the faultsim harness) rides the same
zero-overhead pattern as the queue's crash failpoints: when the
``REPRO_FAULTSIM_SPEC`` environment variable names a JSON spec file,
:func:`_worker_run_contained` consults it *in the worker process*
before running each cell and can kill the process, hang, or raise at an
exact cell signature — unset (production), the check is one dict probe
of ``os.environ`` per worker process.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.cache import CacheCounters
from repro.experiments.parallel import (
    Job,
    _absorb,
    _satisfied,
    _worker_init,
    _worker_run,
)
from repro.experiments.runner import ExperimentContext

__all__ = [
    "FAULTSIM_ENV",
    "CellFailure",
    "ContainedReport",
    "InjectedWorkerFault",
    "execute_contained",
]

#: Environment variable naming the fault-injection spec file (JSON).
#: Unset in production; ``tests/service/faultsim.py`` writes it.
FAULTSIM_ENV = "REPRO_FAULTSIM_SPEC"


class InjectedWorkerFault(RuntimeError):
    """The exception a ``raise``-mode injected fault throws in a worker."""


@dataclass
class CellFailure:
    """Why one cell produced no result.

    ``kind`` is ``"timeout"`` (blew the wall-clock deadline),
    ``"crash"`` (isolated as the cell whose execution kills the worker
    pool), or ``"error"`` (raised an ordinary exception — the pool
    survived).
    """

    signature: str
    kind: str
    detail: str


@dataclass
class ContainedReport:
    """What one :func:`execute_contained` call did."""

    #: Cells that completed and were absorbed into the context.
    executed: int = 0
    #: signature -> failure, for every cell that produced no result.
    failures: Dict[str, CellFailure] = field(default_factory=dict)
    #: Worker-pool deaths observed (>= 1 means at least one bisection
    #: round or an isolated poison cell).
    pool_crashes: int = 0
    #: Group splits performed while isolating poison cells.
    bisections: int = 0
    #: Cells that blew the wall-clock deadline.
    timeouts: int = 0


# ----------------------------------------------------------------------
# Worker-side fault injection (active only under the faultsim harness).
# ----------------------------------------------------------------------

#: Per-worker-process cache of the parsed spec (spawn re-imports this
#: module in every worker, so the cache is private to each process).
_FAULT_SPEC: Optional[dict] = None
_FAULT_SPEC_LOADED = False


def _fault_spec() -> Optional[dict]:
    global _FAULT_SPEC, _FAULT_SPEC_LOADED
    if not _FAULT_SPEC_LOADED:
        _FAULT_SPEC_LOADED = True
        path = os.environ.get(FAULTSIM_ENV)
        if path:
            with open(path, encoding="utf-8") as handle:
                _FAULT_SPEC = json.load(handle)
    return _FAULT_SPEC


def _fire_file(spec: dict, signature: str) -> str:
    return os.path.join(spec["state_dir"], f"{signature[:32]}.fires")


def fault_fires(spec_path: str, signature: str) -> int:
    """How many times the fault at ``signature`` has fired (harness API).

    Fires are counted as bytes of an append-only file in the spec's
    ``state_dir`` — one ``O_APPEND`` byte per fire — so the count
    survives the worker process that recorded it being killed a
    microsecond later.
    """
    with open(spec_path, encoding="utf-8") as handle:
        spec = json.load(handle)
    try:
        return os.path.getsize(_fire_file(spec, signature))
    except OSError:
        return 0


def _maybe_inject(job: Job) -> None:
    """Fire a configured fault for this cell, if any remain.

    ``max_fires`` bounds how often a fault fires (transient-failure
    scenarios); the bound is precise for the single-poison configs the
    harness uses — two workers racing the same fault's counter could
    each observe the last remaining fire.
    """
    spec = _fault_spec()
    if not spec:
        return
    fault = spec["faults"].get(job.signature())
    if fault is None:
        return
    path = _fire_file(spec, job.signature())
    max_fires = fault.get("max_fires")
    if max_fires is not None:
        try:
            fired = os.path.getsize(path)
        except OSError:
            fired = 0
        if fired >= max_fires:
            return
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, b"x")
    finally:
        os.close(fd)
    mode = fault["mode"]
    if mode == "kill":
        os._exit(137)
    if mode == "hang":
        time.sleep(float(fault.get("hang_seconds", 3600.0)))
        return  # a bounded "hang" degrades to a delay
    if mode == "raise":
        raise InjectedWorkerFault(
            f"injected fault in {job.kind} cell for {job.workload!r}"
        )
    raise ValueError(f"unknown fault mode {mode!r}")


def _worker_run_contained(job: Job) -> Tuple[Any, dict]:
    """The pool's target: fault check (no-op in production), then run."""
    _maybe_inject(job)
    return _worker_run(job)


# ----------------------------------------------------------------------
# The contained executor.
# ----------------------------------------------------------------------

def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool whose workers cannot be trusted to exit.

    ``shutdown`` alone would join a hung worker forever; killing the
    processes first makes the join immediate and resolves every
    unfinished future to :class:`BrokenProcessPool`.  ``_processes`` is
    private but stable across supported CPythons; if it ever vanishes,
    degrade to an unwaited shutdown (leaks the worker until interpreter
    exit, but never blocks the dispatcher).
    """
    processes = getattr(pool, "_processes", None)
    for process in list((processes or {}).values()):
        process.kill()
    pool.shutdown(wait=processes is not None, cancel_futures=True)


def _run_group(
    group: List[Job],
    context: ExperimentContext,
    job_timeout: float,
    mp_context,
    max_workers: int,
) -> Tuple[Dict[str, Tuple[Any, dict]], List[Tuple[Job, str]],
           List[Job], List[Job], bool]:
    """Run one cell group on one pool.

    Returns ``(results, errors, hung, leftover, crashed)``: harvested
    ``signature -> (value, counter deltas)`` for completed cells,
    ``(cell, message)`` for cells that raised ordinary exceptions,
    cells that blew the deadline, cells left without any verdict (pool
    died under them — re-run or bisect), and whether the pool died.
    """
    workers = max(1, min(max_workers, len(group)))
    cache_root = (
        str(context.cache.root) if context.cache is not None else None
    )
    results: Dict[str, Tuple[Any, dict]] = {}
    errors: List[Tuple[Job, str]] = []
    hung: List[Job] = []
    leftover: List[Job] = []
    crashed = False
    futures: List[Tuple[Job, Any]] = []
    pool = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=mp_context,
        initializer=_worker_init,
        initargs=(context.profile, cache_root),
    )
    killed = False
    try:
        try:
            futures = [
                (cell, pool.submit(_worker_run_contained, cell))
                for cell in group
            ]
        except BrokenProcessPool:
            crashed = True
        for cell, future in futures:
            if crashed or killed:
                break  # pool is gone; harvest pass classifies the rest
            try:
                # The deadline clock starts when the waiter reaches the
                # future, so cells queued behind a busy pool are not
                # charged for their predecessors' runtime.
                results[cell.signature()] = future.result(
                    timeout=job_timeout
                )
            except FutureTimeoutError:
                hung.append(cell)
                killed = True
                _kill_pool(pool)
            except BrokenProcessPool:
                crashed = True
            except Exception as error:
                errors.append((cell, f"{type(error).__name__}: {error}"))
        if crashed:
            # The executor's management thread tears the pool down on
            # its own, but killing outright is idempotent and prompt.
            _kill_pool(pool)
    finally:
        if not (crashed or killed):
            pool.shutdown(wait=True)
    # Harvest pass: futures that completed before a crash/kill keep
    # their results; everything else unclassified is leftover.
    classified = {cell.signature() for cell in hung}
    classified.update(cell.signature() for cell, _ in errors)
    for cell, future in futures:
        signature = cell.signature()
        if signature in results or signature in classified:
            continue
        if not future.done() or future.cancelled():
            leftover.append(cell)
            continue
        outcome = future.exception()
        if outcome is None:
            results[signature] = future.result()
        elif isinstance(outcome, BrokenProcessPool):
            leftover.append(cell)
        else:
            # Completed with an ordinary exception before the pool
            # died around it — a verdict, not collateral damage.
            errors.append((cell, f"{type(outcome).__name__}: {outcome}"))
    return results, errors, hung, leftover, crashed


def _absorb_results(
    cells: List[Job],
    results: Dict[str, Tuple[Any, dict]],
    context: ExperimentContext,
) -> int:
    """Merge harvested worker results (and counter deltas) into the
    context, in cell order — the same deterministic merge
    :func:`~repro.experiments.parallel.execute` performs."""
    absorbed = 0
    for cell in cells:
        payload = results.get(cell.signature())
        if payload is None:
            continue
        value, deltas = payload
        _absorb(cell, value, context)
        absorbed += 1
        if context.cache is not None:
            for kind, (hits, misses, stores) in deltas.items():
                counter = context.cache.counters.setdefault(
                    kind, CacheCounters()
                )
                counter.hits += hits
                counter.misses += misses
                counter.stores += stores
    return absorbed


def execute_contained(
    jobs,
    context: ExperimentContext,
    *,
    job_timeout: float,
    mp_context=None,
    max_workers: Optional[int] = None,
) -> ContainedReport:
    """Run cells with per-cell deadlines and poison isolation.

    The containment counterpart of
    :func:`repro.experiments.parallel.execute`: same skip/dedup and
    deterministic merge, but every cell runs in a killable worker
    process, and a cell that hangs, crashes the pool, or raises is
    *reported* (per-signature in the returned
    :class:`ContainedReport`) instead of poisoning the whole batch.
    Healthy cells always complete — re-execution after a pool death is
    a cache hit for cells that finished before it.
    """
    ctx = mp_context or multiprocessing.get_context("spawn")
    workers = max_workers if max_workers is not None else context.jobs
    pending: List[Job] = []
    seen = set()
    for job in jobs:
        signature = job.signature()
        if signature in seen or _satisfied(job, context):
            continue
        seen.add(signature)
        pending.append(job)
    report = ContainedReport()
    if not pending:
        return report

    groups: List[List[Job]] = [pending]
    while groups:
        group = groups.pop(0)
        results, errors, hung, leftover, crashed = _run_group(
            group, context, job_timeout, ctx, workers
        )
        report.executed += _absorb_results(group, results, context)
        for cell, message in errors:
            report.failures[cell.signature()] = CellFailure(
                cell.signature(), "error", message
            )
        for cell in hung:
            report.timeouts += 1
            report.failures[cell.signature()] = CellFailure(
                cell.signature(), "timeout",
                f"cell exceeded the {job_timeout:g}s deadline",
            )
        if crashed:
            report.pool_crashes += 1
            if len(leftover) == 1:
                # Bisection bottomed out: this cell IS the poison.
                cell = leftover[0]
                report.failures[cell.signature()] = CellFailure(
                    cell.signature(), "crash",
                    "worker pool died executing this cell",
                )
            elif leftover:
                report.bisections += 1
                middle = len(leftover) // 2
                groups.append(leftover[:middle])
                groups.append(leftover[middle:])
        elif leftover:
            # Victims of a hung-cell pool kill: known-innocent, re-run
            # whole on a fresh pool.
            groups.append(leftover)
    return report
