"""Contained batch execution: deadlines, crash isolation, bisection.

:func:`repro.experiments.parallel.execute` is the fast path — a plain
``multiprocessing.Pool`` map with no story for a worker that hangs
forever or dies mid-cell (``Pool`` even respawns dead workers
silently, which turns a crash into a hang).  This module is the
dispatcher's *containment* path, used when a per-job deadline
(``--job-timeout``) is configured:

* cells run on a ``concurrent.futures.ProcessPoolExecutor`` (spawn
  context), whose contract on worker death is exact: futures that
  completed before the death keep their results, every other future
  raises :class:`BrokenProcessPool` — so a pool crash is a *batch-level
  event with an unknown culprit*;
* each future is awaited with a wall-clock deadline; a cell that blows
  it is declared hung, the pool's processes are killed (a hung worker
  never exits on its own), and the *other* unfinished cells — innocent
  victims of the kill — are re-run on a fresh pool;
* a pool crash triggers **bisection**: the unfinished cells are split
  in half and each half re-executed on its own pool, recursively, until
  the poison cell is isolated in a singleton group (its healthy
  batchmates complete along the way, each cell at most
  ``O(log batch)`` re-submissions — and re-running an already-completed
  cell is a cache hit, so isolation costs pool spawns, not recompute).

The report maps every cell that could not produce a result to a
:class:`CellFailure` (``timeout`` / ``crash`` / ``error``); the
dispatcher turns those into bounded retries or quarantine.

Deterministic fault injection (the faultsim harness) rides the same
zero-overhead pattern as the queue's crash failpoints: when the
``REPRO_FAULTSIM_SPEC`` environment variable names a JSON spec file,
:func:`_worker_run_contained` consults it *in the worker process*
before running each cell and can kill the process, hang, or raise at an
exact cell signature — unset (production), the check is one dict probe
of ``os.environ`` per worker process.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.experiments.cache import ArtifactCache, CacheCounters
from repro.experiments.parallel import (
    Job,
    _absorb,
    _run_job,
    _satisfied,
    _worker_init,
    _worker_run,
)
from repro.experiments.runner import ExperimentContext, ExperimentProfile

__all__ = [
    "FAULTSIM_ENV",
    "CellFailure",
    "ContainedReport",
    "InjectedWorkerFault",
    "WarmPool",
    "execute_contained",
    "warm_execute",
]

#: Environment variable naming the fault-injection spec file (JSON).
#: Unset in production; ``tests/service/faultsim.py`` writes it.
FAULTSIM_ENV = "REPRO_FAULTSIM_SPEC"


class InjectedWorkerFault(RuntimeError):
    """The exception a ``raise``-mode injected fault throws in a worker."""


@dataclass
class CellFailure:
    """Why one cell produced no result.

    ``kind`` is ``"timeout"`` (blew the wall-clock deadline),
    ``"crash"`` (isolated as the cell whose execution kills the worker
    pool), or ``"error"`` (raised an ordinary exception — the pool
    survived).
    """

    signature: str
    kind: str
    detail: str


@dataclass
class ContainedReport:
    """What one :func:`execute_contained` call did."""

    #: Cells that completed and were absorbed into the context.
    executed: int = 0
    #: signature -> failure, for every cell that produced no result.
    failures: Dict[str, CellFailure] = field(default_factory=dict)
    #: Worker-pool deaths observed (>= 1 means at least one bisection
    #: round or an isolated poison cell).
    pool_crashes: int = 0
    #: Group splits performed while isolating poison cells.
    bisections: int = 0
    #: Cells that blew the wall-clock deadline.
    timeouts: int = 0


# ----------------------------------------------------------------------
# Worker-side fault injection (active only under the faultsim harness).
# ----------------------------------------------------------------------

#: Per-worker-process cache of the parsed spec (spawn re-imports this
#: module in every worker, so the cache is private to each process).
_FAULT_SPEC: Optional[dict] = None
_FAULT_SPEC_LOADED = False


def _fault_spec() -> Optional[dict]:
    global _FAULT_SPEC, _FAULT_SPEC_LOADED
    if not _FAULT_SPEC_LOADED:
        _FAULT_SPEC_LOADED = True
        path = os.environ.get(FAULTSIM_ENV)
        if path:
            with open(path, encoding="utf-8") as handle:
                _FAULT_SPEC = json.load(handle)
    return _FAULT_SPEC


def _fire_file(spec: dict, signature: str) -> str:
    return os.path.join(spec["state_dir"], f"{signature[:32]}.fires")


def fault_fires(spec_path: str, signature: str) -> int:
    """How many times the fault at ``signature`` has fired (harness API).

    Fires are counted as bytes of an append-only file in the spec's
    ``state_dir`` — one ``O_APPEND`` byte per fire — so the count
    survives the worker process that recorded it being killed a
    microsecond later.
    """
    with open(spec_path, encoding="utf-8") as handle:
        spec = json.load(handle)
    try:
        return os.path.getsize(_fire_file(spec, signature))
    except OSError:
        return 0


def _maybe_inject(job: Job) -> None:
    """Fire a configured fault for this cell, if any remain.

    ``max_fires`` bounds how often a fault fires (transient-failure
    scenarios); the bound is precise for the single-poison configs the
    harness uses — two workers racing the same fault's counter could
    each observe the last remaining fire.
    """
    spec = _fault_spec()
    if not spec:
        return
    fault = spec["faults"].get(job.signature())
    if fault is None:
        return
    path = _fire_file(spec, job.signature())
    max_fires = fault.get("max_fires")
    if max_fires is not None:
        try:
            fired = os.path.getsize(path)
        except OSError:
            fired = 0
        if fired >= max_fires:
            return
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, b"x")
    finally:
        os.close(fd)
    mode = fault["mode"]
    if mode == "kill":
        os._exit(137)
    if mode == "hang":
        time.sleep(float(fault.get("hang_seconds", 3600.0)))
        return  # a bounded "hang" degrades to a delay
    if mode == "raise":
        raise InjectedWorkerFault(
            f"injected fault in {job.kind} cell for {job.workload!r}"
        )
    raise ValueError(f"unknown fault mode {mode!r}")


def _worker_run_contained(job: Job) -> Tuple[Any, dict]:
    """The pool's target: fault check (no-op in production), then run."""
    _maybe_inject(job)
    return _worker_run(job)


# ----------------------------------------------------------------------
# The persistent warm pool.
#
# Pool-per-batch spin-up dominates small batches: every batch pays
# worker spawn + interpreter boot + the simulator import graph before
# the first cell runs.  A :class:`WarmPool` is spawned once, its
# workers preload the heavy modules at initializer time, and every
# subsequent batch submits straight into warm processes.  Workers are
# *profile-agnostic* (the dispatcher serves requests across profiles
# from one pool): each task ships its profile, and the worker resolves
# a per-profile ExperimentContext lazily, cached for the process
# lifetime with bounded memo layers.
# ----------------------------------------------------------------------

#: Worker-process state for warm workers (private per spawn process).
_WARM_CACHE_ROOT: Optional[str] = None
_WARM_CONTEXTS: Dict[str, ExperimentContext] = {}

#: Entries allowed in one in-memory memo layer of a warm worker's
#: long-lived context before that layer is dropped (the shared disk
#: cache keeps warmth; this only bounds process footprint).
_WARM_MEMO_CAP = 64


def _warm_worker_init(cache_root: Optional[str]) -> None:
    """Initializer for warm workers: preload everything import-heavy.

    Runs once per worker process, at spawn.  The imports below pull in
    the workload suite, the experiment registry, and both simulation
    engines, so the first submitted cell starts computing immediately
    instead of paying the import graph.
    """
    global _WARM_CACHE_ROOT
    _WARM_CACHE_ROOT = cache_root
    import repro.experiments  # noqa: F401  (experiment directory)
    import repro.experiments.sweep  # noqa: F401  (sweep assembly)
    import repro.sim.compile  # noqa: F401  (superblock compiler)
    import repro.sim.ooo.core  # noqa: F401  (timing engine)
    import repro.workloads.suite  # noqa: F401  (workload programs)


def _warm_probe() -> int:
    """No-op task used to force worker spawn + initializer completion."""
    return os.getpid()


def _warm_context(profile: ExperimentProfile) -> ExperimentContext:
    """This worker's context for ``profile`` (created on first use)."""
    context = _WARM_CONTEXTS.get(profile.name)
    if context is None:
        cache = ArtifactCache(_WARM_CACHE_ROOT) if _WARM_CACHE_ROOT else None
        context = ExperimentContext(profile, cache=cache)
        _WARM_CONTEXTS[profile.name] = context
    return context


def _trim_warm_context(context: ExperimentContext) -> None:
    """Bound the long-lived context's in-memory memo layers.

    A cold pool dies with its batch, so its memos are naturally
    bounded; a warm worker lives for the server's lifetime and must
    not accumulate every trace it ever computed.  Dropping a layer is
    always safe — the next lookup re-reads the shared disk cache.
    """
    for layer in (
        context._binaries, context._traces, context._functional,
        context._timed, context._artifacts,
    ):
        if len(layer) > _WARM_MEMO_CAP:
            layer.clear()


def _warm_run(profile: ExperimentProfile, job: Job) -> Tuple[Any, dict]:
    """Warm-pool task: resolve the context, run one cell, drain counters.

    The faultsim check mirrors :func:`_worker_run_contained` (one dict
    probe when the harness is not installed), so injected worker
    faults exercise the warm pool's rebuild path too.
    """
    _maybe_inject(job)
    context = _warm_context(profile)
    value = _run_job(job, context)
    deltas: Dict[str, Tuple[int, int, int, int]] = {}
    if context.cache is not None:
        for kind, counter in context.cache.counters.items():
            deltas[kind] = (counter.hits, counter.misses, counter.stores,
                            counter.corrupt)
        context.cache.counters.clear()
    _trim_warm_context(context)
    return value, deltas


class WarmPool:
    """A persistent, pre-warmed spawn pool reused across batches.

    Lifecycle counters are served by ``GET /v1/stats``:

    * ``reuses`` — acquisitions that found the pool already warm;
    * ``rebuilds`` — teardowns after a crash, hang kill, or bisection
      (the next acquisition re-spawns and re-warms);
    * ``warmup_seconds`` — cumulative spawn+preload time paid, and
      ``last_warmup_seconds`` for the most recent (re)build.

    Thread-safe: drain slots may acquire concurrently (submission to a
    live executor is itself thread-safe); spawn/teardown serialize on
    the lock.  A kill from one batch while another batch has futures
    in flight resolves those futures to ``BrokenProcessPool``, which
    the contained executor already treats as a batch-level crash — the
    shared pool never weakens PR 7's containment story.
    """

    def __init__(
        self,
        max_workers: int,
        cache_root: Optional[str] = None,
        mp_context=None,
        on_event: Optional[Callable[[dict], None]] = None,
    ) -> None:
        self.max_workers = max(1, int(max_workers))
        self.cache_root = cache_root
        #: Observability callback (the dispatcher wires the event bus's
        #: ``publish``); ``None`` keeps this module bus-agnostic.
        self._on_event = on_event
        self._mp_context = mp_context or multiprocessing.get_context("spawn")
        self._pool: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self.reuses = 0
        self.rebuilds = 0
        self.warmup_seconds = 0.0
        self.last_warmup_seconds = 0.0

    # -- lifecycle -------------------------------------------------------

    def _spawn_locked(self) -> ProcessPoolExecutor:
        started = time.perf_counter()
        pool = ProcessPoolExecutor(
            max_workers=self.max_workers,
            mp_context=self._mp_context,
            initializer=_warm_worker_init,
            initargs=(self.cache_root,),
        )
        # The executor spawns processes lazily, one per submit; force
        # every worker up and through the initializer now so no batch
        # ever pays the warmup.
        for future in [
            pool.submit(_warm_probe) for _ in range(self.max_workers)
        ]:
            future.result()
        elapsed = time.perf_counter() - started
        self.last_warmup_seconds = elapsed
        self.warmup_seconds += elapsed
        self._pool = pool
        return pool

    def ensure(self) -> None:
        """Spawn and warm the pool if it is not already live."""
        with self._lock:
            if self._pool is None:
                self._spawn_locked()

    def acquire(self) -> ProcessPoolExecutor:
        """The live executor, spawning + pre-warming on first use."""
        with self._lock:
            if self._pool is not None:
                self.reuses += 1
                return self._pool
            return self._spawn_locked()

    def invalidate(self) -> None:
        """Tear down a pool whose workers can no longer be trusted.

        Called after a pool crash or a hung-cell kill.  The teardown is
        counted as a rebuild; the actual re-spawn happens lazily on the
        next :meth:`acquire` (or eagerly via :meth:`ensure`).
        """
        with self._lock:
            pool = self._pool
            self._pool = None
            if pool is None:
                return
            self.rebuilds += 1
        if self._on_event is not None:
            self._on_event({
                "event": "pool_rebuild",
                "rebuilds": self.rebuilds,
            })
        _kill_pool(pool)

    def shutdown(self) -> None:
        """Final teardown (server shutdown); not counted as a rebuild."""
        with self._lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def snapshot(self) -> dict:
        """Lifecycle counters for ``/v1/stats`` (stable key order)."""
        with self._lock:
            live = self._pool is not None
        return {
            "workers": self.max_workers,
            "live": live,
            "reuses": self.reuses,
            "rebuilds": self.rebuilds,
            "warmup_ms": round(self.warmup_seconds * 1000.0, 1),
            "last_warmup_ms": round(self.last_warmup_seconds * 1000.0, 1),
        }


def warm_execute(
    jobs,
    context: ExperimentContext,
    warm_pool: WarmPool,
) -> int:
    """:func:`repro.experiments.parallel.execute`, on a warm pool.

    Same skip/dedup and deterministic in-order merge as the cold path;
    the only difference is *where* cells run — persistent pre-warmed
    workers instead of a pool spawned for this call.  A broken pool
    invalidates the warm pool (so the next batch re-spawns) and then
    re-raises, which the dispatcher's legacy-path error handling
    already charges to the batch.
    """
    pending: List[Job] = []
    seen = set()
    for job in jobs:
        signature = job.signature()
        if signature in seen or _satisfied(job, context):
            continue
        seen.add(signature)
        pending.append(job)
    if not pending:
        return 0
    pool = warm_pool.acquire()
    profile = context.profile
    try:
        futures = [
            pool.submit(_warm_run, profile, job) for job in pending
        ]
        results = [future.result() for future in futures]
    except BrokenProcessPool:
        warm_pool.invalidate()
        raise
    for job, (value, deltas) in zip(pending, results):
        _absorb(job, value, context)
        if context.cache is not None:
            for kind, (hits, misses, stores, corrupt) in deltas.items():
                counter = context.cache.counters.setdefault(
                    kind, CacheCounters()
                )
                counter.hits += hits
                counter.misses += misses
                counter.stores += stores
                counter.corrupt += corrupt
    return len(pending)


# ----------------------------------------------------------------------
# The contained executor.
# ----------------------------------------------------------------------

def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool whose workers cannot be trusted to exit.

    ``shutdown`` alone would join a hung worker forever; killing the
    processes first makes the join immediate and resolves every
    unfinished future to :class:`BrokenProcessPool`.  ``_processes`` is
    private but stable across supported CPythons; if it ever vanishes,
    degrade to an unwaited shutdown (leaks the worker until interpreter
    exit, but never blocks the dispatcher).
    """
    processes = getattr(pool, "_processes", None)
    for process in list((processes or {}).values()):
        process.kill()
    pool.shutdown(wait=processes is not None, cancel_futures=True)


def _run_group(
    group: List[Job],
    context: ExperimentContext,
    job_timeout: float,
    mp_context,
    max_workers: int,
    warm_pool: Optional[WarmPool] = None,
) -> Tuple[Dict[str, Tuple[Any, dict]], List[Tuple[Job, str]],
           List[Job], List[Job], bool]:
    """Run one cell group on one pool.

    With ``warm_pool``, the group runs on the persistent pre-warmed
    executor (no spawn cost); a crash or hung-cell kill invalidates it
    so the next acquisition re-spawns.  Without one, a throwaway pool
    is spawned for the group exactly as before — bisection and
    innocent-victim re-runs always pass ``None`` so poison isolation
    never burns the warm pool.

    Returns ``(results, errors, hung, leftover, crashed)``: harvested
    ``signature -> (value, counter deltas)`` for completed cells,
    ``(cell, message)`` for cells that raised ordinary exceptions,
    cells that blew the deadline, cells left without any verdict (pool
    died under them — re-run or bisect), and whether the pool died.
    """
    workers = max(1, min(max_workers, len(group)))
    cache_root = (
        str(context.cache.root) if context.cache is not None else None
    )
    results: Dict[str, Tuple[Any, dict]] = {}
    errors: List[Tuple[Job, str]] = []
    hung: List[Job] = []
    leftover: List[Job] = []
    crashed = False
    futures: List[Tuple[Job, Any]] = []
    if warm_pool is not None:
        pool = warm_pool.acquire()
        profile = context.profile
        submit = lambda cell: pool.submit(_warm_run, profile, cell)  # noqa: E731
    else:
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=_worker_init,
            initargs=(context.profile, cache_root),
        )
        submit = lambda cell: pool.submit(_worker_run_contained, cell)  # noqa: E731
    killed = False
    try:
        # Submit one at a time, retaining every future already placed: a
        # warm worker is already up, so a poison cell submitted early can
        # kill the pool while later cells are still being submitted, and
        # that mid-loop BrokenProcessPool must not discard the partial
        # futures list — the unsubmitted tail becomes leftover below.
        try:
            for cell in group:
                futures.append((cell, submit(cell)))
        except BrokenProcessPool:
            crashed = True
        for cell, future in futures:
            if crashed or killed:
                break  # pool is gone; harvest pass classifies the rest
            try:
                # The deadline clock starts when the waiter reaches the
                # future, so cells queued behind a busy pool are not
                # charged for their predecessors' runtime.
                results[cell.signature()] = future.result(
                    timeout=job_timeout
                )
            except FutureTimeoutError:
                hung.append(cell)
                killed = True
                _kill_pool(pool)
            except BrokenProcessPool:
                crashed = True
            except Exception as error:
                errors.append((cell, f"{type(error).__name__}: {error}"))
        if crashed:
            # The executor's management thread tears the pool down on
            # its own, but killing outright is idempotent and prompt.
            _kill_pool(pool)
    finally:
        if crashed or killed:
            if warm_pool is not None:
                # The shared pool is dead; make the next batch re-spawn
                # rather than submit into a broken executor.
                warm_pool.invalidate()
        elif warm_pool is None:
            pool.shutdown(wait=True)
    # Harvest pass: futures that completed before a crash/kill keep
    # their results; everything else unclassified is leftover —
    # including cells never submitted because the pool died mid-loop
    # (every enumerated cell must leave with a verdict or a re-run).
    classified = {cell.signature() for cell in hung}
    classified.update(cell.signature() for cell, _ in errors)
    leftover.extend(group[len(futures):])
    for cell, future in futures:
        signature = cell.signature()
        if signature in results or signature in classified:
            continue
        if not future.done() or future.cancelled():
            leftover.append(cell)
            continue
        outcome = future.exception()
        if outcome is None:
            results[signature] = future.result()
        elif isinstance(outcome, BrokenProcessPool):
            leftover.append(cell)
        else:
            # Completed with an ordinary exception before the pool
            # died around it — a verdict, not collateral damage.
            errors.append((cell, f"{type(outcome).__name__}: {outcome}"))
    return results, errors, hung, leftover, crashed


def _absorb_results(
    cells: List[Job],
    results: Dict[str, Tuple[Any, dict]],
    context: ExperimentContext,
) -> int:
    """Merge harvested worker results (and counter deltas) into the
    context, in cell order — the same deterministic merge
    :func:`~repro.experiments.parallel.execute` performs."""
    absorbed = 0
    for cell in cells:
        payload = results.get(cell.signature())
        if payload is None:
            continue
        value, deltas = payload
        _absorb(cell, value, context)
        absorbed += 1
        if context.cache is not None:
            for kind, (hits, misses, stores, corrupt) in deltas.items():
                counter = context.cache.counters.setdefault(
                    kind, CacheCounters()
                )
                counter.hits += hits
                counter.misses += misses
                counter.stores += stores
                counter.corrupt += corrupt
    return absorbed


def execute_contained(
    jobs,
    context: ExperimentContext,
    *,
    job_timeout: float,
    mp_context=None,
    max_workers: Optional[int] = None,
    warm_pool: Optional[WarmPool] = None,
    observer: Optional[Callable[[dict], None]] = None,
) -> ContainedReport:
    """Run cells with per-cell deadlines and poison isolation.

    The containment counterpart of
    :func:`repro.experiments.parallel.execute`: same skip/dedup and
    deterministic merge, but every cell runs in a killable worker
    process, and a cell that hangs, crashes the pool, or raises is
    *reported* (per-signature in the returned
    :class:`ContainedReport`) instead of poisoning the whole batch.
    Healthy cells always complete — re-execution after a pool death is
    a cache hit for cells that finished before it.

    With ``warm_pool``, the initial batch runs on the persistent
    pre-warmed pool.  Containment semantics are unchanged: a crash or
    hang invalidates the warm pool, bisection halves and innocent
    victims run on fresh throwaway pools (isolating poison must not
    keep killing the shared pool), and the warm pool is re-warmed
    before returning so the next batch finds it live.
    """
    ctx = mp_context or multiprocessing.get_context("spawn")
    workers = max_workers if max_workers is not None else context.jobs
    pending: List[Job] = []
    seen = set()
    for job in jobs:
        signature = job.signature()
        if signature in seen or _satisfied(job, context):
            continue
        seen.add(signature)
        pending.append(job)
    report = ContainedReport()
    if not pending:
        return report

    first_pool = warm_pool
    groups: List[List[Job]] = [pending]
    while groups:
        group = groups.pop(0)
        results, errors, hung, leftover, crashed = _run_group(
            group, context, job_timeout, ctx, workers,
            warm_pool=first_pool,
        )
        first_pool = None  # re-runs and bisection use throwaway pools
        report.executed += _absorb_results(group, results, context)
        for cell, message in errors:
            report.failures[cell.signature()] = CellFailure(
                cell.signature(), "error", message
            )
        for cell in hung:
            report.timeouts += 1
            report.failures[cell.signature()] = CellFailure(
                cell.signature(), "timeout",
                f"cell exceeded the {job_timeout:g}s deadline",
            )
        if crashed:
            report.pool_crashes += 1
            if observer is not None:
                observer({"event": "pool_crash", "cells": len(group)})
            if len(leftover) == 1:
                # Bisection bottomed out: this cell IS the poison.
                cell = leftover[0]
                report.failures[cell.signature()] = CellFailure(
                    cell.signature(), "crash",
                    "worker pool died executing this cell",
                )
            elif leftover:
                report.bisections += 1
                if observer is not None:
                    observer({
                        "event": "bisection",
                        "round": report.bisections,
                        "cells": len(leftover),
                    })
                middle = len(leftover) // 2
                groups.append(leftover[:middle])
                groups.append(leftover[middle:])
        elif leftover:
            # Victims of a hung-cell pool kill: known-innocent, re-run
            # whole on a fresh pool.
            groups.append(leftover)
    if warm_pool is not None:
        # Re-warm after any teardown so the next batch starts warm (a
        # no-op when the pool survived).
        warm_pool.ensure()
    return report
