"""Simulation-as-a-service: job queue, batching dispatcher, HTTP API.

This package turns the reproduction's experiment pipeline into a
long-lived service over the same content-addressed artifact cache the
CLI uses:

* :mod:`repro.service.queue` — persistent JSON-lines-journaled job
  queue with atomic state transitions and crash replay;
* :mod:`repro.service.dispatcher` — request normalization, three-layer
  deduplication (live jobs, stored results, shared cells), fair
  batching onto the worker pool, bounded retry/quarantine containment;
* :mod:`repro.service.execution` — the contained executor: per-cell
  deadlines, killable workers, poison-job bisection on pool crashes,
  deterministic fault injection for the tests;
* :mod:`repro.service.server` — stdlib asyncio HTTP JSON API
  (``POST /v1/jobs``, ``GET /v1/jobs/<id>``, ``GET /v1/results/<key>``,
  ``GET /v1/stats``, ``GET /v1/health``) with graceful SIGTERM drain;
* :mod:`repro.service.client` — urllib helpers behind ``repro submit``
  and ``repro status``.

DESIGN.md section 5 documents the architecture; the README's "Serving"
section is the quick-start.
"""

from repro.service.dispatcher import (
    BreakerOpenError,
    Dispatcher,
    RequestError,
    normalize_request,
)
from repro.service.queue import JobQueue, JobState, ServiceJob
from repro.service.server import ServerThread, ServiceServer, serve_forever

__all__ = [
    "BreakerOpenError",
    "Dispatcher",
    "JobQueue",
    "JobState",
    "RequestError",
    "ServerThread",
    "ServiceJob",
    "ServiceServer",
    "normalize_request",
    "serve_forever",
]
