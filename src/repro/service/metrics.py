"""Render service stats + stage histograms as Prometheus text or JSON.

``GET /v1/metrics`` is a *projection*: everything it exposes already
exists — the ``/v1/stats`` snapshot (counters and gauges maintained by
the dispatcher, queue, cache, and event bus) plus the per-stage latency
histograms accumulated by :class:`repro.service.events.JobTracer`.
This module only formats; it owns no state and takes no locks beyond
the snapshot/histogram reads it is handed.

The text exposition follows the Prometheus 0.0.4 format: ``# HELP`` /
``# TYPE`` comments, ``_bucket{le=...}`` cumulative histogram series,
and a terminating newline.  Scalar stats flatten to
``repro_<section>_<key>``; the per-state job gauge uses a ``state``
label; stage latencies use a ``stage`` label over the fixed log-spaced
buckets (see ``events.LATENCY_BUCKETS``).
"""

from __future__ import annotations

import re
from typing import Dict, List

from .events import LATENCY_BUCKETS, JobTracer, StageHistogram

__all__ = ["render_prometheus", "render_json", "parse_prometheus"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: snapshot keys rendered as a labelled gauge instead of flattened.
_STATE_SECTIONS = (("queue", "states"),)

#: keys that are point-in-time gauges; everything else numeric in the
#: snapshot is monotone (a counter) or close enough to document as one.
_GAUGE_KEYS = {
    "repro_queue_depth",
    "repro_uptime_seconds",
    "repro_started_at",
    "repro_schema_version",
    "repro_events_subscribers",
    "repro_workers_inflight_cells",
    "repro_workers_active",
    "repro_workers_slots",
    "repro_queue_compaction_generation",
    "repro_queue_compaction_journal_entries",
    "repro_queue_compaction_snapshot_jobs",
    "repro_shard_index",
    "repro_shard_count",
    "repro_shard_peers",
    "repro_tiered_peer_count",
}


def _metric_name(*parts: str) -> str:
    return _NAME_RE.sub("_", "_".join(("repro",) + parts)).lower()


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _flatten(snapshot: dict) -> List[tuple]:
    """(name, labels, value) triples from the stats snapshot."""
    out: List[tuple] = []
    for section, body in snapshot.items():
        if isinstance(body, (int, float)) and not isinstance(body, str):
            out.append((_metric_name(section), "", body))
            continue
        if not isinstance(body, dict):
            continue
        for key, value in body.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                out.append((_metric_name(section, key), "", value))
            elif isinstance(value, bool):
                out.append((_metric_name(section, key), "", value))
            elif isinstance(value, dict):
                if (section, key) in _STATE_SECTIONS:
                    for state, count in sorted(value.items()):
                        if isinstance(count, (int, float)):
                            out.append((
                                _metric_name(section, "jobs"),
                                f'{{state="{state}"}}',
                                count,
                            ))
                else:
                    for sub, subvalue in value.items():
                        if isinstance(subvalue, (int, float)):
                            out.append((
                                _metric_name(section, key, sub), "", subvalue,
                            ))
    return out


def render_prometheus(snapshot: dict, tracer: JobTracer) -> str:
    """The /v1/stats snapshot + stage histograms as Prometheus text."""
    lines: List[str] = []
    seen_types = set()
    for name, labels, value in _flatten(snapshot):
        if name not in seen_types:
            seen_types.add(name)
            kind = "gauge" if name in _GAUGE_KEYS else "counter"
            lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name}{labels} {_format_value(value)}")

    histograms = tracer.histograms()
    if histograms:
        name = "repro_stage_latency_seconds"
        lines.append(f"# HELP {name} Per-stage job latency (log-spaced buckets).")
        lines.append(f"# TYPE {name} histogram")
        for stage, histogram in histograms.items():
            cumulative = histogram.cumulative_counts()
            for bound, count in zip(LATENCY_BUCKETS, cumulative):
                lines.append(
                    f'{name}_bucket{{stage="{stage}",le="{repr(float(bound))}"}} {count}'
                )
            lines.append(
                f'{name}_bucket{{stage="{stage}",le="+Inf"}} {cumulative[-1]}'
            )
            lines.append(
                f'{name}_sum{{stage="{stage}"}} {repr(round(histogram.total, 6))}'
            )
            lines.append(f'{name}_count{{stage="{stage}"}} {histogram.count}')
    return "\n".join(lines) + "\n"


def render_json(snapshot: dict, tracer: JobTracer) -> dict:
    """The same payload as structured JSON (``?format=json``)."""
    stages: Dict[str, dict] = {}
    for stage, histogram in tracer.histograms().items():
        body = histogram.summary()
        body["cumulative"] = histogram.cumulative_counts()
        stages[stage] = body
    return {
        "stats": snapshot,
        "stages": stages,
        "buckets_le_seconds": list(LATENCY_BUCKETS),
    }


def parse_prometheus(text: str) -> Dict[str, float]:
    """Minimal parser used by tests and the events smoke: returns a
    mapping of ``name{labels}`` -> value and raises ``ValueError`` on
    any line that is neither a comment nor a valid sample."""
    samples: Dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip() or line.startswith("#"):
            continue
        match = re.fullmatch(r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)", line)
        if not match:
            raise ValueError(f"line {lineno} is not a Prometheus sample: {line!r}")
        key = match.group(1) + (match.group(2) or "")
        samples[key] = float(match.group(3))
    return samples
