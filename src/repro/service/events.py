"""In-process event bus and per-job tracing for the service stack.

Three cooperating pieces, all stdlib and all designed to cost nearly
nothing when nobody is watching:

``EventBus``
    A tiny thread-safe publish/subscribe fan-out.  ``queue._apply``
    publishes one structured record per state transition (so live and
    replayed mutations share a single emission path), the dispatcher
    publishes batch-level records (batches, bisections, warm-pool
    rebuilds), and the HTTP server publishes access/lifecycle records.
    Each subscriber owns a *bounded* FIFO: when a slow consumer falls
    behind, new events for that subscriber are counted and dropped —
    never buffered unboundedly, never blocking the publisher — and the
    consumer receives a single synthetic ``{"event": "dropped",
    "count": N}`` marker once it catches up, so gaps are explicit.

``JobTracer``
    Stage-span stamping.  Every stamp records a monotonic timestamp for
    a (job, stage) pair; the duration of a stage is the gap to the next
    stamp, so a job's span durations telescope to its wall time by
    construction.  Closed stage durations feed per-stage latency
    histograms.  Traces for recently seen jobs are retained in a
    bounded LRU and served by ``GET /v1/jobs/<id>?trace=1``.

``StageHistogram``
    Fixed log-spaced latency buckets (Prometheus-style 1/2.5/5 decades)
    with p50/p95/p99 estimation by bucket upper bound.

Nothing here touches disk and nothing is journaled: events and spans
are operational exhaust, not state.  Replaying a journal re-emits the
same event sequence through the same ``_apply`` path, which is exactly
the contract the dashboard and ``repro watch`` rely on.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Callable, Dict, Iterable, List, Optional

__all__ = [
    "EventBus",
    "Subscription",
    "JobTracer",
    "StageHistogram",
    "LATENCY_BUCKETS",
    "SPAN_STAGES",
]

#: Fixed log-spaced latency buckets in seconds (upper bounds).  The
#: 1 / 2.5 / 5 progression per decade matches Prometheus conventions;
#: the range covers sub-millisecond cache hits through multi-minute
#: contained batches.  Fixed at import time so histograms from any two
#: servers are mergeable and the text exposition is stable.
LATENCY_BUCKETS: tuple = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 60.0, 120.0, 300.0, 600.0,
)

#: Canonical span stages in lifecycle order.  ``queued``/``claimed``
#: and the terminal stages are stamped by the queue's ``_apply`` (the
#: single live+replay mutation path); ``batched``/``executed``/
#: ``assembled``/``cache_hit`` are stamped by the dispatcher as a job
#: moves through a drain cycle.
SPAN_STAGES: tuple = (
    "queued", "claimed", "batched", "executed", "assembled",
    "cache_hit", "done", "failed", "quarantined",
)


class Subscription:
    """One consumer's bounded view of the bus.

    ``pop``/``pop_nowait`` return event dicts in publish order.  When
    the internal FIFO is full, newly published events are dropped and
    tallied; after the backlog drains, the next pop returns a synthetic
    ``{"event": "dropped", "count": N}`` marker covering the gap.
    """

    def __init__(self, bus: "EventBus", maxsize: int) -> None:
        self._bus = bus
        self.maxsize = max(1, int(maxsize))
        self._items: deque = deque()
        self._cond = threading.Condition(bus._lock)
        self._pending_dropped = 0
        self.dropped = 0  # cumulative, for stats/tests
        self.closed = False

    # Called by the bus with the lock held.
    def _offer(self, event: dict) -> bool:
        if len(self._items) >= self.maxsize:
            self._pending_dropped += 1
            self.dropped += 1
            return False
        self._items.append(event)
        self._cond.notify()
        return True

    def _marker(self, count: int) -> dict:
        return {
            "event": "dropped",
            "count": count,
            "ts": round(time.time(), 3),
        }

    def pop_nowait(self) -> Optional[dict]:
        """Return the next event, a drop marker, or ``None`` if idle."""
        with self._bus._lock:
            if self._items:
                return self._items.popleft()
            if self._pending_dropped:
                count, self._pending_dropped = self._pending_dropped, 0
                return self._marker(count)
            return None

    def pop(self, timeout: Optional[float] = None) -> Optional[dict]:
        """Blocking pop; returns ``None`` on timeout or close."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._bus._lock:
            while True:
                if self._items:
                    return self._items.popleft()
                if self._pending_dropped:
                    count, self._pending_dropped = self._pending_dropped, 0
                    return self._marker(count)
                if self.closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        if not self._items and not self._pending_dropped:
                            return None

    def backlog(self) -> int:
        with self._bus._lock:
            return len(self._items)

    def close(self) -> None:
        self._bus._unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class EventBus:
    """Thread-safe fan-out with per-subscriber bounded buffering.

    ``publish`` never blocks and is near-free with no subscribers: one
    lock acquisition and two integer bumps.  Publishers may hold other
    locks (the queue's journal lock, the dispatcher's stats lock) while
    publishing; the bus lock is a leaf — nothing under it calls out.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subscribers: List[Subscription] = []
        self._seq = 0
        self.published = 0
        self.dropped = 0

    @property
    def active(self) -> bool:
        """True when at least one subscriber is attached."""
        return bool(self._subscribers)

    def publish(self, event: dict) -> int:
        """Stamp ``seq``/``ts`` onto *event* and fan it out.

        Returns the sequence number.  Slow subscribers drop; nothing
        blocks.
        """
        with self._lock:
            self._seq += 1
            self.published += 1
            event.setdefault("ts", round(time.time(), 3))
            event["seq"] = self._seq
            for sub in self._subscribers:
                if not sub._offer(event):
                    self.dropped += 1
            return self._seq

    def subscribe(self, maxsize: int = 256) -> Subscription:
        sub = Subscription(self, maxsize)
        with self._lock:
            self._subscribers.append(sub)
        return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            sub.closed = True
            sub._cond.notify_all()
            try:
                self._subscribers.remove(sub)
            except ValueError:
                pass

    def stats(self) -> dict:
        with self._lock:
            return {
                "published": self.published,
                "dropped": self.dropped,
                "subscribers": len(self._subscribers),
            }


class StageHistogram:
    """Latency histogram over the fixed ``LATENCY_BUCKETS`` grid."""

    __slots__ = ("counts", "count", "total")

    def __init__(self) -> None:
        self.counts = [0] * (len(LATENCY_BUCKETS) + 1)  # +1 = +Inf
        self.count = 0
        self.total = 0.0

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            seconds = 0.0
        idx = len(LATENCY_BUCKETS)
        for i, bound in enumerate(LATENCY_BUCKETS):
            if seconds <= bound:
                idx = i
                break
        self.counts[idx] += 1
        self.count += 1
        self.total += seconds

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile as the crossing bucket's upper bound."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if i < len(LATENCY_BUCKETS):
                    return LATENCY_BUCKETS[i]
                return LATENCY_BUCKETS[-1]  # +Inf bucket: clamp to top
        return LATENCY_BUCKETS[-1]

    def cumulative_counts(self) -> List[int]:
        """Cumulative counts per bucket, Prometheus ``le`` semantics."""
        out: List[int] = []
        running = 0
        for bucket_count in self.counts:
            running += bucket_count
            out.append(running)
        return out

    def summary(self) -> dict:
        return {
            "count": self.count,
            "sum_seconds": round(self.total, 6),
            "p50_ms": round(self.quantile(0.50) * 1000, 3),
            "p95_ms": round(self.quantile(0.95) * 1000, 3),
            "p99_ms": round(self.quantile(0.99) * 1000, 3),
        }


class JobTracer:
    """Bounded per-job span store + per-stage latency histograms.

    ``stamp(job_id, stage)`` appends a monotonic timestamp to the job's
    timeline and closes the previous stage: its duration (gap between
    consecutive stamps) is recorded into that stage's histogram.  The
    per-job store is an LRU capped at ``retain`` jobs so long-lived
    servers hold bounded memory; traces survive into the terminal
    states, which is what ``?trace=1`` serves.
    """

    def __init__(self, retain: int = 1024) -> None:
        self._lock = threading.Lock()
        self._retain = max(16, int(retain))
        # job_id -> list of (stage, monotonic, annotations|None)
        self._spans: "OrderedDict[str, list]" = OrderedDict()
        self._histograms: Dict[str, StageHistogram] = {}
        self.jobs_traced = 0

    def stamp(self, job_id: str, stage: str, **annotations) -> None:
        now = time.monotonic()
        with self._lock:
            timeline = self._spans.get(job_id)
            if timeline is None:
                timeline = []
                self._spans[job_id] = timeline
                self.jobs_traced += 1
                if len(self._spans) > self._retain:
                    self._spans.popitem(last=False)
            else:
                self._spans.move_to_end(job_id)
            if timeline:
                prev_stage, prev_at, _ = timeline[-1]
                histogram = self._histograms.get(prev_stage)
                if histogram is None:
                    histogram = self._histograms[prev_stage] = StageHistogram()
                histogram.observe(now - prev_at)
            timeline.append((stage, now, annotations or None))

    def trace(self, job_id: str) -> Optional[dict]:
        """Span timeline for *job_id*, or ``None`` if unknown/evicted.

        Durations are gaps between consecutive stamps (the final stage
        has duration 0), so ``sum(duration_ms) == total_ms`` exactly.
        """
        with self._lock:
            timeline = self._spans.get(job_id)
            if timeline is None:
                return None
            timeline = list(timeline)
        if not timeline:
            return None
        start = timeline[0][1]
        # Round the offsets once and derive durations from the rounded
        # values: telescoping then holds *after* rounding too, not just
        # in exact arithmetic.
        offsets = [
            round((at - start) * 1000, 3) for _, at, _ in timeline
        ]
        spans = []
        for i, (stage, _at, annotations) in enumerate(timeline):
            if i + 1 < len(timeline):
                duration = round(offsets[i + 1] - offsets[i], 3)
            else:
                duration = 0.0
            span = {
                "stage": stage,
                "at_ms": offsets[i],
                "duration_ms": duration,
            }
            if annotations:
                span.update(annotations)
            spans.append(span)
        return {
            "job": job_id,
            "spans": spans,
            "total_ms": offsets[-1],
        }

    def histograms(self) -> Dict[str, StageHistogram]:
        """Stable-ordered snapshot of the per-stage histograms."""
        with self._lock:
            items = list(self._histograms.items())
        order = {stage: i for i, stage in enumerate(SPAN_STAGES)}
        items.sort(key=lambda kv: (order.get(kv[0], len(order)), kv[0]))
        return dict(items)

    def stats(self) -> dict:
        with self._lock:
            return {
                "jobs_traced": self.jobs_traced,
                "jobs_retained": len(self._spans),
            }
