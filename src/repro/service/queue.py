"""Persistent, crash-safe job queue for the simulation service.

Every submitted experiment request becomes a :class:`ServiceJob` with a
tiny state machine (``queued -> running -> done | failed``).  All state
lives in a JSON-lines **journal** (``<root>/journal.jsonl``): submits,
duplicate attachments, and state transitions are each one appended,
fsynced line, and the in-memory table mutates only *after* the journal
line is durable — so a crash at any instant loses at most the event
being written.  Restart replays the journal: finished jobs stay
finished, jobs that were ``running`` when the process died are demoted
back to ``queued`` (their work is repeatable and cache-backed, so
re-execution is safe), and a torn trailing line from a mid-write crash
is ignored.

Deduplication happens at submit time: a job's identity is the
value-based fingerprint of its normalized request, and submitting an
identical request while a live job for it exists *attaches* to that job
instead of creating a new one.  Failed jobs do not absorb duplicates —
resubmitting a failed request queues a fresh attempt.

The queue is thread-safe (the HTTP server submits from the asyncio
thread while the dispatcher drains from a worker thread) but
single-process; multi-process sharing is a later scale-out step and
would shard queues, not this file.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import asdict, dataclass
from enum import Enum
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments.cache import code_version, fingerprint

__all__ = ["JobQueue", "JobState", "ServiceJob", "TransitionError"]


class JobState(str, Enum):
    """Lifecycle states of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


#: Legal state transitions.  ``QUEUED -> DONE`` is the instant-cache-hit
#: path (no execution phase); ``RUNNING -> QUEUED`` is crash recovery
#: (journal replay demotes interrupted work); ``DONE -> QUEUED`` is
#: result eviction (a gc pruned the artifact out from under the job, so
#: it must recompute).
_TRANSITIONS = {
    JobState.QUEUED: {JobState.RUNNING, JobState.DONE, JobState.FAILED},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED, JobState.QUEUED},
    JobState.DONE: {JobState.QUEUED},
    JobState.FAILED: set(),
}


class TransitionError(RuntimeError):
    """An illegal job state transition was requested."""


@dataclass
class ServiceJob:
    """One submitted experiment request and its lifecycle."""

    id: str
    #: Value-based identity of the normalized request (dedup key).
    digest: str
    request: dict
    client: str
    #: Monotonic submission sequence number (fairness/ordering source).
    seq: int
    state: JobState = JobState.QUEUED
    #: Extra submissions coalesced onto this job (dedup hits).
    attached: int = 0
    #: Artifact digest of the stored result (``service`` kind), when done.
    result_key: Optional[str] = None
    #: ``"computed"`` or ``"cache"``, when done.
    source: Optional[str] = None
    error: Optional[str] = None

    def public(self) -> dict:
        """The JSON shape ``GET /v1/jobs/<id>`` serves."""
        record = asdict(self)
        record["state"] = self.state.value
        return record


def request_digest(request: dict, version: str = None) -> str:
    """Value-based identity of a normalized request payload.

    ``version`` (default: the live :func:`code_version`) is part of the
    identity so that a queue journal surviving a source change never
    coalesces a fresh submission onto a job computed by old code — the
    same invalidation rule the artifact cache applies to its keys.
    """
    return fingerprint(
        "service-request", request,
        code_version() if version is None else version,
    )


class JobQueue:
    """Journal-backed job table with atomic, validated transitions."""

    def __init__(self, root: os.PathLike, *, version: str = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / "journal.jsonl"
        self.version = version if version is not None else code_version()
        self.jobs: Dict[str, ServiceJob] = {}
        self._by_digest: Dict[str, str] = {}
        self._seq = 0
        #: Per-state job tallies, maintained incrementally so depth and
        #: state queries stay O(1) however many jobs the table retains.
        self._counts = {state: 0 for state in JobState}
        #: id -> job for QUEUED jobs only, so draining scales with the
        #: queue, not with the ever-retained job history.
        self._queued: Dict[str, ServiceJob] = {}
        self._lock = threading.RLock()
        self._truncate_torn_tail()
        self._replay()
        self._journal = open(self.journal_path, "a", encoding="utf-8")

    # -- journal ---------------------------------------------------------

    def _append(self, event: dict) -> None:
        """One durable journal line; the caller mutates memory after."""
        self._journal.write(json.dumps(event, sort_keys=True) + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def _truncate_torn_tail(self) -> None:
        """Drop a torn trailing line before anything appends.

        A crash mid-append can leave the journal without a trailing
        newline; appending to that file would glue the next (durably
        acknowledged) event onto the torn fragment and silently lose it
        on the following replay.  Truncating back to the last newline
        restores the append-only invariant: every line is a whole line.
        """
        if not self.journal_path.exists():
            return
        with open(self.journal_path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":  # common path: one-byte peek
                return
            handle.seek(0)
            keep = handle.read().rfind(b"\n") + 1  # 0 if no newline at all
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())

    def _replay(self) -> None:
        """Rebuild the job table from the journal (crash-tolerant)."""
        if not self.journal_path.exists():
            return
        with open(self.journal_path, encoding="utf-8") as handle:
            for line in handle:
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from a crash mid-append
                self._apply(event)
        # Work interrupted mid-execution is repeatable: demote it.
        events = [
            {"event": "state", "id": job.id, "state": "queued"}
            for job in self.jobs.values()
            if job.state == JobState.RUNNING
        ]
        if events:
            with open(self.journal_path, "a", encoding="utf-8") as handle:
                for event in events:
                    handle.write(json.dumps(event, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            for event in events:
                self._apply(event)

    def _apply(self, event: dict) -> None:
        """Apply one journal event to memory.

        The ONLY mutation path: live operations journal an event and
        route it here, exactly as replay does, so a live queue and its
        own journal replay cannot disagree.
        """
        kind = event.get("event")
        if kind == "submit":
            job = ServiceJob(
                id=event["id"],
                digest=event["digest"],
                request=event["request"],
                client=event["client"],
                seq=event["seq"],
            )
            self.jobs[job.id] = job
            self._by_digest[job.digest] = job.id
            self._seq = max(self._seq, job.seq)
            self._counts[JobState.QUEUED] += 1
            self._queued[job.id] = job
        elif kind == "attach":
            job = self.jobs.get(event["id"])
            if job is not None:
                job.attached += 1
        elif kind == "state":
            job = self.jobs.get(event["id"])
            if job is not None:
                state = JobState(event["state"])
                self._count_change(job.state, state)
                # Outcome fields first, state LAST: the HTTP thread
                # reads live job records without the queue lock, and
                # state is its validity signal — a poller that sees
                # "done" must also see the result_key that came with it.
                if state is JobState.QUEUED:
                    # Requeue/demotion: any prior outcome is void.
                    job.result_key = job.source = job.error = None
                job.result_key = event.get("result_key", job.result_key)
                job.source = event.get("source", job.source)
                job.error = event.get("error", job.error)
                job.state = state
                if state is JobState.QUEUED:
                    self._queued[job.id] = job
                else:
                    self._queued.pop(job.id, None)

    def _count_change(self, old: JobState, new: JobState) -> None:
        self._counts[old] -= 1
        self._counts[new] += 1

    # -- submission ------------------------------------------------------

    def submit(self, request: dict, client: str) -> tuple:
        """Register a request; returns ``(job, created)``.

        An identical in-flight or completed request coalesces onto the
        existing job (``created == False``); only failed attempts are
        eligible for a fresh retry job.
        """
        digest = request_digest(request, self.version)
        with self._lock:
            existing_id = self._by_digest.get(digest)
            if existing_id is not None:
                existing = self.jobs[existing_id]
                if existing.state != JobState.FAILED:
                    event = {"event": "attach", "id": existing.id}
                    self._append(event)
                    self._apply(event)
                    return existing, False
            self._seq += 1
            event = {
                "event": "submit",
                "id": f"job-{self._seq:06d}-{digest[:12]}",
                "digest": digest,
                "request": request,
                "client": client,
                "seq": self._seq,
            }
            self._append(event)
            self._apply(event)
            return self.jobs[event["id"]], True

    # -- transitions -----------------------------------------------------

    def _transition(self, job_id: str, state: JobState, **details) -> ServiceJob:
        """Validate, journal, then apply — through the same `_apply` the
        replay path uses, so live state and post-replay state cannot
        diverge."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id!r}")
            if state not in _TRANSITIONS[job.state]:
                raise TransitionError(
                    f"job {job_id}: illegal transition "
                    f"{job.state.value} -> {state.value}"
                )
            event = {"event": "state", "id": job_id, "state": state.value}
            event.update({k: v for k, v in details.items() if v is not None})
            self._append(event)
            self._apply(event)
            return job

    def mark_running(self, job_id: str) -> ServiceJob:
        return self._transition(job_id, JobState.RUNNING)

    def mark_done(self, job_id: str, *, result_key: str,
                  source: str) -> ServiceJob:
        return self._transition(
            job_id, JobState.DONE, result_key=result_key, source=source
        )

    def mark_failed(self, job_id: str, error: str) -> ServiceJob:
        return self._transition(job_id, JobState.FAILED, error=error)

    def requeue_lost(self, job_id: str) -> ServiceJob:
        """Put a DONE job back in the queue after its result was evicted.

        The path a cache ``gc`` forces: the job record says done but the
        artifact its ``result_key`` names no longer exists, so the next
        identical submission must recompute rather than 404 forever.
        """
        return self._transition(job_id, JobState.QUEUED)

    def demote(self, job_id: str) -> ServiceJob:
        """Best-effort RUNNING -> QUEUED (dispatcher batch-failure path).

        The same transition crash replay performs, available to a live
        dispatcher whose batch died before finishing its jobs — without
        it, a mid-batch journal I/O error would strand them RUNNING (a
        state nothing re-drains) until the next restart.
        """
        return self._transition(job_id, JobState.QUEUED)

    # -- queries ---------------------------------------------------------

    def get(self, job_id: str) -> Optional[ServiceJob]:
        with self._lock:
            return self.jobs.get(job_id)

    def pending_fair(self, limit: int) -> List[ServiceJob]:
        """Up to ``limit`` queued jobs, round-robin across clients.

        Clients take turns (ordered by their oldest queued submission),
        one job per turn — a client that bulk-submits a hundred sweeps
        cannot starve another client's single request.
        """
        with self._lock:
            # The queued index keeps this O(queued), independent of how
            # many terminal jobs the table retains for dedup.
            queued = sorted(
                self._queued.values(), key=lambda job: job.seq
            )
        buckets: Dict[str, List[ServiceJob]] = {}
        for job in queued:
            buckets.setdefault(job.client, []).append(job)
        order = sorted(buckets, key=lambda client: buckets[client][0].seq)
        picked: List[ServiceJob] = []
        round_index = 0
        while len(picked) < limit:
            progressed = False
            for client in order:
                bucket = buckets[client]
                if round_index < len(bucket):
                    picked.append(bucket[round_index])
                    progressed = True
                    if len(picked) >= limit:
                        break
            if not progressed:
                break
            round_index += 1
        return picked

    def has_pending(self) -> bool:
        """O(1) queued-work check (the dispatcher's idle-poll fast path)."""
        with self._lock:
            return self._counts[JobState.QUEUED] > 0

    def depth(self) -> int:
        """Live (queued + running) jobs; O(1)."""
        with self._lock:
            return (self._counts[JobState.QUEUED]
                    + self._counts[JobState.RUNNING])

    def state_counts(self) -> Dict[str, int]:
        """Per-state job tallies; O(1)."""
        with self._lock:
            return {
                state.value: self._counts[state] for state in JobState
            }

    def close(self) -> None:
        with self._lock:
            if not self._journal.closed:
                self._journal.close()
