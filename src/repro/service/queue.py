"""Persistent, crash-safe job queue for the simulation service.

Every submitted experiment request becomes a :class:`ServiceJob` with a
tiny state machine (``queued -> running -> done | failed |
quarantined``).  All state lives in two files under ``<root>``:

* **journal** (``journal.jsonl``) — submits, duplicate attachments, and
  state transitions are each one appended, fsynced JSON line, and the
  in-memory table mutates only *after* the journal line is durable — so
  a crash at any instant loses at most the event being written.
* **snapshot** (``snapshot.json``) — a periodic :meth:`~JobQueue.compact`
  writes the whole live table atomically (temp file + fsync +
  ``os.replace``) and resets the journal, so a long-lived queue's
  restart cost is O(live jobs), not O(journal history).

Snapshot and journal are stitched together by a **generation** counter:
every compaction bumps it, stamps the new snapshot with it, and starts
the fresh journal with a ``{"event": "journal", "generation": G}``
header line.  Replay loads the snapshot (generation ``S``), then applies
the journal tail only when its header generation matches ``S`` — a
journal left behind by a crash *between* the snapshot rename and the
journal reset carries the previous generation and is correctly ignored
(every event in it is already folded into the snapshot).  A journal
*newer* than the snapshot, or a snapshot that fails to parse (a torn or
truncated file), fails loudly with :class:`SnapshotCorruptError` —
silently replaying stale state would be worse than refusing to start.
Jobs that were ``running`` when the process died are demoted back to
``queued`` (their work is repeatable and cache-backed, so re-execution
is safe), and a torn trailing journal line from a mid-write crash is
truncated away.

Compaction retains every live (queued/running) job plus the
``retain_terminal`` most recent finished ones (so pollers of a
just-completed job keep getting its record); older terminal jobs are
dropped from the table.  Dropping them is safe because their results
live in the content-addressed artifact cache: a resubmission creates a
fresh job that the dispatcher instantly completes from the store.

Deduplication happens at submit time: a job's identity is the
value-based fingerprint of its normalized request, and submitting an
identical request while a live job for it exists *attaches* to that job
instead of creating a new one.  Failed jobs do not absorb duplicates —
resubmitting a failed request queues a fresh attempt.  Quarantined jobs
*do* absorb duplicates: the request is poisonous under the current code
version, so resubmitting the same bytes would only repeat the crash —
the resubmission path out of quarantine is a ``code_version`` bump,
which changes the request digest and therefore the job identity.

Failure containment (see the dispatcher for policy): ``attempts``
counts *failed executions* — :meth:`JobQueue.retry` journals a
``running -> queued`` transition that charges one attempt, distinct
from crash demotion (which is free: the work never misbehaved, the
process hosting it died).  :meth:`JobQueue.quarantine` is the terminal
escalation, carrying a ``failure_reason`` diagnostic.  Both journal the
*absolute* new attempt count, so replay is exact without arithmetic.
``lease_deadline`` (set by :meth:`mark_running` when the dispatcher
enforces deadlines) bounds how long a RUNNING claim is trusted; the
dispatcher reclaims expired leases through the same retry/quarantine
policy.

The queue is thread-safe (the HTTP server submits from the asyncio
thread while dispatcher workers drain concurrently) but single-process;
multi-process sharing would shard queue directories, not this file.

Crash-injection seams: every fsync/rename/append/truncate boundary in
this module calls :func:`_fp` with a site name from
:data:`FAILPOINT_SITES`.  The default hook is ``None`` (zero overhead
beyond a global read); ``tests/service/crashsim.py`` installs a hook
that raises at a chosen site occurrence and then asserts the replay
invariants hold.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass
from enum import Enum
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.experiments.cache import code_version, fingerprint, write_json_atomic

from .events import EventBus, JobTracer

__all__ = [
    "AdmissionError",
    "CompactionReport",
    "FAILPOINT_SITES",
    "JobQueue",
    "JobState",
    "QueueFullError",
    "QuotaExceededError",
    "ServiceJob",
    "SnapshotCorruptError",
    "TransitionError",
    "set_failpoint_hook",
]


# ----------------------------------------------------------------------
# Failpoints: the crash-injection seam.
# ----------------------------------------------------------------------

#: Every durability boundary in queue + compaction code, in the order a
#: full submit/compact/recover cycle visits them.  The crash harness
#: asserts it covered all of them.
FAILPOINT_SITES = (
    "journal.append.write",   # before the journal line is written
    "journal.append.fsync",   # line written+flushed, before fsync
    "journal.append.done",    # line durable, before memory mutates
    "journal.truncate",       # before a torn tail is truncated away
    "journal.reset.write",    # before the fresh journal's header is written
    "journal.reset.fsync",    # header written, before fsync
    "journal.reset.rename",   # header durable, before it replaces the journal
    "snapshot.write",         # before the snapshot temp file is written
    "snapshot.fsync",         # snapshot written, before fsync
    "snapshot.rename",        # snapshot durable, before it replaces snapshot.json
    "snapshot.replaced",      # snapshot live, before the journal resets
    "compact.done",           # journal reset, before memory drops old jobs
)

#: Test-only hook; ``None`` in production.
_FAILPOINT_HOOK: Optional[Callable[[str], None]] = None


def set_failpoint_hook(hook: Optional[Callable[[str], None]]) -> None:
    """Install (or clear, with ``None``) the global failpoint hook."""
    global _FAILPOINT_HOOK
    _FAILPOINT_HOOK = hook


def _fp(site: str) -> None:
    hook = _FAILPOINT_HOOK
    if hook is not None:
        hook(site)


class JobState(str, Enum):
    """Lifecycle states of a service job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    QUARANTINED = "quarantined"


#: Legal state transitions.  ``QUEUED -> DONE`` is the instant-cache-hit
#: path (no execution phase); ``RUNNING -> QUEUED`` is crash recovery
#: (journal replay demotes interrupted work) *and* the bounded-retry
#: path (same transition, but journaled with an attempt charge);
#: ``DONE -> QUEUED`` is result eviction (a gc pruned the artifact out
#: from under the job, so it must recompute).  ``RUNNING ->
#: QUARANTINED`` is the terminal escalation for a job that keeps
#: failing its executions — like FAILED, nothing leaves it.
_TRANSITIONS = {
    JobState.QUEUED: {JobState.RUNNING, JobState.DONE, JobState.FAILED},
    JobState.RUNNING: {JobState.DONE, JobState.FAILED, JobState.QUEUED,
                       JobState.QUARANTINED},
    JobState.DONE: {JobState.QUEUED},
    JobState.FAILED: set(),
    JobState.QUARANTINED: set(),
}

#: States compaction treats as finished (droppable beyond retention).
_TERMINAL_STATES = (JobState.DONE, JobState.FAILED, JobState.QUARANTINED)


class TransitionError(RuntimeError):
    """An illegal job state transition was requested."""


class AdmissionError(RuntimeError):
    """A submission was refused at admission (overload protection).

    Refusal happens *before* anything is journaled: a refused request
    costs one in-memory check, never an fsync, and leaves no job record
    behind.  Subclasses name the breached limit; the HTTP layer maps
    them to 429/503 with a ``Retry-After`` hint.
    """


class QuotaExceededError(AdmissionError):
    """The client already has its full quota of live jobs (HTTP 429)."""


class QueueFullError(AdmissionError):
    """The queue is at its configured depth bound (HTTP 503)."""


class SnapshotCorruptError(RuntimeError):
    """The on-disk snapshot/journal pair is unusable.

    Raised instead of silently replaying stale state: a snapshot that
    fails to parse (torn or truncated), a snapshot whose job table does
    not match its own ``job_count``, or a journal whose generation is
    *newer* than the snapshot next to it (the snapshot was deleted or
    replaced out-of-band) all mean the queue directory no longer tells a
    consistent story, and starting from a guess would resurrect or lose
    acknowledged jobs.
    """


@dataclass
class ServiceJob:
    """One submitted experiment request and its lifecycle."""

    id: str
    #: Value-based identity of the normalized request (dedup key).
    digest: str
    request: dict
    client: str
    #: Monotonic submission sequence number (fairness/ordering source).
    seq: int
    state: JobState = JobState.QUEUED
    #: Extra submissions coalesced onto this job (dedup hits).
    attached: int = 0
    #: Artifact digest of the stored result (``service`` kind), when done.
    result_key: Optional[str] = None
    #: ``"computed"`` or ``"cache"``, when done.
    source: Optional[str] = None
    error: Optional[str] = None
    #: Failed executions charged so far (retry/quarantine transitions
    #: journal the absolute value; crash demotion leaves it untouched).
    attempts: int = 0
    #: Diagnostic carried by the quarantine transition: what kept
    #: failing (pool crash, deadline, exception) and at which attempt.
    failure_reason: Optional[str] = None
    #: Wall-clock (``time.time``) instant after which a RUNNING claim
    #: is no longer trusted; ``None`` when deadlines are not enforced.
    lease_deadline: Optional[float] = None

    def public(self) -> dict:
        """The JSON shape ``GET /v1/jobs/<id>`` serves."""
        record = asdict(self)
        record["state"] = self.state.value
        return record


def request_digest(request: dict, version: str = None) -> str:
    """Value-based identity of a normalized request payload.

    ``version`` (default: the live :func:`code_version`) is part of the
    identity so that a queue journal surviving a source change never
    coalesces a fresh submission onto a job computed by old code — the
    same invalidation rule the artifact cache applies to its keys.
    """
    return fingerprint(
        "service-request", request,
        code_version() if version is None else version,
    )


@dataclass
class CompactionReport:
    """What one :meth:`JobQueue.compact` pass did."""

    generation: int
    jobs_kept: int
    jobs_dropped: int
    events_folded: int

    def summary(self) -> str:
        return (
            f"compact: generation {self.generation}, "
            f"kept {self.jobs_kept} job(s), dropped {self.jobs_dropped}, "
            f"folded {self.events_folded} journal event(s) into the snapshot"
        )


class JobQueue:
    """Journal-backed job table with atomic, validated transitions.

    ``compact_every`` (events appended since the last snapshot) arms
    :meth:`maybe_compact`, which the owner's housekeeping loop (the
    dispatcher's drain workers, for the service) calls between batches;
    ``None`` leaves compaction manual.  ``retain_terminal`` bounds how
    many finished jobs a snapshot keeps.
    """

    SNAPSHOT_FILE = "snapshot.json"

    def __init__(
        self,
        root: os.PathLike,
        *,
        version: str = None,
        compact_every: Optional[int] = None,
        retain_terminal: int = 256,
        events: Optional[EventBus] = None,
        tracer: Optional[JobTracer] = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / "journal.jsonl"
        self.snapshot_path = self.root / self.SNAPSHOT_FILE
        self.version = version if version is not None else code_version()
        if compact_every is not None and compact_every < 1:
            raise ValueError("compact_every must be >= 1 (or None)")
        if retain_terminal < 0:
            raise ValueError("retain_terminal must be >= 0")
        self.compact_every = compact_every
        self.retain_terminal = retain_terminal
        self.jobs: Dict[str, ServiceJob] = {}
        self._by_digest: Dict[str, str] = {}
        self._seq = 0
        #: Per-state job tallies, maintained incrementally so depth and
        #: state queries stay O(1) however many jobs the table retains.
        self._counts = {state: 0 for state in JobState}
        #: id -> job for QUEUED jobs only, so draining scales with the
        #: queue, not with the ever-retained job history.
        self._queued: Dict[str, ServiceJob] = {}
        #: client -> live (queued + running) job count, maintained
        #: incrementally so per-client quota checks stay O(1).
        self._client_live: Dict[str, int] = {}
        self._lock = threading.RLock()
        #: Snapshot/journal generation; bumped by every compaction.
        self._generation = 0
        #: Events appended since the last snapshot (auto-compact trigger).
        self._events_since_snapshot = 0
        #: Cumulative compaction tallies for this process (``/v1/stats``).
        self._compactions = 0
        self._compacted_events = 0
        self._dropped_jobs = 0
        self._journal: Optional[object] = None
        #: Observability exhaust.  Every ``_apply`` publishes one bus
        #: record (replay included — live and replayed state share the
        #: emission path), while span stamps are live-only: ``_journal``
        #: opens after replay, and replayed transitions must not pollute
        #: the latency histograms with restart-time gaps.
        self.events = events if events is not None else EventBus()
        self.tracer = tracer if tracer is not None else JobTracer()

        self._truncate_torn_tail()
        self._load_snapshot()
        if not self._replay_tail():
            # The journal predates the snapshot (a crash hit between the
            # snapshot rename and the journal reset): every event in it
            # is already folded into the snapshot, so finish the
            # interrupted reset before anything appends.
            self._reset_journal()
        self._journal = open(self.journal_path, "a", encoding="utf-8")
        self._demote_interrupted()

    # -- journal ---------------------------------------------------------

    def _append(self, event: dict) -> None:
        """One durable journal line; the caller mutates memory after."""
        if self._journal is None:
            # A compaction published its snapshot but could not reset
            # the journal to match (see compact()); an event appended to
            # the stale-generation journal would be silently discarded
            # by the next replay, so refuse it loudly instead.
            raise RuntimeError(
                "queue journal is unavailable (compaction failed between "
                "snapshot publish and journal reset); restart the queue "
                "to recover from the snapshot"
            )
        line = json.dumps(event, sort_keys=True) + "\n"
        _fp("journal.append.write")
        self._journal.write(line)
        self._journal.flush()
        _fp("journal.append.fsync")
        os.fsync(self._journal.fileno())
        _fp("journal.append.done")
        self._events_since_snapshot += 1

    def _truncate_torn_tail(self) -> None:
        """Drop a torn trailing line before anything appends.

        A crash mid-append can leave the journal without a trailing
        newline; appending to that file would glue the next (durably
        acknowledged) event onto the torn fragment and silently lose it
        on the following replay.  Truncating back to the last newline
        restores the append-only invariant: every line is a whole line.
        """
        if not self.journal_path.exists():
            return
        with open(self.journal_path, "r+b") as handle:
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":  # common path: one-byte peek
                return
            handle.seek(0)
            keep = handle.read().rfind(b"\n") + 1  # 0 if no newline at all
            _fp("journal.truncate")
            handle.truncate(keep)
            handle.flush()
            os.fsync(handle.fileno())

    def _reset_journal(self) -> None:
        """Atomically replace the journal with a fresh header-only file.

        The fresh journal's single line stamps the current generation;
        the same temp+fsync+rename idiom every JSON state file uses
        (:func:`~repro.experiments.cache.write_json_atomic`), so a
        crash at any point leaves either the old complete journal or
        the new one — never a torn hybrid.  The caller is responsible
        for reopening ``self._journal`` if a handle was open.
        """
        write_json_atomic(
            self.journal_path,
            {"event": "journal", "generation": self._generation},
            checkpoint=lambda step: _fp(f"journal.reset.{step}"),
        )
        self._events_since_snapshot = 0

    # -- snapshot / replay ----------------------------------------------

    @staticmethod
    def _job_record(job: ServiceJob) -> dict:
        record = asdict(job)
        record["state"] = job.state.value
        return record

    def _load_snapshot(self) -> None:
        """Load ``snapshot.json`` into the table; loud on corruption."""
        try:
            raw = self.snapshot_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as error:
            raise SnapshotCorruptError(
                f"{self.snapshot_path}: snapshot does not parse ({error}); "
                f"refusing to silently replay stale state"
            ) from None
        if not isinstance(payload, dict):
            raise SnapshotCorruptError(
                f"{self.snapshot_path}: snapshot is not a JSON object"
            )
        jobs = payload.get("jobs")
        expected = payload.get("job_count")
        if not isinstance(jobs, list) or expected != len(jobs):
            raise SnapshotCorruptError(
                f"{self.snapshot_path}: snapshot job table is truncated "
                f"(job_count {expected!r} != {len(jobs) if isinstance(jobs, list) else 'n/a'})"
            )
        try:
            self._generation = int(payload["generation"])
            self._seq = int(payload["seq"])
            for record in jobs:
                job = ServiceJob(
                    id=record["id"],
                    digest=record["digest"],
                    request=record["request"],
                    client=record["client"],
                    seq=record["seq"],
                    state=JobState(record["state"]),
                    attached=record["attached"],
                    result_key=record["result_key"],
                    source=record["source"],
                    error=record["error"],
                    # Containment fields arrived after the first snapshot
                    # format; default them so older snapshots still load.
                    attempts=int(record.get("attempts", 0)),
                    failure_reason=record.get("failure_reason"),
                    lease_deadline=record.get("lease_deadline"),
                )
                self.jobs[job.id] = job
                self._by_digest[job.digest] = job.id
                self._counts[job.state] += 1
                if job.state is JobState.QUEUED:
                    self._queued[job.id] = job
                if job.state in (JobState.QUEUED, JobState.RUNNING):
                    self._client_live[job.client] = (
                        self._client_live.get(job.client, 0) + 1
                    )
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotCorruptError(
                f"{self.snapshot_path}: malformed snapshot record "
                f"({type(error).__name__}: {error})"
            ) from None

    def _replay_tail(self) -> bool:
        """Apply the journal on top of the snapshot (crash-tolerant).

        Returns ``True`` when the journal belonged to the current
        generation (its events were applied), ``False`` when it was a
        stale pre-snapshot leftover whose events are already folded into
        the snapshot (the caller then resets it).  A journal from a
        *future* generation is a loud error: its snapshot is missing.
        """
        generation = 0
        events: List[dict] = []
        if self.journal_path.exists():
            first = True
            with open(self.journal_path, encoding="utf-8") as handle:
                for line in handle:
                    try:
                        event = json.loads(line)
                    except json.JSONDecodeError:
                        continue  # torn write from a crash mid-append
                    if first and event.get("event") == "journal":
                        generation = int(event.get("generation", 0))
                        first = False
                        continue
                    first = False
                    events.append(event)
        if generation > self._generation:
            raise SnapshotCorruptError(
                f"{self.journal_path}: journal generation {generation} is "
                f"newer than snapshot generation {self._generation}; the "
                f"snapshot it was appended after is gone"
            )
        if generation < self._generation:
            return False
        for event in events:
            self._apply(event)
        self._events_since_snapshot = len(events)
        return True

    def _demote_interrupted(self) -> None:
        """Journal + apply ``running -> queued`` for interrupted work."""
        events = [
            {"event": "state", "id": job.id, "state": "queued"}
            for job in self.jobs.values()
            if job.state == JobState.RUNNING
        ]
        for event in events:
            self._append(event)
            self._apply(event)

    #: JobState -> tracing span stage.  RUNNING reads as "claimed"
    #: because that is what the transition *is*: a dispatcher claimed
    #: the job; execution stages are stamped by the dispatcher itself.
    _SPAN_STAGE = {
        "queued": "queued",
        "running": "claimed",
        "done": "done",
        "failed": "failed",
        "quarantined": "quarantined",
    }

    def _emit_job(self, job: ServiceJob, **extra) -> None:
        """Publish one structured bus record for a job mutation.

        A fresh dict every time: the bus stamps ``seq``/``ts`` onto
        whatever it is handed, and journal events must stay pristine.
        """
        record = {
            "event": "job",
            "id": job.id,
            "state": job.state.value,
            "client": job.client,
        }
        for key, value in (
            ("digest", job.digest),
            ("source", job.source),
            ("result_key", job.result_key),
            ("error", job.error),
            ("failure_reason", job.failure_reason),
        ):
            if value is not None:
                record[key] = value
        if job.attempts:
            record["attempts"] = job.attempts
        record.update(extra)
        self.events.publish(record)

    def _apply(self, event: dict) -> None:
        """Apply one journal event to memory.

        The ONLY mutation path: live operations journal an event and
        route it here, exactly as replay does, so a live queue and its
        own journal replay cannot disagree — and so the event bus sees
        one emission path for live and replayed mutations alike.
        """
        kind = event.get("event")
        if kind == "submit":
            job = ServiceJob(
                id=event["id"],
                digest=event["digest"],
                request=event["request"],
                client=event["client"],
                seq=event["seq"],
            )
            self.jobs[job.id] = job
            self._by_digest[job.digest] = job.id
            self._seq = max(self._seq, job.seq)
            self._counts[JobState.QUEUED] += 1
            self._queued[job.id] = job
            self._client_live[job.client] = (
                self._client_live.get(job.client, 0) + 1
            )
            self._emit_job(job)
            if self._journal is not None:
                self.tracer.stamp(job.id, "queued")
        elif kind == "attach":
            job = self.jobs.get(event["id"])
            if job is not None:
                job.attached += 1
                self.events.publish({
                    "event": "attach",
                    "id": job.id,
                    "client": job.client,
                    "attached": job.attached,
                })
        elif kind == "state":
            job = self.jobs.get(event["id"])
            if job is not None:
                state = JobState(event["state"])
                self._count_change(job.state, state)
                self._client_live_change(job, job.state, state)
                # Outcome fields first, state LAST: the HTTP thread
                # reads live job records without the queue lock, and
                # state is its validity signal — a poller that sees
                # "done" must also see the result_key that came with it.
                if state is JobState.QUEUED:
                    # Requeue/demotion/retry: any prior outcome is void.
                    job.result_key = job.source = job.error = None
                    job.failure_reason = None
                job.result_key = event.get("result_key", job.result_key)
                job.source = event.get("source", job.source)
                job.error = event.get("error", job.error)
                # Retry/quarantine events carry the absolute new attempt
                # count (no replay arithmetic); demotion carries none and
                # leaves the tally untouched.
                if "attempts" in event:
                    job.attempts = int(event["attempts"])
                job.failure_reason = event.get(
                    "failure_reason", job.failure_reason
                )
                # A lease belongs to one RUNNING claim: entering RUNNING
                # (re)sets it from the event, leaving RUNNING clears it.
                if state is JobState.RUNNING:
                    job.lease_deadline = event.get("lease_deadline")
                else:
                    job.lease_deadline = None
                job.state = state
                if state is JobState.QUEUED:
                    self._queued[job.id] = job
                else:
                    self._queued.pop(job.id, None)
                self._emit_job(job)
                if self._journal is not None:
                    self.tracer.stamp(job.id, self._SPAN_STAGE[state.value])

    def _count_change(self, old: JobState, new: JobState) -> None:
        self._counts[old] -= 1
        self._counts[new] += 1

    _LIVE_STATES = (JobState.QUEUED, JobState.RUNNING)

    def _client_live_change(
        self, job: ServiceJob, old: JobState, new: JobState
    ) -> None:
        """Keep the per-client live tally in step with a transition."""
        was_live = old in self._LIVE_STATES
        is_live = new in self._LIVE_STATES
        if was_live and not is_live:
            remaining = self._client_live.get(job.client, 0) - 1
            if remaining > 0:
                self._client_live[job.client] = remaining
            else:
                self._client_live.pop(job.client, None)
        elif is_live and not was_live:
            self._client_live[job.client] = (
                self._client_live.get(job.client, 0) + 1
            )

    # -- compaction ------------------------------------------------------

    def compact(self, *, retain_terminal: Optional[int] = None) -> CompactionReport:
        """Fold the journal into an atomic snapshot and reset the journal.

        Ordering (all under the queue lock, so no event can land in the
        about-to-die journal):

        1. write ``snapshot.json`` (temp + fsync + rename) stamped with
           generation ``G+1``, containing every live job plus the
           ``retain_terminal`` most recent finished ones;
        2. replace the journal with a fresh header-only file stamped
           ``G+1`` (temp + fsync + rename) and reopen the append handle;
        3. drop the non-retained terminal jobs from memory.

        A crash before step 1's rename leaves the old snapshot+journal
        pair (generation ``G``) fully intact; a crash between steps 1
        and 2 leaves a generation-``G`` journal next to a
        generation-``G+1`` snapshot, which replay detects and discards
        (its events are all folded into the snapshot); a crash inside
        step 2 leaves either journal file whole, never a hybrid.  Memory
        mutates last, after everything is durable.
        """
        retain = (
            self.retain_terminal if retain_terminal is None else retain_terminal
        )
        if retain < 0:
            raise ValueError("retain_terminal must be >= 0")
        with self._lock:
            live = [
                job for job in self.jobs.values()
                if job.state in (JobState.QUEUED, JobState.RUNNING)
            ]
            terminal = sorted(
                (
                    job for job in self.jobs.values()
                    if job.state in _TERMINAL_STATES
                ),
                key=lambda job: job.seq,
            )
            dropped = terminal[:max(0, len(terminal) - retain)]
            dropped_ids = {job.id for job in dropped}
            kept = sorted(
                (job for job in self.jobs.values()
                 if job.id not in dropped_ids),
                key=lambda job: job.seq,
            )
            generation = self._generation + 1
            folded = self._events_since_snapshot
            payload = {
                "generation": generation,
                "seq": self._seq,
                "job_count": len(kept),
                "jobs": [self._job_record(job) for job in kept],
            }
            write_json_atomic(
                self.snapshot_path, payload,
                checkpoint=lambda step: _fp(f"snapshot.{step}"),
            )
            self._generation = generation
            _fp("snapshot.replaced")
            try:
                self._reset_journal()
                if self._journal is not None and not self._journal.closed:
                    self._journal.close()
                self._journal = open(self.journal_path, "a",
                                     encoding="utf-8")
            except BaseException:
                # The generation-G+1 snapshot is live but the journal
                # could not be reset to match.  If appends kept landing
                # in the stale generation-G journal they would be
                # acknowledged, then silently discarded by the next
                # replay — so close the handle and let _append refuse
                # loudly until a restart recovers from the snapshot.
                if self._journal is not None and not self._journal.closed:
                    try:
                        self._journal.close()
                    except OSError:
                        pass
                self._journal = None
                raise
            _fp("compact.done")
            for job in dropped:
                del self.jobs[job.id]
                self._counts[job.state] -= 1
                if self._by_digest.get(job.digest) == job.id:
                    del self._by_digest[job.digest]
            self._compactions += 1
            self._compacted_events += folded
            self._dropped_jobs += len(dropped)
            return CompactionReport(
                generation=generation,
                jobs_kept=len(kept),
                jobs_dropped=len(dropped),
                events_folded=folded,
            )

    def maybe_compact(self) -> Optional[CompactionReport]:
        """Compact iff the journal has outgrown ``compact_every`` events.

        The auto-compaction entry point — called by the dispatcher's
        drain workers (never from the HTTP event loop: a snapshot write
        is multiple fsyncs, and the submit path runs on the loop), and
        available to any standalone queue owner's housekeeping loop.
        """
        with self._lock:
            if (
                self.compact_every is None
                or self._events_since_snapshot < self.compact_every
            ):
                return None
            return self.compact()

    def compaction_stats(self) -> Dict[str, int]:
        """Generation + compaction tallies, served by ``GET /v1/stats``."""
        with self._lock:
            return {
                "generation": self._generation,
                "compactions": self._compactions,
                "events_folded": self._compacted_events,
                "jobs_dropped": self._dropped_jobs,
                "journal_events": self._events_since_snapshot,
            }

    # -- submission ------------------------------------------------------

    def submit(
        self,
        request: dict,
        client: str,
        *,
        quota: Optional[int] = None,
        max_depth: Optional[int] = None,
        exempt: bool = False,
    ) -> tuple:
        """Register a request; returns ``(job, created)``.

        An identical in-flight, completed, or quarantined request
        coalesces onto the existing job (``created == False``); only
        failed attempts are eligible for a fresh retry job (quarantined
        jobs need a ``code_version`` bump to get a fresh identity).

        Admission control happens here, inside the queue lock, so the
        check and the journal append are one atomic step.  Coalescing
        is always admitted (an attach is one journal line and zero new
        work); a *new* job is refused with :class:`QuotaExceededError`
        when ``client`` already has ``quota`` live (queued + running)
        jobs, or :class:`QueueFullError` when the queue already holds
        ``max_depth`` live jobs.  ``exempt=True`` bypasses both bounds
        — the dispatcher sets it for requests whose rendered result is
        already in the artifact store, since those complete at submit
        time without ever occupying the queue.
        """
        digest = request_digest(request, self.version)
        with self._lock:
            existing_id = self._by_digest.get(digest)
            if existing_id is not None:
                existing = self.jobs[existing_id]
                if existing.state != JobState.FAILED:
                    event = {"event": "attach", "id": existing.id}
                    self._append(event)
                    self._apply(event)
                    return existing, False
            if not exempt:
                if (max_depth is not None
                        and self._counts[JobState.QUEUED]
                        + self._counts[JobState.RUNNING] >= max_depth):
                    raise QueueFullError(
                        f"queue is full ({max_depth} live job(s)); "
                        f"retry later"
                    )
                if (quota is not None
                        and self._client_live.get(client, 0) >= quota):
                    raise QuotaExceededError(
                        f"client {client!r} already has {quota} live "
                        f"job(s) in flight; retry later"
                    )
            self._seq += 1
            event = {
                "event": "submit",
                "id": f"job-{self._seq:06d}-{digest[:12]}",
                "digest": digest,
                "request": request,
                "client": client,
                "seq": self._seq,
            }
            self._append(event)
            self._apply(event)
            return self.jobs[event["id"]], True

    # -- transitions -----------------------------------------------------

    def _transition(self, job_id: str, state: JobState, **details) -> ServiceJob:
        """Validate, journal, then apply — through the same `_apply` the
        replay path uses, so live state and post-replay state cannot
        diverge."""
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id!r}")
            if state not in _TRANSITIONS[job.state]:
                raise TransitionError(
                    f"job {job_id}: illegal transition "
                    f"{job.state.value} -> {state.value}"
                )
            event = {"event": "state", "id": job_id, "state": state.value}
            event.update({k: v for k, v in details.items() if v is not None})
            self._append(event)
            self._apply(event)
            return job

    def mark_running(
        self, job_id: str, *, lease_seconds: Optional[float] = None
    ) -> ServiceJob:
        """QUEUED -> RUNNING, optionally stamping a lease deadline.

        With ``lease_seconds`` the journal records the absolute
        wall-clock deadline (``time.time() + lease_seconds``), so replay
        restores exactly the deadline that was promised, not one
        recomputed from a later clock.
        """
        deadline = None
        if lease_seconds is not None:
            deadline = round(time.time() + lease_seconds, 3)
        return self._transition(
            job_id, JobState.RUNNING, lease_deadline=deadline
        )

    def mark_done(self, job_id: str, *, result_key: str,
                  source: str) -> ServiceJob:
        return self._transition(
            job_id, JobState.DONE, result_key=result_key, source=source
        )

    def mark_failed(self, job_id: str, error: str) -> ServiceJob:
        return self._transition(job_id, JobState.FAILED, error=error)

    def retry(self, job_id: str) -> ServiceJob:
        """RUNNING -> QUEUED, charging one failed attempt.

        The bounded-retry transition: unlike :meth:`demote` (crash
        recovery, free), this one records that an *execution misbehaved*
        — the journal event carries ``retry: true`` plus the absolute
        new attempt count, so a replayed queue knows exactly how many
        chances the job has burned.  The attempt *cap* is dispatcher
        policy (``--max-attempts``); the queue is the mechanism.
        """
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id!r}")
            return self._transition(
                job_id, JobState.QUEUED, retry=True,
                attempts=job.attempts + 1,
            )

    def quarantine(self, job_id: str, reason: str) -> ServiceJob:
        """RUNNING -> QUARANTINED (terminal), with a diagnostic.

        The escalation for a job that exhausted its attempt budget (or
        is known-poisonous, e.g. isolated by batch bisection as the cell
        that kills the worker pool).  Quarantined jobs absorb duplicate
        submissions like done jobs do — retrying identical bytes under
        the same code version would only repeat the failure; a
        ``code_version`` bump changes the request digest and gets a
        fresh job.
        """
        with self._lock:
            job = self.jobs.get(job_id)
            if job is None:
                raise KeyError(f"no job {job_id!r}")
            return self._transition(
                job_id, JobState.QUARANTINED, failure_reason=reason,
                attempts=job.attempts + 1,
            )

    def requeue_lost(self, job_id: str) -> ServiceJob:
        """Put a DONE job back in the queue after its result was evicted.

        The path a cache ``gc`` forces: the job record says done but the
        artifact its ``result_key`` names no longer exists, so the next
        identical submission must recompute rather than 404 forever.
        """
        return self._transition(job_id, JobState.QUEUED)

    def demote(self, job_id: str) -> ServiceJob:
        """Best-effort RUNNING -> QUEUED (dispatcher batch-failure path).

        The same transition crash replay performs, available to a live
        dispatcher whose batch died before finishing its jobs — without
        it, a mid-batch journal I/O error would strand them RUNNING (a
        state nothing re-drains) until the next restart.
        """
        return self._transition(job_id, JobState.QUEUED)

    # -- queries ---------------------------------------------------------

    def get(self, job_id: str) -> Optional[ServiceJob]:
        with self._lock:
            return self.jobs.get(job_id)

    def pending_fair(self, limit: int) -> List[ServiceJob]:
        """Up to ``limit`` queued jobs, round-robin across clients.

        Clients take turns (ordered by their oldest queued submission),
        one job per turn — a client that bulk-submits a hundred sweeps
        cannot starve another client's single request.
        """
        with self._lock:
            # The queued index keeps this O(queued), independent of how
            # many terminal jobs the table retains for dedup.
            queued = sorted(
                self._queued.values(), key=lambda job: job.seq
            )
        buckets: Dict[str, List[ServiceJob]] = {}
        for job in queued:
            buckets.setdefault(job.client, []).append(job)
        order = sorted(buckets, key=lambda client: buckets[client][0].seq)
        picked: List[ServiceJob] = []
        round_index = 0
        while len(picked) < limit:
            progressed = False
            for client in order:
                bucket = buckets[client]
                if round_index < len(bucket):
                    picked.append(bucket[round_index])
                    progressed = True
                    if len(picked) >= limit:
                        break
            if not progressed:
                break
            round_index += 1
        return picked

    def has_pending(self) -> bool:
        """O(1) queued-work check (the dispatcher's idle-poll fast path)."""
        with self._lock:
            return self._counts[JobState.QUEUED] > 0

    def depth(self) -> int:
        """Live (queued + running) jobs; O(1)."""
        with self._lock:
            return (self._counts[JobState.QUEUED]
                    + self._counts[JobState.RUNNING])

    def running_jobs(self) -> List[ServiceJob]:
        """Jobs currently RUNNING (drain-time demotion, lease scans)."""
        with self._lock:
            return [job for job in self.jobs.values()
                    if job.state is JobState.RUNNING]

    def expired_leases(self, now: Optional[float] = None) -> List[ServiceJob]:
        """RUNNING jobs whose lease deadline has passed.

        The scan is O(table); RUNNING jobs are bounded by the drain
        slots' batch budget, and the caller (the dispatcher's
        housekeeping step) decides retry vs quarantine — the queue only
        reports.
        """
        instant = time.time() if now is None else now
        with self._lock:
            return [
                job for job in self.jobs.values()
                if job.state is JobState.RUNNING
                and job.lease_deadline is not None
                and job.lease_deadline < instant
            ]

    def client_inflight(self, client: str) -> int:
        """Live (queued + running) jobs charged to one client; O(1)."""
        with self._lock:
            return self._client_live.get(client, 0)

    def state_counts(self) -> Dict[str, int]:
        """Per-state job tallies; O(1)."""
        with self._lock:
            return {
                state.value: self._counts[state] for state in JobState
            }

    def close(self) -> None:
        with self._lock:
            if self._journal is not None and not self._journal.closed:
                self._journal.close()
