"""Stdlib HTTP client for the simulation service.

Thin ``urllib``-based helpers shared by the CLI verbs (``repro
submit`` / ``repro status``), the test suite, the CI smoke script, and
the service benchmark.  Every helper takes the service base URL
(``http://host:port``); :func:`submit_and_wait` is the common
submit-poll-fetch round trip and returns the result document exactly as
served (bytes), preserving the byte-identity guarantees the service
makes.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional, Tuple

__all__ = [
    "ServiceError",
    "compact_queue",
    "get_job",
    "get_result",
    "get_stats",
    "submit_and_wait",
    "submit_job",
]


class ServiceError(RuntimeError):
    """A request to the service failed (transport, HTTP, or job error)."""


def _request(
    method: str, url: str, body: Optional[bytes] = None, timeout: float = 30.0
) -> Tuple[int, bytes]:
    request = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()
    except (urllib.error.URLError, OSError) as error:
        raise ServiceError(f"{method} {url}: {error}") from None


def _json_or_error(status: int, body: bytes, what: str) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ServiceError(f"{what}: non-JSON response (HTTP {status})")
    if status >= 400:
        raise ServiceError(
            f"{what}: HTTP {status}: {payload.get('error', body[:200])}"
        )
    return payload


def submit_job(
    base_url: str, payload: dict, *, client: str = "cli",
    timeout: float = 30.0,
) -> dict:
    """POST one request; returns the ``{"id", "location"}`` receipt."""
    body = dict(payload)
    body["client"] = client
    status, raw = _request(
        "POST", f"{base_url}/v1/jobs",
        json.dumps(body).encode("utf-8"), timeout,
    )
    return _json_or_error(status, raw, "submit")


def get_job(base_url: str, job_id: str, *, timeout: float = 30.0) -> dict:
    status, raw = _request("GET", f"{base_url}/v1/jobs/{job_id}", None, timeout)
    return _json_or_error(status, raw, f"job {job_id}")


def get_result(base_url: str, key: str, *, timeout: float = 30.0) -> bytes:
    """The raw stored result document for an artifact key."""
    status, raw = _request("GET", f"{base_url}/v1/results/{key}", None, timeout)
    if status >= 400:
        _json_or_error(status, raw, f"result {key}")
    return raw


def get_stats(base_url: str, *, timeout: float = 30.0) -> dict:
    status, raw = _request("GET", f"{base_url}/v1/stats", None, timeout)
    return _json_or_error(status, raw, "stats")


def compact_queue(
    base_url: str,
    *,
    retain_terminal: Optional[int] = None,
    timeout: float = 30.0,
) -> dict:
    """Ask a running service to compact its queue journal now.

    ``retain_terminal`` overrides the server's configured finished-job
    retention for this pass.  Returns the compaction report
    (``generation``, ``jobs_kept``, ``jobs_dropped``,
    ``events_folded``) — the live counterpart of the offline
    ``repro queue compact --queue-dir`` maintenance verb.
    """
    body = b""
    if retain_terminal is not None:
        body = json.dumps({"retain_terminal": retain_terminal}).encode("utf-8")
    status, raw = _request("POST", f"{base_url}/v1/compact", body, timeout)
    return _json_or_error(status, raw, "compact")


def submit_and_wait(
    base_url: str,
    payload: dict,
    *,
    client: str = "cli",
    timeout: float = 300.0,
    poll: float = 0.1,
) -> Tuple[dict, bytes]:
    """Submit, poll to completion, fetch the result.

    Returns ``(job record, result document bytes)``; raises
    :class:`ServiceError` if the job fails or the deadline passes.
    """
    receipt = submit_job(base_url, payload, client=client, timeout=timeout)
    deadline = time.monotonic() + timeout
    while True:
        job = get_job(base_url, receipt["id"], timeout=timeout)
        if job["state"] == "done":
            return job, get_result(base_url, job["result_key"], timeout=timeout)
        if job["state"] == "failed":
            raise ServiceError(
                f"job {job['id']} failed: {job.get('error', 'unknown error')}"
            )
        if time.monotonic() > deadline:
            raise ServiceError(
                f"job {receipt['id']} still {job['state']} after {timeout}s"
            )
        time.sleep(poll)
