"""Stdlib HTTP client for the simulation service.

Thin ``urllib``-based helpers shared by the CLI verbs (``repro
submit`` / ``repro status``), the test suite, the CI smoke script, and
the service benchmark.  Every helper takes the service base URL
(``http://host:port``); :func:`submit_and_wait` is the common
submit-poll-fetch round trip and returns the result document exactly as
served (bytes), preserving the byte-identity guarantees the service
makes.

Submissions understand the service's admission-control responses: a 429
(per-client quota) or 503 (queue depth) refusal carries a
``Retry-After`` hint, and :func:`submit_job` can honor it — sleeping
``max(Retry-After, base * 2^attempt)`` capped at ``backoff_cap`` between
attempts — so well-behaved clients convert overload into latency instead
of hammering a saturated server.  Any other 4xx/5xx fails fast.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Callable, Iterator, Mapping, Optional, Tuple

__all__ = [
    "RETRYABLE_STATUSES",
    "TERMINAL_STATES",
    "ServiceError",
    "compact_queue",
    "get_health",
    "get_job",
    "get_metrics",
    "get_result",
    "get_stats",
    "poll_job",
    "route_url",
    "stream_events",
    "submit_and_wait",
    "submit_job",
]

#: Admission refusals the server expects clients to retry.  Everything
#: else (400 bad request, 404, 413 oversize, 500 bug) is not transient:
#: resending the same bytes cannot succeed, so those fail fast.
RETRYABLE_STATUSES = frozenset({429, 503})

#: Job states that will never change again.  ``quarantined`` is the
#: containment terminal — the job exhausted its attempt budget (its
#: record carries ``attempts`` and a ``failure_reason`` diagnostic) —
#: so pollers treat it exactly like ``failed``: stop waiting.
TERMINAL_STATES = frozenset({"done", "failed", "quarantined"})


class ServiceError(RuntimeError):
    """A request to the service failed (transport, HTTP, or job error).

    ``status`` carries the HTTP status when one was received (``None``
    for transport failures); ``retry_after`` the parsed ``Retry-After``
    seconds when the server sent the header.
    """

    def __init__(
        self,
        message: str,
        *,
        status: Optional[int] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after = retry_after


def _parse_retry_after(headers: Mapping[str, str]) -> Optional[float]:
    """The ``Retry-After`` delay in seconds, or ``None``.

    Only the delta-seconds form is parsed (the service always sends an
    integer); an HTTP-date or garbage value degrades to ``None`` rather
    than failing the whole response.
    """
    value = headers.get("Retry-After")
    if value is None:
        return None
    try:
        seconds = float(value.strip())
    except (AttributeError, ValueError):
        return None
    return seconds if seconds >= 0 else None


def _request(
    method: str, url: str, body: Optional[bytes] = None, timeout: float = 30.0
) -> Tuple[int, bytes, Mapping[str, str]]:
    request = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read(), response.headers
    except urllib.error.HTTPError as error:
        return error.code, error.read(), error.headers
    except (urllib.error.URLError, OSError) as error:
        raise ServiceError(f"{method} {url}: {error}") from None


def _json_or_error(
    status: int,
    body: bytes,
    what: str,
    headers: Optional[Mapping[str, str]] = None,
) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ServiceError(
            f"{what}: non-JSON response (HTTP {status})", status=status
        )
    if status >= 400:
        raise ServiceError(
            f"{what}: HTTP {status}: {payload.get('error', body[:200])}",
            status=status,
            retry_after=_parse_retry_after(headers or {}),
        )
    return payload


def _base_urls(base_url) -> Tuple[str, ...]:
    """Accept one URL, a comma-separated string, or a sequence of URLs."""
    if isinstance(base_url, str):
        urls = tuple(u.strip() for u in base_url.split(",") if u.strip())
    else:
        urls = tuple(str(u).strip() for u in base_url if str(u).strip())
    if not urls:
        raise ServiceError("no service URL given")
    return tuple(u.rstrip("/") for u in urls)


def route_url(base_url, payload: dict) -> str:
    """Resolve a possibly multi-URL ``base_url`` to one shard URL.

    This is the client half of sharded serving: given every shard's
    base URL (comma-separated or a sequence, in the same index order
    the servers were started with), the request payload is normalized
    and fingerprinted exactly as the dispatcher will, and the
    consistent-hash ring picks the owning shard — so every spelling of
    one logical request, from every client, lands on the same process
    and submit-time dedup converges.  A single URL short-circuits
    without touching the routing machinery (the unsharded fast path).
    """
    urls = _base_urls(base_url)
    if len(urls) == 1:
        return urls[0]
    from repro.service.routing import route_request

    return route_request(urls, payload)


def submit_job(
    base_url, payload: dict, *, client: str = "cli",
    timeout: float = 30.0,
    max_retries: int = 0,
    backoff_base: float = 0.1,
    backoff_cap: float = 30.0,
    on_retry: Optional[Callable[[int, float, ServiceError], None]] = None,
    _sleep: Callable[[float], None] = time.sleep,
) -> dict:
    """POST one request; returns the ``{"id", "location"}`` receipt.

    With ``max_retries > 0``, admission refusals (HTTP 429/503) are
    retried up to that many times; each attempt sleeps
    ``min(backoff_cap, max(Retry-After, backoff_base * 2^attempt))`` —
    honoring the server's hint but never retrying tighter than the
    exponential schedule, and never looser than the cap.  ``on_retry``
    (if given) observes each ``(attempt, delay, error)`` before the
    sleep.  Non-retryable errors, and a refusal on the final attempt,
    raise :class:`ServiceError` with ``.status`` / ``.retry_after`` set.

    ``base_url`` may name several shard servers (comma-separated or a
    sequence); the payload is then consistent-hash routed to its owning
    shard via :func:`route_url` before submission.
    """
    base = route_url(base_url, payload)
    body = dict(payload)
    body["client"] = client
    encoded = json.dumps(body).encode("utf-8")
    attempts = max(0, max_retries) + 1
    for attempt in range(attempts):
        status, raw, headers = _request(
            "POST", f"{base}/v1/jobs", encoded, timeout
        )
        try:
            return _json_or_error(status, raw, "submit", headers)
        except ServiceError as error:
            last_attempt = attempt == attempts - 1
            if error.status not in RETRYABLE_STATUSES or last_attempt:
                raise
            hinted = error.retry_after or 0.0
            delay = min(
                backoff_cap, max(hinted, backoff_base * (2 ** attempt))
            )
            if on_retry is not None:
                on_retry(attempt, delay, error)
            _sleep(delay)
    raise AssertionError("unreachable: loop returns or raises")


def get_job(base_url: str, job_id: str, *, timeout: float = 30.0) -> dict:
    status, raw, headers = _request(
        "GET", f"{base_url}/v1/jobs/{job_id}", None, timeout
    )
    return _json_or_error(status, raw, f"job {job_id}", headers)


def poll_job(
    base_url: str,
    job_id: str,
    *,
    timeout: float = 300.0,
    poll: float = 0.1,
) -> dict:
    """Poll one job until it reaches a terminal state.

    Returns the final record for any state in :data:`TERMINAL_STATES`
    (including ``failed``/``quarantined`` — inspecting the verdict is
    the caller's business); raises :class:`ServiceError` only if the
    deadline passes first.  Quarantine is terminal precisely so this
    loop cannot spin forever on a poison job.
    """
    deadline = time.monotonic() + timeout
    while True:
        job = get_job(base_url, job_id, timeout=timeout)
        if job["state"] in TERMINAL_STATES:
            return job
        if time.monotonic() > deadline:
            raise ServiceError(
                f"job {job_id} still {job['state']} after {timeout}s"
            )
        time.sleep(poll)


def get_health(base_url: str, *, timeout: float = 30.0) -> dict:
    """The ``/v1/health`` document, whatever the status code.

    Both the 200 (ready) and 503 (draining / breaker open) responses
    carry the same JSON shape; transport failures still raise
    :class:`ServiceError` — the caller distinguishes "server says not
    ready" from "server unreachable".
    """
    status, raw, _headers = _request(
        "GET", f"{base_url}/v1/health", None, timeout
    )
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        raise ServiceError(
            f"health: non-JSON response (HTTP {status})", status=status
        )


def get_result(base_url: str, key: str, *, timeout: float = 30.0) -> bytes:
    """The raw stored result document for an artifact key."""
    status, raw, headers = _request(
        "GET", f"{base_url}/v1/results/{key}", None, timeout
    )
    if status >= 400:
        _json_or_error(status, raw, f"result {key}", headers)
    return raw


def get_stats(base_url: str, *, timeout: float = 30.0) -> dict:
    status, raw, headers = _request(
        "GET", f"{base_url}/v1/stats", None, timeout
    )
    return _json_or_error(status, raw, "stats", headers)


def get_metrics(
    base_url: str, *, fmt: str = "prometheus", timeout: float = 30.0
):
    """``/v1/metrics``: Prometheus exposition text or the JSON mirror.

    ``fmt="prometheus"`` returns the raw text (str); ``fmt="json"``
    returns the parsed JSON document (dict).
    """
    suffix = "?format=json" if fmt == "json" else ""
    status, raw, headers = _request(
        "GET", f"{base_url}/v1/metrics{suffix}", None, timeout
    )
    if fmt == "json":
        return _json_or_error(status, raw, "metrics", headers)
    if status >= 400:
        _json_or_error(status, raw, "metrics", headers)
    return raw.decode("utf-8")


def stream_events(
    base_url: str,
    *,
    buffer: Optional[int] = None,
    timeout: float = 30.0,
    max_events: Optional[int] = None,
) -> Iterator[dict]:
    """Tail ``/v1/events``: yield each SSE event as a parsed dict.

    A plain blocking generator over one streaming ``urllib`` response —
    the consumer side of the service's SSE contract.  ``data:`` lines
    accumulate until a blank line ends the frame; ``:`` comment lines
    (keepalives) are skipped.  ``timeout`` is the socket read timeout
    between frames — on a quiet server the 15s keepalive cadence keeps
    any timeout above that from firing.  ``max_events`` (if given)
    closes the stream after yielding that many events; otherwise the
    generator runs until the server closes or the caller breaks out.
    """
    url = f"{base_url}/v1/events"
    if buffer is not None:
        url += f"?buffer={int(buffer)}"
    request = urllib.request.Request(url, method="GET")
    yielded = 0
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            if response.status != 200:
                raise ServiceError(
                    f"events: HTTP {response.status}",
                    status=response.status,
                )
            data_lines = []
            for raw_line in response:
                line = raw_line.decode("utf-8").rstrip("\r\n")
                if line.startswith(":"):
                    continue  # keepalive comment
                if line.startswith("data:"):
                    data_lines.append(line[len("data:"):].strip())
                    continue
                if line == "" and data_lines:
                    try:
                        event = json.loads("\n".join(data_lines))
                    except json.JSONDecodeError:
                        event = None
                    data_lines = []
                    if isinstance(event, dict):
                        yield event
                        yielded += 1
                        if max_events is not None \
                                and yielded >= max_events:
                            return
    except (urllib.error.URLError, OSError, TimeoutError) as error:
        raise ServiceError(f"events: {error}") from None


def compact_queue(
    base_url: str,
    *,
    retain_terminal: Optional[int] = None,
    timeout: float = 30.0,
) -> dict:
    """Ask a running service to compact its queue journal now.

    ``retain_terminal`` overrides the server's configured finished-job
    retention for this pass.  Returns the compaction report
    (``generation``, ``jobs_kept``, ``jobs_dropped``,
    ``events_folded``) — the live counterpart of the offline
    ``repro queue compact --queue-dir`` maintenance verb.
    """
    body = b""
    if retain_terminal is not None:
        body = json.dumps({"retain_terminal": retain_terminal}).encode("utf-8")
    status, raw, headers = _request(
        "POST", f"{base_url}/v1/compact", body, timeout
    )
    return _json_or_error(status, raw, "compact", headers)


def submit_and_wait(
    base_url,
    payload: dict,
    *,
    client: str = "cli",
    timeout: float = 300.0,
    poll: float = 0.1,
    max_retries: int = 0,
    backoff_base: float = 0.1,
    backoff_cap: float = 30.0,
    on_retry: Optional[Callable[[int, float, ServiceError], None]] = None,
) -> Tuple[dict, bytes]:
    """Submit, poll to completion, fetch the result.

    Returns ``(job record, result document bytes)``; raises
    :class:`ServiceError` if the job fails or the deadline passes.
    Retry parameters apply to the submission only (polls hit GET
    routes, which the service never rate-limits).  With a multi-URL
    ``base_url`` the owning shard is resolved once up front, and the
    poll and result fetch stay on that shard — the job record and its
    artifact live where the submission landed.
    """
    base = route_url(base_url, payload)
    receipt = submit_job(
        base, payload, client=client, timeout=timeout,
        max_retries=max_retries, backoff_base=backoff_base,
        backoff_cap=backoff_cap, on_retry=on_retry,
    )
    job = poll_job(base, receipt["id"], timeout=timeout, poll=poll)
    if job["state"] == "done":
        return job, get_result(base, job["result_key"], timeout=timeout)
    if job["state"] == "quarantined":
        raise ServiceError(
            f"job {job['id']} quarantined after "
            f"{job.get('attempts', '?')} attempt(s): "
            f"{job.get('failure_reason', 'unknown failure')}"
        )
    raise ServiceError(
        f"job {job['id']} failed: {job.get('error', 'unknown error')}"
    )
