"""Stdlib-only asyncio HTTP JSON API over the job queue and dispatcher.

The server is a deliberately small HTTP/1.1 implementation on
``asyncio.start_server`` — no third-party framework, one request per
connection (``Connection: close``), JSON in and out:

* ``POST /v1/jobs`` — submit a request (``{"kind": "sweep", "axis":
  ..., "values": [...], "workloads": [...], "profile": ...}`` or
  ``{"kind": "figure", "target": ..., "profile": ...}``, plus an
  optional ``"client"`` tag).  Responds ``202`` with ``{"id",
  "location"}`` — identical bytes for identical requests, however many
  clients race the submission.
* ``GET /v1/jobs/<id>`` — the job record (state, result key, error).
* ``GET /v1/results/<key>`` — the stored result document, byte-identical
  to the equivalent local CLI run's ``--json`` output.
* ``GET /v1/stats`` — queue depth and state counts, dedup/batching
  tallies, containment counters, cache hit/miss counters,
  worker/compaction counters.
* ``GET /v1/health`` — readiness/liveness: ``200`` while accepting
  work, ``503`` while draining or with the crash breaker open (the
  body always answers, so liveness is "any response at all").
* ``POST /v1/compact`` — fold the queue journal into a snapshot now
  (compaction also runs automatically every ``compact_every`` events).
* ``GET /v1/events`` — Server-Sent Events stream of the live event bus
  (job transitions, batches, bisections, pool rebuilds, access
  records).  The one deliberate exception to one-request-per-
  connection: the response never ends.  Each subscriber gets a bounded
  queue (``?buffer=N``); a slow consumer *drops* events and receives an
  explicit ``{"event": "dropped", "count": N}`` marker — the dispatcher
  is never blocked by a stalled reader.
* ``GET /v1/metrics`` — per-stage latency histograms (fixed log-spaced
  buckets with p50/p95/p99), queue/occupancy gauges, and every stats
  counter, as Prometheus text (default) or JSON (``?format=json``).
* ``GET /v1/jobs/<id>?trace=1`` — the job record plus its span
  timeline (queued→claimed→batched→executed→assembled, durations sum
  to wall time).
* ``GET /dashboard`` — a self-contained zero-dependency HTML page
  driven by the SSE stream (queue depth, worker occupancy, cache hit
  rate, in-flight cells, recent quarantines).

``--log-json`` turns the same event-bus records into structured
one-line JSON logs on stdout (access records carry ts, client_id,
path, status, duration_ms; lifecycle records mark serving/draining).

Shutdown is a *graceful drain* (``SIGTERM``/``SIGINT`` under the CLI,
:meth:`ServiceServer.begin_drain` programmatically): submissions are
refused with ``503`` + ``Retry-After`` while reads keep answering,
in-flight batches get ``drain_grace`` seconds to record their verdicts,
stragglers are demoted back to ``queued`` (replay shows no phantom
RUNNING job), the journal is compacted, and the process exits 0.

Simulation work never runs on the event loop: ``workers`` dispatcher
threads drain the queue batch-by-batch (each fanning its batch across
a multiprocessing pool when ``jobs > 1``), so the API stays responsive
while heavy sweeps execute — and with more than one worker, the next
batch is claimed and grouped while the previous one is still
executing.  :class:`ServerThread` hosts the whole service inside one
background thread — the harness tests, the smoke script, and the
benchmark all drive real sockets through it.
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs

from repro.service.dashboard import DASHBOARD_HTML
from repro.service.dispatcher import (
    DEFAULT_MAX_BODY_BYTES,
    BreakerOpenError,
    Dispatcher,
    RequestError,
)
from repro.service.metrics import render_json, render_prometheus
from repro.service.queue import (
    AdmissionError,
    JobQueue,
    QueueFullError,
)
from repro.service.routing import parse_shard_spec
from repro.service.tiered import DEFAULT_PEER_TIMEOUT, TieredArtifactCache

__all__ = ["ServiceServer", "ServerThread", "serve_forever"]

#: How long the dispatcher thread naps when the queue is empty.
_IDLE_POLL_SECONDS = 0.05

#: SSE stream pacing: how often an idle stream polls its subscription,
#: and how often it emits a comment-line keepalive so read timeouts on
#: the client side (and any intermediary) never fire on a quiet server.
_SSE_POLL_SECONDS = 0.05
_SSE_KEEPALIVE_SECONDS = 15.0

#: Default / maximum per-subscriber SSE buffer (events, not bytes).
_SSE_BUFFER_DEFAULT = 256
_SSE_BUFFER_MAX = 4096

#: A client gets this long to deliver its full request; a connection
#: that stalls (opened and silent, or a short body under a long
#: Content-Length) is dropped instead of leaking a task + fd forever.
_READ_TIMEOUT_SECONDS = 30.0

_MAX_HEADERS = 100


class _BodyTooLargeError(ValueError):
    """Content-Length exceeds the configured POST body cap (HTTP 413)."""

#: Result keys are SHA-256 hex digests; anything else in the URL (path
#: separators in particular) must never reach the filesystem layer.
_RESULT_KEY_RE = re.compile(r"[0-9a-f]{64}\Z")


def _sse_frame(event: dict) -> bytes:
    """One Server-Sent Events frame: ``data: <json>`` + blank line."""
    return b"data: " + json.dumps(
        event, sort_keys=True
    ).encode("utf-8") + b"\n\n"


class ServiceServer:
    """One service instance: queue + dispatcher + HTTP front end."""

    def __init__(
        self,
        queue_dir,
        cache_dir,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        max_batch: int = 8,
        workers: int = 1,
        compact_every: Optional[int] = 4096,
        retain_terminal: int = 256,
        quota: Optional[int] = None,
        max_queue_depth: Optional[int] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        max_attempts: int = 3,
        job_timeout: Optional[float] = None,
        drain_grace: float = 30.0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
        warm_pool: bool = False,
        log_json: bool = False,
        shard: Optional[str] = None,
        peers: Optional[Tuple[str, ...]] = None,
        shared_cache_dir=None,
        peer_timeout: float = DEFAULT_PEER_TIMEOUT,
        peer_fetch: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = max(1, workers)
        #: Sharding: ``shard`` is this process's ``K/N`` spec and
        #: ``peers`` the N announced base URLs in index order (self is
        #: ``peers[K]`` — the same list every client routes over, so
        #: placement agrees without coordination).  ``shared_cache_dir``
        #: (usable with or without sharding) adds the read-through/
        #: write-through directory tier; ``peer_fetch=False`` keeps the
        #: ring for routing stats but never dials a peer for artifacts.
        shard_index, shard_count, shard_urls = 0, 1, ()
        if shard is not None:
            shard_index, shard_count = parse_shard_spec(shard)
            shard_urls = tuple(
                str(u).rstrip("/") for u in (peers or ())
            )
            if len(shard_urls) != shard_count:
                raise ValueError(
                    f"--shard {shard} needs exactly {shard_count} peer "
                    f"URL(s) (all shards, index order); got "
                    f"{len(shard_urls)}"
                )
        peer_urls = (
            tuple(u for i, u in enumerate(shard_urls) if i != shard_index)
            if peer_fetch else ()
        )
        cache = TieredArtifactCache(
            cache_dir,
            shared_root=shared_cache_dir,
            peers=peer_urls,
            peer_timeout=peer_timeout,
        )
        #: Seconds an in-flight batch gets to record its verdict once a
        #: drain begins; stragglers are demoted back to ``queued``.
        self.drain_grace = max(0.0, float(drain_grace))
        #: False only after an *unclean* drain (a batch still executing
        #: when the grace expired); the CLI uses it to pick its exit.
        self.drained_clean = True
        self._draining = False
        self.queue = JobQueue(
            queue_dir,
            compact_every=compact_every,
            retain_terminal=retain_terminal,
        )
        self.dispatcher = Dispatcher(
            self.queue, cache_dir,
            jobs=jobs, max_batch=max_batch, workers=self.workers,
            quota=quota, max_queue_depth=max_queue_depth,
            max_body_bytes=max_body_bytes,
            max_attempts=max_attempts, job_timeout=job_timeout,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
            warm_pool=warm_pool,
            cache=cache,
            shard_index=shard_index, shard_count=shard_count,
            shard_urls=shard_urls,
        )
        #: The queue owns the bus + tracer (one emission path for live
        #: and replayed mutations); the server streams and renders them.
        self.events = self.queue.events
        self.tracer = self.queue.tracer
        #: ``--log-json``: a bus subscriber thread printing every event
        #: as one JSON line on stdout (access + lifecycle included).
        self.log_json = bool(log_json)
        self._log_thread: Optional[threading.Thread] = None
        self._log_sub = None
        self._server: Optional[asyncio.base_events.Server] = None
        #: One thread per drain slot: claims are serialized inside the
        #: dispatcher, batch execution overlaps across slots.
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-dispatch"
        )
        # Result reads (disk + unpickle) go here, NOT on the event loop
        # and NOT behind the single dispatch worker a running batch owns.
        self._read_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-read"
        )
        # Created inside start(): pre-3.10 asyncio primitives bind their
        # loop at construction, and __init__ runs before asyncio.run().
        self._closing: Optional[asyncio.Event] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket (resolving port 0) and start the drain loop."""
        self._closing = asyncio.Event()
        if self.log_json:
            self._start_log_thread()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.events.publish({
            "event": "serving", "url": self.url, "workers": self.workers,
        })
        # Spawn the warm pool off the event loop so the socket answers
        # immediately; a batch racing the warm-up just blocks on the
        # pool lock and inherits the freshly spawned workers.
        loop = asyncio.get_running_loop()
        self._warmup = loop.run_in_executor(None, self.dispatcher.warm_up)
        self._drain_tasks = [
            asyncio.ensure_future(self._drain_loop(slot))
            for slot in range(self.workers)
        ]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def run_until_closed(self) -> None:
        await self._closing.wait()
        # No new batches: cancelling a drain task stops its claim loop;
        # a drain_once already running on the executor keeps going.
        for task in self._drain_tasks:
            task.cancel()
        if self._draining:
            # Grace window: keep the HTTP socket answering (refused
            # submissions carry Retry-After, health reports draining)
            # while in-flight batches record their verdicts.
            deadline = time.monotonic() + self.drain_grace
            while not self.dispatcher.idle() \
                    and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            self.drained_clean = self.dispatcher.idle()
        self._server.close()
        await self._server.wait_closed()
        # Cancelling the drain tasks does not interrupt an executor'd
        # drain_once; wait for any in-flight batches to record their
        # results BEFORE closing the journal they write to.  A wedged
        # batch that already blew the drain grace is the one case where
        # waiting would hang shutdown forever — abandon it instead (the
        # CLI hard-exits; its jobs are demoted below, so a restart
        # replays them as cleanly queued).
        self._executor.shutdown(wait=self.drained_clean)
        self._read_executor.shutdown(wait=True)
        self.dispatcher.shutdown_pool()
        if self._draining:
            # Demote any straggler batch's RUNNING claims so replay
            # never shows a phantom in-flight job, then fold the
            # journal down while we are the last writer.
            for job in self.queue.running_jobs():
                try:
                    self.queue.demote(job.id)
                except Exception:
                    pass
            if self.drained_clean:
                try:
                    self.queue.compact()
                except Exception:
                    pass  # best effort: drain must still exit 0
        if self.drained_clean:
            self.queue.close()
        self.events.publish({
            "event": "stopped", "drained_clean": self.drained_clean,
        })
        self._stop_log_thread()

    def _start_log_thread(self) -> None:
        """Subscribe a printer to the bus: one JSON line per event.

        The structured replacement for ad-hoc access prints — every
        record the dashboard sees is also a log line, so `serve
        --log-json | jq` is a complete operational transcript.
        """
        self._log_sub = self.events.subscribe(maxsize=_SSE_BUFFER_MAX)

        def pump() -> None:
            while True:
                event = self._log_sub.pop(timeout=1.0)
                if event is not None:
                    print(
                        json.dumps(event, sort_keys=True),
                        file=sys.stdout, flush=True,
                    )
                elif self._log_sub.closed:
                    return

        self._log_thread = threading.Thread(
            target=pump, name="repro-log-json", daemon=True
        )
        self._log_thread.start()

    def _stop_log_thread(self) -> None:
        if self._log_sub is not None:
            self._log_sub.close()
        if self._log_thread is not None:
            self._log_thread.join(timeout=5.0)
            self._log_thread = None

    def close(self) -> None:
        """Stop immediately (harness teardown) — no drain semantics."""
        if self._closing is not None:
            self._closing.set()

    def begin_drain(self) -> None:
        """Start a graceful drain (the SIGTERM/SIGINT path).

        Idempotent and callable from the event loop only; cross-thread
        callers go through :meth:`ServerThread.begin_drain`.  Flags the
        admission path first so every submission racing the shutdown
        sees 503 + Retry-After rather than a dropped connection.
        """
        self._draining = True
        self.events.publish({"event": "draining"})
        if self._closing is not None:
            self._closing.set()

    async def _drain_loop(self, slot: int) -> None:
        loop = asyncio.get_running_loop()
        while not self._closing.is_set():
            try:
                handled = await loop.run_in_executor(
                    self._executor, self.dispatcher.drain_once
                )
            except Exception as error:
                # A drain-level failure (full disk, journal I/O error)
                # must not silently kill the dispatcher while the API
                # keeps accepting jobs: report, back off, keep draining.
                print(
                    f"service: drain error (worker {slot}): "
                    f"{type(error).__name__}: {error}",
                    file=sys.stderr, flush=True,
                )
                self.events.publish({
                    "event": "drain_error", "worker": slot,
                    "error": f"{type(error).__name__}: {error}",
                })
                await asyncio.sleep(1.0)
                continue
            if not handled:
                await asyncio.sleep(_IDLE_POLL_SECONDS)

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        started = time.monotonic()
        try:
            method, raw_path, body = await asyncio.wait_for(
                self._read_request(reader), _READ_TIMEOUT_SECONDS
            )
        except _BodyTooLargeError as error:
            # A refusal the client can act on — unlike the silent drop
            # for malformed requests below, an oversize body gets a
            # proper 413 so well-behaved clients stop resending it.
            self.dispatcher.reject_size()
            try:
                await self._respond(
                    writer, 413, json.dumps(
                        {"error": str(error)}, sort_keys=True
                    ) + "\n",
                )
            except (ConnectionError, OSError):
                writer.close()
            return
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                ValueError):
            writer.close()
            return
        path, _, query = raw_path.partition("?")
        params = {
            name: values[-1] for name, values in parse_qs(query).items()
        }
        if path == "/v1/events" and method == "GET":
            # The streaming exception: the response never ends, so it
            # bypasses _respond/Content-Length entirely.
            await self._stream_events(writer, method, path, params, started)
            return
        headers = {}
        try:
            result = await self._route(method, path, params, body)
            if len(result) == 3:
                status, payload, headers = result
            else:
                status, payload = result
        except RequestError as error:
            status, payload = 400, {"error": str(error)}
        except QueueFullError as error:
            retry = self._retry_after_seconds(backlog=True)
            status, payload, headers = 503, {
                "error": str(error), "retry_after": retry,
            }, {"Retry-After": str(retry)}
        except BreakerOpenError as error:  # crash breaker refusing work
            status, payload, headers = 503, {
                "error": str(error), "retry_after": error.retry_after,
            }, {"Retry-After": str(error.retry_after)}
        except AdmissionError as error:  # per-client quota breach
            retry = self._retry_after_seconds(backlog=False)
            status, payload, headers = 429, {
                "error": str(error), "retry_after": retry,
            }, {"Retry-After": str(retry)}
        except Exception as error:  # never let a bug kill the server
            status, payload = 500, {
                "error": f"{type(error).__name__}: {error}"
            }
        body_text = (
            payload if isinstance(payload, str)
            else json.dumps(payload, sort_keys=True) + "\n"
        )
        try:
            await self._respond(writer, status, body_text, headers)
        except (ConnectionError, OSError):
            writer.close()  # client hung up mid-response; nothing to do
        self._access_record(method, path, status, started, body)

    def _access_record(
        self, method: str, path: str, status: int,
        started: float, body: bytes = b"",
    ) -> None:
        """Publish one access record — only when someone is listening.

        With no subscriber attached (no SSE client, no ``--log-json``)
        this is one attribute read and a truth test per request: the
        near-zero-cost contract the observability bench pins.
        """
        if not self.events.active:
            return
        client = None
        if method == "POST" and path == "/v1/jobs" and body:
            try:
                payload = json.loads(body.decode("utf-8"))
                if isinstance(payload, dict):
                    client = payload.get("client", "anonymous")
            except (UnicodeDecodeError, json.JSONDecodeError):
                pass
        record = {
            "event": "http",
            "method": method,
            "path": path,
            "status": status,
            "duration_ms": round((time.monotonic() - started) * 1000, 3),
        }
        if client is not None:
            record["client"] = str(client)
        self.events.publish(record)

    async def _stream_events(
        self, writer: asyncio.StreamWriter, method: str, path: str,
        params: Dict[str, str], started: float,
    ) -> None:
        """``GET /v1/events``: the SSE tail of the event bus.

        Subscribes with a bounded buffer (``?buffer=N``, clamped), then
        alternates between draining the subscription and sleeping one
        poll tick.  TCP backpressure only ever blocks *this* coroutine
        on ``drain()`` — meanwhile the subscription fills and drops,
        which is exactly the slow-consumer contract: bounded memory, an
        explicit ``dropped`` marker, dispatcher never blocked.
        """
        try:
            buffer = int(params.get("buffer", _SSE_BUFFER_DEFAULT))
        except ValueError:
            buffer = _SSE_BUFFER_DEFAULT
        buffer = max(1, min(_SSE_BUFFER_MAX, buffer))
        subscription = self.events.subscribe(maxsize=buffer)
        status = 200
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-store\r\n"
                b"Connection: close\r\n\r\n"
            )
            # An opening snapshot so consumers (the dashboard, `repro
            # watch`) can initialize gauges without a second request.
            hello = {
                "event": "hello",
                "schema_version": 3,
                "stats": self.dispatcher.snapshot(),
            }
            writer.write(_sse_frame(hello))
            await writer.drain()
            last_write = time.monotonic()
            while not self._closing.is_set() \
                    and not writer.is_closing():
                # Drain the whole backlog into one write + one drain:
                # under load this batches dozens of frames per wake
                # instead of paying an await per event (bounded by the
                # subscription buffer, so a flood can't wedge the loop).
                wrote = False
                while True:
                    event = subscription.pop_nowait()
                    if event is None:
                        break
                    writer.write(_sse_frame(event))
                    wrote = True
                if wrote:
                    await writer.drain()
                    last_write = time.monotonic()
                    continue
                if (time.monotonic() - last_write
                        >= _SSE_KEEPALIVE_SECONDS):
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    last_write = time.monotonic()
                await asyncio.sleep(_SSE_POLL_SECONDS)
        except (ConnectionError, OSError, asyncio.CancelledError):
            status = 499  # client went away (or the loop is closing)
        finally:
            subscription.close()
            writer.close()
            self._access_record(method, path, status, started)

    def _retry_after_seconds(self, *, backlog: bool) -> int:
        """Advisory ``Retry-After`` for refused submissions.

        Integer seconds, so any RFC-compliant parser accepts it.  A
        quota refusal clears as soon as one of the client's own jobs
        finishes — a short constant hint; a depth refusal clears as the
        shared backlog drains, so the hint scales with queue depth per
        batch of drain capacity, capped so clients never back off for
        minutes on a transient spike.
        """
        if not backlog:
            return 1
        batches_behind = self.queue.depth() // (
            4 * max(1, self.dispatcher.max_batch)
        )
        return max(1, min(30, 1 + batches_behind))

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ValueError("empty request")
        try:
            method, path, _version = request_line.split(" ", 2)
        except ValueError:
            raise ValueError(f"malformed request line {request_line!r}")
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            if len(headers) >= _MAX_HEADERS:  # unbounded-header DoS guard
                raise ValueError("too many headers")
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.dispatcher.max_body_bytes:
            raise _BodyTooLargeError(
                f"request body of {length} byte(s) exceeds the "
                f"{self.dispatcher.max_body_bytes}-byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        headers: Optional[dict] = None,
    ) -> None:
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable",
        }.get(status, "OK")
        data = body.encode("utf-8")
        headers = dict(headers or {})
        # JSON unless the route says otherwise (metrics exposition text,
        # the dashboard HTML page).
        content_type = headers.pop("Content-Type", "application/json")
        extra = "".join(
            f"{name}: {value}\r\n" for name, value in headers.items()
        )
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n".encode("latin-1") + data
        )
        try:
            await writer.drain()
        finally:
            writer.close()

    # -- routing ---------------------------------------------------------

    async def _route(
        self, method: str, path: str, params: Dict[str, str], body: bytes
    ):
        if path == "/v1/jobs" and method == "POST":
            return self._post_job(body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return self._get_job(path[len("/v1/jobs/"):], params)
        if path.startswith("/v1/results/"):
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return await self._get_result(path[len("/v1/results/"):])
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return 200, self.dispatcher.snapshot()
        if path == "/v1/metrics":
            if method != "GET":
                return 405, {"error": "method not allowed"}
            snapshot = self.dispatcher.snapshot()
            if params.get("format") == "json":
                return 200, render_json(snapshot, self.tracer)
            return 200, render_prometheus(snapshot, self.tracer), {
                "Content-Type":
                    "text/plain; version=0.0.4; charset=utf-8",
            }
        if path == "/dashboard":
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return 200, DASHBOARD_HTML, {
                "Content-Type": "text/html; charset=utf-8",
            }
        if path == "/v1/health":
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return self._health()
        if path == "/v1/compact":
            if method != "POST":
                return 405, {"error": "method not allowed"}
            retain = self._parse_compact_body(body)
            # Journal fsyncs + a snapshot write: off-loop, on the reader
            # pool (the drain workers may all be mid-batch).
            report = await asyncio.get_running_loop().run_in_executor(
                self._read_executor, self.dispatcher.compact, retain
            )
            return 200, report
        if path == "/v1/jobs" and method != "POST":
            return 405, {"error": "method not allowed"}
        return 404, {"error": f"no route for {method} {path}"}

    @staticmethod
    def _parse_compact_body(body: bytes):
        """The optional ``{"retain_terminal": N}`` compaction override."""
        if not body.strip():
            return None
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise RequestError("compact body must be a JSON object")
        retain = payload.get("retain_terminal")
        if retain is None:
            return None
        if not isinstance(retain, int) or isinstance(retain, bool) \
                or retain < 0:
            raise RequestError("'retain_terminal' must be an integer >= 0")
        return retain

    def _health(self):
        """Readiness/liveness: 200 while accepting work, 503 otherwise.

        Liveness is "any response at all" (the handler runs on the
        event loop); readiness is 200 — a draining server or an open
        crash breaker answers 503 so load balancers stop routing
        submissions here while reads keep working.
        """
        breaker_open = self.dispatcher.breaker_open_for() > 0
        ready = not self._draining and not breaker_open
        return (200 if ready else 503), {
            "live": True,
            "ready": ready,
            "draining": self._draining,
            "breaker_open": breaker_open,
            "queue_depth": self.queue.depth(),
        }

    def _post_job(self, body: bytes):
        if self._draining:
            # Drain refusals are short-lived by construction: the
            # process exits within drain_grace, so hint a retry just
            # past that (capped — grace can be configured very long).
            retry = min(30, max(1, int(self.drain_grace)))
            return 503, {
                "error": "server is draining; retry against a live "
                         "replica",
                "retry_after": retry,
            }, {"Retry-After": str(retry)}
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        client = str(payload.pop("client", "anonymous"))
        job = self.dispatcher.submit(payload, client)
        # Identical requests get byte-identical responses regardless of
        # submission order or current job state.
        return 202, {"id": job.id, "location": f"/v1/jobs/{job.id}"}

    def _get_job(self, job_id: str, params: Dict[str, str]):
        job = self.queue.get(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id!r}"}
        record = job.public()
        if job.result_key:
            record["result_location"] = f"/v1/results/{job.result_key}"
        if params.get("trace") in ("1", "true"):
            record["trace"] = self.tracer.trace(job_id)
        return 200, record

    async def _get_result(self, key: str):
        if not _RESULT_KEY_RE.fullmatch(key):
            return 404, {"error": "result keys are 64-char hex digests"}
        # Disk read + unpickle of a possibly-large document: off-loop,
        # on the reader pool (the dispatch worker may be mid-batch).
        document = await asyncio.get_running_loop().run_in_executor(
            self._read_executor, self.dispatcher.load_result, key
        )
        if document is None:
            return 404, {"error": f"no result {key!r}"}
        return 200, document


# ----------------------------------------------------------------------
# Hosting helpers: the CLI's foreground loop and the in-thread harness.
# ----------------------------------------------------------------------

async def _amain(server: ServiceServer, announce) -> None:
    await server.start()
    # SIGTERM/SIGINT trigger a graceful drain instead of tearing the
    # loop down mid-batch.  add_signal_handler is the loop-safe form;
    # platforms without it (Windows event loops) keep the default
    # KeyboardInterrupt behavior, caught by serve_forever.
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.begin_drain)
        except (NotImplementedError, RuntimeError):
            break
    if announce is not None:
        announce(server)
    await server.run_until_closed()


def serve_forever(
    queue_dir,
    cache_dir,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 1,
    max_batch: int = 8,
    workers: int = 1,
    compact_every: Optional[int] = 4096,
    quota: Optional[int] = None,
    max_queue_depth: Optional[int] = None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    max_attempts: int = 3,
    job_timeout: Optional[float] = None,
    drain_grace: float = 30.0,
    warm_pool: bool = False,
    log_json: bool = False,
    shard: Optional[str] = None,
    peers: Optional[Tuple[str, ...]] = None,
    shared_cache_dir=None,
    peer_timeout: float = DEFAULT_PEER_TIMEOUT,
    peer_fetch: bool = True,
    announce=None,
) -> bool:
    """Run a service in the foreground until signalled (CLI ``serve``).

    Returns True for a clean drain (or plain interrupt with nothing in
    flight) and False when a wedged batch outlived ``drain_grace`` —
    the caller decides how hard to exit.
    """
    server = ServiceServer(
        queue_dir, cache_dir,
        host=host, port=port, jobs=jobs, max_batch=max_batch,
        workers=workers, compact_every=compact_every,
        quota=quota, max_queue_depth=max_queue_depth,
        max_body_bytes=max_body_bytes,
        max_attempts=max_attempts, job_timeout=job_timeout,
        drain_grace=drain_grace, warm_pool=warm_pool,
        log_json=log_json,
        shard=shard, peers=peers, shared_cache_dir=shared_cache_dir,
        peer_timeout=peer_timeout, peer_fetch=peer_fetch,
    )
    try:
        asyncio.run(_amain(server, announce))
    except KeyboardInterrupt:
        pass
    return server.drained_clean


class ServerThread:
    """Context manager hosting a :class:`ServiceServer` in a thread.

    Yields after the socket is bound (``url`` is valid) and tears the
    loop down on exit — the shape the tests, the smoke script, and the
    service benchmark all share.
    """

    def __init__(self, queue_dir, cache_dir, **kwargs) -> None:
        self.server = ServiceServer(queue_dir, cache_dir, **kwargs)
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def _run(self) -> None:
        async def body():
            self._loop = asyncio.get_running_loop()
            await self.server.start()
            self._ready.set()
            await self.server.run_until_closed()

        asyncio.run(body())

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service thread failed to start")
        return self

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def dispatcher(self) -> Dispatcher:
        return self.server.dispatcher

    def begin_drain(self) -> None:
        """Cross-thread graceful drain (the in-process SIGTERM stand-in)."""
        self._call_on_loop(self.server.begin_drain)

    def __exit__(self, *exc_info) -> None:
        self._call_on_loop(self.server.close)
        self._thread.join(timeout=30.0)

    def _call_on_loop(self, callback) -> None:
        """Schedule on the server loop; a no-op once it has finished
        (a completed drain closes the loop before __exit__ runs)."""
        if self._loop is None or self._loop.is_closed():
            return
        try:
            self._loop.call_soon_threadsafe(callback)
        except RuntimeError:
            pass  # loop closed between the check and the call
