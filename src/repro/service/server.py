"""Stdlib-only asyncio HTTP JSON API over the job queue and dispatcher.

The server is a deliberately small HTTP/1.1 implementation on
``asyncio.start_server`` — no third-party framework, one request per
connection (``Connection: close``), JSON in and out:

* ``POST /v1/jobs`` — submit a request (``{"kind": "sweep", "axis":
  ..., "values": [...], "workloads": [...], "profile": ...}`` or
  ``{"kind": "figure", "target": ..., "profile": ...}``, plus an
  optional ``"client"`` tag).  Responds ``202`` with ``{"id",
  "location"}`` — identical bytes for identical requests, however many
  clients race the submission.
* ``GET /v1/jobs/<id>`` — the job record (state, result key, error).
* ``GET /v1/results/<key>`` — the stored result document, byte-identical
  to the equivalent local CLI run's ``--json`` output.
* ``GET /v1/stats`` — queue depth and state counts, dedup/batching
  tallies, containment counters, cache hit/miss counters,
  worker/compaction counters.
* ``GET /v1/health`` — readiness/liveness: ``200`` while accepting
  work, ``503`` while draining or with the crash breaker open (the
  body always answers, so liveness is "any response at all").
* ``POST /v1/compact`` — fold the queue journal into a snapshot now
  (compaction also runs automatically every ``compact_every`` events).

Shutdown is a *graceful drain* (``SIGTERM``/``SIGINT`` under the CLI,
:meth:`ServiceServer.begin_drain` programmatically): submissions are
refused with ``503`` + ``Retry-After`` while reads keep answering,
in-flight batches get ``drain_grace`` seconds to record their verdicts,
stragglers are demoted back to ``queued`` (replay shows no phantom
RUNNING job), the journal is compacted, and the process exits 0.

Simulation work never runs on the event loop: ``workers`` dispatcher
threads drain the queue batch-by-batch (each fanning its batch across
a multiprocessing pool when ``jobs > 1``), so the API stays responsive
while heavy sweeps execute — and with more than one worker, the next
batch is claimed and grouped while the previous one is still
executing.  :class:`ServerThread` hosts the whole service inside one
background thread — the harness tests, the smoke script, and the
benchmark all drive real sockets through it.
"""

from __future__ import annotations

import asyncio
import json
import re
import signal
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from repro.service.dispatcher import (
    DEFAULT_MAX_BODY_BYTES,
    BreakerOpenError,
    Dispatcher,
    RequestError,
)
from repro.service.queue import (
    AdmissionError,
    JobQueue,
    QueueFullError,
)

__all__ = ["ServiceServer", "ServerThread", "serve_forever"]

#: How long the dispatcher thread naps when the queue is empty.
_IDLE_POLL_SECONDS = 0.05

#: A client gets this long to deliver its full request; a connection
#: that stalls (opened and silent, or a short body under a long
#: Content-Length) is dropped instead of leaking a task + fd forever.
_READ_TIMEOUT_SECONDS = 30.0

_MAX_HEADERS = 100


class _BodyTooLargeError(ValueError):
    """Content-Length exceeds the configured POST body cap (HTTP 413)."""

#: Result keys are SHA-256 hex digests; anything else in the URL (path
#: separators in particular) must never reach the filesystem layer.
_RESULT_KEY_RE = re.compile(r"[0-9a-f]{64}\Z")


class ServiceServer:
    """One service instance: queue + dispatcher + HTTP front end."""

    def __init__(
        self,
        queue_dir,
        cache_dir,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        max_batch: int = 8,
        workers: int = 1,
        compact_every: Optional[int] = 4096,
        retain_terminal: int = 256,
        quota: Optional[int] = None,
        max_queue_depth: Optional[int] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        max_attempts: int = 3,
        job_timeout: Optional[float] = None,
        drain_grace: float = 30.0,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
        warm_pool: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = max(1, workers)
        #: Seconds an in-flight batch gets to record its verdict once a
        #: drain begins; stragglers are demoted back to ``queued``.
        self.drain_grace = max(0.0, float(drain_grace))
        #: False only after an *unclean* drain (a batch still executing
        #: when the grace expired); the CLI uses it to pick its exit.
        self.drained_clean = True
        self._draining = False
        self.queue = JobQueue(
            queue_dir,
            compact_every=compact_every,
            retain_terminal=retain_terminal,
        )
        self.dispatcher = Dispatcher(
            self.queue, cache_dir,
            jobs=jobs, max_batch=max_batch, workers=self.workers,
            quota=quota, max_queue_depth=max_queue_depth,
            max_body_bytes=max_body_bytes,
            max_attempts=max_attempts, job_timeout=job_timeout,
            breaker_threshold=breaker_threshold,
            breaker_cooldown=breaker_cooldown,
            warm_pool=warm_pool,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        #: One thread per drain slot: claims are serialized inside the
        #: dispatcher, batch execution overlaps across slots.
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-dispatch"
        )
        # Result reads (disk + unpickle) go here, NOT on the event loop
        # and NOT behind the single dispatch worker a running batch owns.
        self._read_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-read"
        )
        # Created inside start(): pre-3.10 asyncio primitives bind their
        # loop at construction, and __init__ runs before asyncio.run().
        self._closing: Optional[asyncio.Event] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket (resolving port 0) and start the drain loop."""
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        # Spawn the warm pool off the event loop so the socket answers
        # immediately; a batch racing the warm-up just blocks on the
        # pool lock and inherits the freshly spawned workers.
        loop = asyncio.get_running_loop()
        self._warmup = loop.run_in_executor(None, self.dispatcher.warm_up)
        self._drain_tasks = [
            asyncio.ensure_future(self._drain_loop(slot))
            for slot in range(self.workers)
        ]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def run_until_closed(self) -> None:
        await self._closing.wait()
        # No new batches: cancelling a drain task stops its claim loop;
        # a drain_once already running on the executor keeps going.
        for task in self._drain_tasks:
            task.cancel()
        if self._draining:
            # Grace window: keep the HTTP socket answering (refused
            # submissions carry Retry-After, health reports draining)
            # while in-flight batches record their verdicts.
            deadline = time.monotonic() + self.drain_grace
            while not self.dispatcher.idle() \
                    and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
            self.drained_clean = self.dispatcher.idle()
        self._server.close()
        await self._server.wait_closed()
        # Cancelling the drain tasks does not interrupt an executor'd
        # drain_once; wait for any in-flight batches to record their
        # results BEFORE closing the journal they write to.  A wedged
        # batch that already blew the drain grace is the one case where
        # waiting would hang shutdown forever — abandon it instead (the
        # CLI hard-exits; its jobs are demoted below, so a restart
        # replays them as cleanly queued).
        self._executor.shutdown(wait=self.drained_clean)
        self._read_executor.shutdown(wait=True)
        self.dispatcher.shutdown_pool()
        if self._draining:
            # Demote any straggler batch's RUNNING claims so replay
            # never shows a phantom in-flight job, then fold the
            # journal down while we are the last writer.
            for job in self.queue.running_jobs():
                try:
                    self.queue.demote(job.id)
                except Exception:
                    pass
            if self.drained_clean:
                try:
                    self.queue.compact()
                except Exception:
                    pass  # best effort: drain must still exit 0
        if self.drained_clean:
            self.queue.close()

    def close(self) -> None:
        """Stop immediately (harness teardown) — no drain semantics."""
        if self._closing is not None:
            self._closing.set()

    def begin_drain(self) -> None:
        """Start a graceful drain (the SIGTERM/SIGINT path).

        Idempotent and callable from the event loop only; cross-thread
        callers go through :meth:`ServerThread.begin_drain`.  Flags the
        admission path first so every submission racing the shutdown
        sees 503 + Retry-After rather than a dropped connection.
        """
        self._draining = True
        if self._closing is not None:
            self._closing.set()

    async def _drain_loop(self, slot: int) -> None:
        loop = asyncio.get_running_loop()
        while not self._closing.is_set():
            try:
                handled = await loop.run_in_executor(
                    self._executor, self.dispatcher.drain_once
                )
            except Exception as error:
                # A drain-level failure (full disk, journal I/O error)
                # must not silently kill the dispatcher while the API
                # keeps accepting jobs: report, back off, keep draining.
                print(
                    f"service: drain error (worker {slot}): "
                    f"{type(error).__name__}: {error}",
                    file=sys.stderr, flush=True,
                )
                await asyncio.sleep(1.0)
                continue
            if not handled:
                await asyncio.sleep(_IDLE_POLL_SECONDS)

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            method, path, body = await asyncio.wait_for(
                self._read_request(reader), _READ_TIMEOUT_SECONDS
            )
        except _BodyTooLargeError as error:
            # A refusal the client can act on — unlike the silent drop
            # for malformed requests below, an oversize body gets a
            # proper 413 so well-behaved clients stop resending it.
            self.dispatcher.reject_size()
            try:
                await self._respond(
                    writer, 413, json.dumps(
                        {"error": str(error)}, sort_keys=True
                    ) + "\n",
                )
            except (ConnectionError, OSError):
                writer.close()
            return
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                ValueError):
            writer.close()
            return
        headers = {}
        try:
            result = await self._route(method, path, body)
            if len(result) == 3:
                status, payload, headers = result
            else:
                status, payload = result
        except RequestError as error:
            status, payload = 400, {"error": str(error)}
        except QueueFullError as error:
            retry = self._retry_after_seconds(backlog=True)
            status, payload, headers = 503, {
                "error": str(error), "retry_after": retry,
            }, {"Retry-After": str(retry)}
        except BreakerOpenError as error:  # crash breaker refusing work
            status, payload, headers = 503, {
                "error": str(error), "retry_after": error.retry_after,
            }, {"Retry-After": str(error.retry_after)}
        except AdmissionError as error:  # per-client quota breach
            retry = self._retry_after_seconds(backlog=False)
            status, payload, headers = 429, {
                "error": str(error), "retry_after": retry,
            }, {"Retry-After": str(retry)}
        except Exception as error:  # never let a bug kill the server
            status, payload = 500, {
                "error": f"{type(error).__name__}: {error}"
            }
        body_text = (
            payload if isinstance(payload, str)
            else json.dumps(payload, sort_keys=True) + "\n"
        )
        try:
            await self._respond(writer, status, body_text, headers)
        except (ConnectionError, OSError):
            writer.close()  # client hung up mid-response; nothing to do

    def _retry_after_seconds(self, *, backlog: bool) -> int:
        """Advisory ``Retry-After`` for refused submissions.

        Integer seconds, so any RFC-compliant parser accepts it.  A
        quota refusal clears as soon as one of the client's own jobs
        finishes — a short constant hint; a depth refusal clears as the
        shared backlog drains, so the hint scales with queue depth per
        batch of drain capacity, capped so clients never back off for
        minutes on a transient spike.
        """
        if not backlog:
            return 1
        batches_behind = self.queue.depth() // (
            4 * max(1, self.dispatcher.max_batch)
        )
        return max(1, min(30, 1 + batches_behind))

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ValueError("empty request")
        try:
            method, path, _version = request_line.split(" ", 2)
        except ValueError:
            raise ValueError(f"malformed request line {request_line!r}")
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            if len(headers) >= _MAX_HEADERS:  # unbounded-header DoS guard
                raise ValueError("too many headers")
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.dispatcher.max_body_bytes:
            raise _BodyTooLargeError(
                f"request body of {length} byte(s) exceeds the "
                f"{self.dispatcher.max_body_bytes}-byte limit"
            )
        body = await reader.readexactly(length) if length else b""
        return method, path, body

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: str,
        headers: Optional[dict] = None,
    ) -> None:
        reason = {
            200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable",
        }.get(status, "OK")
        data = body.encode("utf-8")
        extra = "".join(
            f"{name}: {value}\r\n"
            for name, value in (headers or {}).items()
        )
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n".encode("latin-1") + data
        )
        try:
            await writer.drain()
        finally:
            writer.close()

    # -- routing ---------------------------------------------------------

    async def _route(self, method: str, path: str, body: bytes):
        if path == "/v1/jobs" and method == "POST":
            return self._post_job(body)
        if path.startswith("/v1/jobs/"):
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return self._get_job(path[len("/v1/jobs/"):])
        if path.startswith("/v1/results/"):
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return await self._get_result(path[len("/v1/results/"):])
        if path == "/v1/stats":
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return 200, self.dispatcher.snapshot()
        if path == "/v1/health":
            if method != "GET":
                return 405, {"error": "method not allowed"}
            return self._health()
        if path == "/v1/compact":
            if method != "POST":
                return 405, {"error": "method not allowed"}
            retain = self._parse_compact_body(body)
            # Journal fsyncs + a snapshot write: off-loop, on the reader
            # pool (the drain workers may all be mid-batch).
            report = await asyncio.get_running_loop().run_in_executor(
                self._read_executor, self.dispatcher.compact, retain
            )
            return 200, report
        if path == "/v1/jobs" and method != "POST":
            return 405, {"error": "method not allowed"}
        return 404, {"error": f"no route for {method} {path}"}

    @staticmethod
    def _parse_compact_body(body: bytes):
        """The optional ``{"retain_terminal": N}`` compaction override."""
        if not body.strip():
            return None
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise RequestError("compact body must be a JSON object")
        retain = payload.get("retain_terminal")
        if retain is None:
            return None
        if not isinstance(retain, int) or isinstance(retain, bool) \
                or retain < 0:
            raise RequestError("'retain_terminal' must be an integer >= 0")
        return retain

    def _health(self):
        """Readiness/liveness: 200 while accepting work, 503 otherwise.

        Liveness is "any response at all" (the handler runs on the
        event loop); readiness is 200 — a draining server or an open
        crash breaker answers 503 so load balancers stop routing
        submissions here while reads keep working.
        """
        breaker_open = self.dispatcher.breaker_open_for() > 0
        ready = not self._draining and not breaker_open
        return (200 if ready else 503), {
            "live": True,
            "ready": ready,
            "draining": self._draining,
            "breaker_open": breaker_open,
            "queue_depth": self.queue.depth(),
        }

    def _post_job(self, body: bytes):
        if self._draining:
            # Drain refusals are short-lived by construction: the
            # process exits within drain_grace, so hint a retry just
            # past that (capped — grace can be configured very long).
            retry = min(30, max(1, int(self.drain_grace)))
            return 503, {
                "error": "server is draining; retry against a live "
                         "replica",
                "retry_after": retry,
            }, {"Retry-After": str(retry)}
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise RequestError(f"invalid JSON body: {error}") from None
        if not isinstance(payload, dict):
            raise RequestError("request body must be a JSON object")
        client = str(payload.pop("client", "anonymous"))
        job = self.dispatcher.submit(payload, client)
        # Identical requests get byte-identical responses regardless of
        # submission order or current job state.
        return 202, {"id": job.id, "location": f"/v1/jobs/{job.id}"}

    def _get_job(self, job_id: str):
        job = self.queue.get(job_id)
        if job is None:
            return 404, {"error": f"no job {job_id!r}"}
        record = job.public()
        if job.result_key:
            record["result_location"] = f"/v1/results/{job.result_key}"
        return 200, record

    async def _get_result(self, key: str):
        if not _RESULT_KEY_RE.fullmatch(key):
            return 404, {"error": "result keys are 64-char hex digests"}
        # Disk read + unpickle of a possibly-large document: off-loop,
        # on the reader pool (the dispatch worker may be mid-batch).
        document = await asyncio.get_running_loop().run_in_executor(
            self._read_executor, self.dispatcher.load_result, key
        )
        if document is None:
            return 404, {"error": f"no result {key!r}"}
        return 200, document


# ----------------------------------------------------------------------
# Hosting helpers: the CLI's foreground loop and the in-thread harness.
# ----------------------------------------------------------------------

async def _amain(server: ServiceServer, announce) -> None:
    await server.start()
    # SIGTERM/SIGINT trigger a graceful drain instead of tearing the
    # loop down mid-batch.  add_signal_handler is the loop-safe form;
    # platforms without it (Windows event loops) keep the default
    # KeyboardInterrupt behavior, caught by serve_forever.
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.begin_drain)
        except (NotImplementedError, RuntimeError):
            break
    if announce is not None:
        announce(server)
    await server.run_until_closed()


def serve_forever(
    queue_dir,
    cache_dir,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 1,
    max_batch: int = 8,
    workers: int = 1,
    compact_every: Optional[int] = 4096,
    quota: Optional[int] = None,
    max_queue_depth: Optional[int] = None,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    max_attempts: int = 3,
    job_timeout: Optional[float] = None,
    drain_grace: float = 30.0,
    warm_pool: bool = False,
    announce=None,
) -> bool:
    """Run a service in the foreground until signalled (CLI ``serve``).

    Returns True for a clean drain (or plain interrupt with nothing in
    flight) and False when a wedged batch outlived ``drain_grace`` —
    the caller decides how hard to exit.
    """
    server = ServiceServer(
        queue_dir, cache_dir,
        host=host, port=port, jobs=jobs, max_batch=max_batch,
        workers=workers, compact_every=compact_every,
        quota=quota, max_queue_depth=max_queue_depth,
        max_body_bytes=max_body_bytes,
        max_attempts=max_attempts, job_timeout=job_timeout,
        drain_grace=drain_grace, warm_pool=warm_pool,
    )
    try:
        asyncio.run(_amain(server, announce))
    except KeyboardInterrupt:
        pass
    return server.drained_clean


class ServerThread:
    """Context manager hosting a :class:`ServiceServer` in a thread.

    Yields after the socket is bound (``url`` is valid) and tears the
    loop down on exit — the shape the tests, the smoke script, and the
    service benchmark all share.
    """

    def __init__(self, queue_dir, cache_dir, **kwargs) -> None:
        self.server = ServiceServer(queue_dir, cache_dir, **kwargs)
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )

    def _run(self) -> None:
        async def body():
            self._loop = asyncio.get_running_loop()
            await self.server.start()
            self._ready.set()
            await self.server.run_until_closed()

        asyncio.run(body())

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("service thread failed to start")
        return self

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def dispatcher(self) -> Dispatcher:
        return self.server.dispatcher

    def begin_drain(self) -> None:
        """Cross-thread graceful drain (the in-process SIGTERM stand-in)."""
        self._call_on_loop(self.server.begin_drain)

    def __exit__(self, *exc_info) -> None:
        self._call_on_loop(self.server.close)
        self._thread.join(timeout=30.0)

    def _call_on_loop(self, callback) -> None:
        """Schedule on the server loop; a no-op once it has finished
        (a completed drain closes the loop before __exit__ runs)."""
        if self._loop is None or self._loop.is_closed():
            return
        try:
            self._loop.call_soon_threadsafe(callback)
        except RuntimeError:
            pass  # loop closed between the check and the call
