"""Tiered artifact cache: local disk → shared directory → HTTP peers.

The multi-process sharding step needs N server processes to share one
body of computed work without sharing a filesystem lock, a journal, or
a coordinator.  The tiered cache is that seam.  It *is* an
:class:`~repro.experiments.cache.ArtifactCache` (the local tier — same
root layout, same digests, same counters), extended with two read
fallbacks and one write echo:

* **shared tier** — a second cache directory (NFS mount, bind mount,
  or plain shared disk) probed read-through on a local miss and written
  write-through on every store.  A shared hit is *promoted*: copied
  into the local tier via the atomic ``store_digest`` path, so the next
  probe never leaves local disk.
* **peer tier** — on a local+shared miss of a peer-fetchable kind
  (rendered ``service`` documents — the one kind the existing
  ``GET /v1/results/<digest>`` endpoint serves), each configured peer
  is asked over HTTP.  A fetched document is promoted into the local
  *and* shared tiers.  A refused/timed-out/erroring peer is a miss,
  never an error surfaced to the caller: the contract is "compute
  locally when alone", so a dead peer costs one bounded probe and
  nothing else.

Tier order is strict — local, then shared, then peers — and every
probe/outcome is tallied per tier (:class:`TierCounters`), surfaced by
``/v1/stats`` (``tiered`` section) and ``/v1/metrics``
(``repro_tiered_<tier>_<counter>``).

Integrity: both directory tiers inherit the corruption-healing contract
from :class:`ArtifactCache` — an unreadable artifact is unlinked and
tallied ``corrupt`` rather than poisoning its key — which matters
doubly here because a shared tier sees other hosts' torn writes.  The
write-through to the shared directory uses the same tmp-file +
``os.replace`` idiom as every store, so a writer killed mid-copy leaves
a ``.tmp`` dropping (swept by gc), never a torn ``.pkl`` a peer could
read.  A peer-fetched artifact is only ever republished through that
same atomic path.

Byte identity is preserved by construction: tiers move *pickled
values*, and every digest covers kind, key, and code version, so a
document fetched from any tier unpickles to the identical string a
local computation would have rendered.
"""

from __future__ import annotations

import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.experiments.cache import ArtifactCache

__all__ = [
    "DEFAULT_PEER_TIMEOUT",
    "PEER_FETCH_KINDS",
    "TierCounters",
    "TieredArtifactCache",
]

#: Artifact kinds eligible for HTTP peer fetch.  Only the rendered
#: service documents are, because ``GET /v1/results/<digest>`` (the
#: transport) serves exactly that kind; simulation intermediates
#: (traces, binaries, timing stats) travel through the shared tier.
PEER_FETCH_KINDS = ("service",)

#: Per-request deadline for one peer probe.  Deliberately short: a dead
#: peer must degrade a cold submit by at most this much before the
#: shard computes locally.
DEFAULT_PEER_TIMEOUT = 2.0


@dataclass
class TierCounters:
    """Observability tallies for one tier of the cache.

    ``hits``/``misses`` count probes that reached this tier (a local
    hit never probes shared, so tier misses are not request misses);
    ``promotes`` counts artifacts copied *from* this tier into faster
    tiers; ``stores`` counts write-throughs landing here; ``errors``
    counts I/O or transport failures swallowed by the fallback
    contract; ``corrupt`` counts unreadable artifacts healed here.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    promotes: int = 0
    errors: int = 0
    corrupt: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits, "misses": self.misses,
            "stores": self.stores, "promotes": self.promotes,
            "errors": self.errors, "corrupt": self.corrupt,
        }


class _SharedTierCache(ArtifactCache):
    """The shared-directory tier: a plain cache that reports heals."""

    def __init__(self, root, *, version: str, tier: TierCounters) -> None:
        super().__init__(root, version=version)
        self._tier = tier

    def _heal(self, kind: str, digest: str) -> bool:
        healed = super()._heal(kind, digest)
        if healed:
            self._tier.corrupt += 1
        return healed


def _http_fetch(url: str, timeout: float) -> Optional[bytes]:
    """GET one peer URL; the document bytes on 200, ``None`` otherwise.

    Raises nothing: every transport or HTTP failure is the caller's
    "this peer has no answer" signal, tallied but never propagated.
    """
    request = urllib.request.Request(url, method="GET")
    with urllib.request.urlopen(request, timeout=timeout) as response:
        if response.status != 200:
            return None
        return response.read()


class TieredArtifactCache(ArtifactCache):
    """Local cache with shared-directory and HTTP-peer read fallbacks.

    Drop-in for :class:`ArtifactCache` wherever one is used (the
    dispatcher, the experiment context, the CLI): with no
    ``shared_root`` and no ``peers`` it behaves identically to the
    plain cache apart from keeping tier tallies.  ``fetcher`` is the
    peer transport (``fetcher(url, timeout) -> bytes | None``),
    injectable for tests; any exception it raises counts as a peer
    error and falls through.
    """

    def __init__(
        self,
        root,
        *,
        shared_root=None,
        peers: Sequence[str] = (),
        peer_timeout: float = DEFAULT_PEER_TIMEOUT,
        peer_kinds: Sequence[str] = PEER_FETCH_KINDS,
        version: str = None,
        fetcher: Callable[[str, float], Optional[bytes]] = _http_fetch,
    ) -> None:
        super().__init__(root, version=version)
        self.tiers: Dict[str, TierCounters] = {
            "local": TierCounters(),
            "shared": TierCounters(),
            "peer": TierCounters(),
        }
        self.shared: Optional[_SharedTierCache] = (
            _SharedTierCache(
                Path(shared_root), version=self.version,
                tier=self.tiers["shared"],
            )
            if shared_root else None
        )
        self.peers = tuple(str(p).rstrip("/") for p in peers)
        self.peer_timeout = float(peer_timeout)
        self.peer_kinds = frozenset(peer_kinds)
        self._fetch = fetcher

    # -- reads ----------------------------------------------------------

    def exists_digest(self, kind: str, digest: str) -> bool:
        """Path probe across the directory tiers (no HTTP, no tallies)."""
        if super().exists_digest(kind, digest):
            return True
        return (self.shared is not None
                and self.shared.exists_digest(kind, digest))

    def readable_digest(self, kind: str, digest: str) -> bool:
        """Tier-walking form of the dispatcher's instant-complete probe.

        Local and shared tiers are structurally verified (and healed on
        failure) with the cheap STOP-opcode check; on a double miss, a
        peer-fetchable kind is fetched *now* and promoted, so a ``True``
        answer always means a subsequent :meth:`load_digest` can be
        served from a directory tier.
        """
        if super().readable_digest(kind, digest):
            self.tiers["local"].hits += 1
            return True
        self.tiers["local"].misses += 1
        if self.shared is not None:
            if self.shared.readable_digest(kind, digest):
                self.tiers["shared"].hits += 1
                return True
            self.tiers["shared"].misses += 1
        return self._fetch_and_promote(kind, digest) is not None

    def load_digest(
        self, kind: str, digest: str, *, allow_peer: bool = True
    ) -> Tuple[bool, Any]:
        """Tier-walking load.  ``allow_peer=False`` restricts the walk
        to the directory tiers — required when the caller *is* the
        ``/v1/results`` handler, i.e. the peer-fetch transport itself
        (two shards missing one digest must 404, not ping-pong)."""
        hit, value = super().load_digest(kind, digest)
        if hit:
            self.tiers["local"].hits += 1
            return True, value
        self.tiers["local"].misses += 1
        if self.shared is not None:
            hit, value = self.shared.load_digest(kind, digest)
            if hit:
                self.tiers["shared"].hits += 1
                self._promote_local(kind, digest, value, "shared")
                return True, value
            self.tiers["shared"].misses += 1
        if allow_peer:
            value = self._fetch_and_promote(kind, digest)
            if value is not None:
                return True, value
        return False, None

    # -- writes ---------------------------------------------------------

    def store_digest(self, kind: str, digest: str, value: Any) -> str:
        """Local store plus best-effort write-through to the shared tier.

        The local store keeps the full atomicity/raciness contract of
        the base class; the shared echo may fail (mount gone, quota,
        permissions) without failing the caller — the artifact is
        durable locally and the failure is tallied, so sharding degrades
        to per-shard caching rather than erroring jobs.
        """
        super().store_digest(kind, digest, value)
        if self.shared is not None:
            try:
                self.shared.store_digest(kind, digest, value)
                self.tiers["shared"].stores += 1
            except OSError:
                self.tiers["shared"].errors += 1
        self.tiers["local"].stores += 1
        return digest

    # -- promotion ------------------------------------------------------

    def _promote_local(
        self, kind: str, digest: str, value: Any, source: str
    ) -> None:
        """Copy a slower tier's artifact into the local tier."""
        try:
            super().store_digest(kind, digest, value)
        except OSError:
            self.tiers["local"].errors += 1
            return
        self.tiers[source].promotes += 1

    def _fetch_and_promote(self, kind: str, digest: str) -> Optional[Any]:
        """Ask each peer for a fetchable artifact; promote on success.

        Returns the artifact value, or ``None`` when no peer answered
        (not configured, wrong kind, down, or a genuine miss) — the
        caller computes locally, which is the whole fallback contract.
        """
        if kind not in self.peer_kinds or not self.peers:
            return None
        for peer in self.peers:
            url = f"{peer}/v1/results/{digest}"
            try:
                raw = self._fetch(url, self.peer_timeout)
            except Exception:
                self.tiers["peer"].errors += 1
                continue
            if raw is None:
                continue
            value = raw.decode("utf-8") if isinstance(raw, bytes) else raw
            self.tiers["peer"].hits += 1
            self._promote_local(kind, digest, value, "peer")
            if self.shared is not None:
                try:
                    self.shared.store_digest(kind, digest, value)
                    self.tiers["shared"].stores += 1
                except OSError:
                    self.tiers["shared"].errors += 1
            return value
        self.tiers["peer"].misses += 1
        return None

    # -- reporting ------------------------------------------------------

    def tier_stats(self) -> dict:
        """The ``tiered`` section of ``/v1/stats`` (stable key order)."""
        return {
            "local": self.tiers["local"].as_dict(),
            "shared": self.tiers["shared"].as_dict(),
            "peer": self.tiers["peer"].as_dict(),
            "shared_root": (
                str(self.shared.root) if self.shared is not None else None
            ),
            "peer_count": len(self.peers),
        }
