"""Batching dispatcher: turns queued service jobs into simulation batches.

The dispatcher sits between the :class:`~repro.service.queue.JobQueue`
and the compute core, and is where the service earns its keep:

* **Request normalization** — an incoming payload is validated against
  the component registries (sweep axes, workloads, experiments,
  profiles) and lowered to a fully explicit, canonical request dict.
  Normalization resolves defaults (axis value sets, the profile's
  workload suite), so two ways of writing the same experiment share one
  identity — the foundation for every dedup layer below.
* **Dedup, three layers** — (1) the queue coalesces a submission onto an
  identical live job; (2) a submission whose *result* is already in the
  content-addressed artifact store completes instantly without touching
  the execution pipeline (``source == "cache"``); (3) within a batch,
  :func:`repro.experiments.parallel.execute` deduplicates shared cells
  by value signature, so eight sweeps over overlapping grids cost one
  union of cells.
* **Batch coalescing** — queued jobs are drained fairly (round-robin
  per client), grouped by compatible profile, and their cells fused
  into one worker-pool batch.  The pool width (``jobs``) and the batch
  size (``max_batch``) bound each batch's concurrency budget.
* **Sharded multi-worker dispatch** — ``workers`` drain slots call
  :meth:`Dispatcher.drain_once` concurrently.  Claiming is atomic (one
  dispatcher-wide lock covers the fair drain *and* the
  ``queued -> running`` transitions), so two workers never pull the
  same job; execution runs outside the lock, so while one worker's
  batch executes, the next worker is already grouping and submitting
  the following batch — the batch-overlapping drain that keeps the
  pool busy.  Cells shared *across* concurrently executing batches are
  deduplicated by an in-flight registry (first claimant computes, the
  others wait and then assemble from the artifact the atomic cache
  store published), so concurrent workers computing the same cell
  remain byte-identical and compute-once.
* **Assembly from the warmed context** — after the fused batch runs,
  each job's result table is assembled purely from the context's memo
  layer (see :func:`repro.experiments.sweep.assemble_sweep`), rendered
  with the same deterministic manifest writer the CLI uses, and stored
  in the artifact cache under the request's key.  A service response is
  therefore byte-identical to the equivalent local ``repro sweep`` /
  figure run — the property the end-to-end tests pin.
"""

from __future__ import annotations

import math
import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.experiments import EXPERIMENTS
from repro.experiments.cache import ArtifactCache, CacheCounters, fingerprint
from repro.experiments.export import render_manifest
from repro.experiments.parallel import Job, execute
from repro.experiments.runner import ExperimentContext, ExperimentProfile
from repro.experiments.sweep import (
    SWEEP_AXES,
    adhoc_spec,
    assemble_sweep,
    sweep_title,
)
from repro.registry import UnknownComponentError
from repro.service.execution import WarmPool, execute_contained, warm_execute
from repro.service.routing import ConsistentHashRing
from repro.service.tiered import TieredArtifactCache
from repro.service.queue import (
    JobQueue,
    JobState,
    QueueFullError,
    QuotaExceededError,
    ServiceJob,
    TransitionError,
)
from repro.workloads.suite import get_workload

__all__ = [
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_WAIT_TIMEOUT",
    "BreakerOpenError",
    "Dispatcher",
    "DispatcherStats",
    "RequestError",
    "normalize_request",
    "request_digest",
    "sweep_title",
]

#: Artifact kind under which rendered job results are stored.
RESULT_KIND = "service"

#: Default POST body cap (the server's transport-level admission bound).
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: In-flight wait deadline when no ``--job-timeout`` is configured.
#: With a timeout configured, waits use it instead: a wait on a foreign
#: cell should expire on the same clock the cell's own execution would.
DEFAULT_WAIT_TIMEOUT = 600.0


class RequestError(ValueError):
    """A submitted payload failed validation (HTTP 400)."""


def _normalize_value(value):
    """Collapse numerically equal JSON spellings of one axis value.

    JSON has one number type, so ``1`` and ``1.0`` are the same request
    — but ``str(1.0)`` is ``'1.0'``, which either fails an int axis's
    parse or (for float axes) produces a distinct canonical rendering
    that escapes every dedup layer.  Integral floats become ints here,
    *before* ``axis.parse``, so both spellings normalize to one request
    dict, one fingerprint, one computation.  Bools pass through
    untouched (``bool`` is an ``int`` subclass, not a ``float``).
    """
    if (isinstance(value, float) and value.is_integer()
            and math.isfinite(value)):
        return int(value)
    return value


class BreakerOpenError(RuntimeError):
    """New work refused: the pool circuit breaker is open (HTTP 503).

    Raised by :meth:`Dispatcher.submit` while the breaker's cooldown is
    running; ``retry_after`` is the remaining cooldown in whole seconds
    (the server forwards it as the ``Retry-After`` header).
    """

    def __init__(self, message: str, *, retry_after: int) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def normalize_request(payload: dict) -> dict:
    """Validate and canonicalize a submitted request payload.

    Returns a fully explicit request dict: defaults are resolved, names
    are normalized through their registries, and values are parsed to
    their axis types — so payload identity equals experiment identity.
    Raises :class:`RequestError` with a message naming valid choices.
    """
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    kind = payload.get("kind", "sweep")
    try:
        profile = ExperimentProfile.by_name(payload.get("profile", "quick"))
    except ValueError as error:
        raise RequestError(str(error)) from None

    if kind == "figure":
        target = payload.get("target")
        if not isinstance(target, str) or target not in EXPERIMENTS:
            raise RequestError(
                f"unknown figure target {target!r}; valid targets: "
                + ", ".join(EXPERIMENTS)
            )
        return {"kind": "figure", "target": target, "profile": profile.name}

    if kind != "sweep":
        raise RequestError(
            f"unknown request kind {kind!r}; valid kinds: sweep, figure"
        )
    axis_name = payload.get("axis")
    try:
        axis = SWEEP_AXES.get(axis_name or "")
    except UnknownComponentError as error:
        raise RequestError(str(error)) from None
    values = payload.get("values")
    if values is not None and not isinstance(values, (list, tuple)):
        raise RequestError("'values' must be a list of axis values")
    try:
        if values is None:
            parsed = list(axis.default_values(profile))
        else:
            parsed = [
                axis.parse(str(_normalize_value(value))) for value in values
            ]
    except UnknownComponentError as error:
        raise RequestError(str(error)) from None
    except ValueError as error:
        raise RequestError(f"bad value for axis {axis.name!r}: {error}") from None
    workloads = payload.get("workloads")
    if workloads is not None and not isinstance(workloads, (list, tuple)):
        raise RequestError("'workloads' must be a list of workload names")
    try:
        if workloads is None:
            resolved_workloads = list(profile.workloads)
        else:
            resolved_workloads = [
                get_workload(str(name)).name for name in workloads
            ]
    except UnknownComponentError as error:
        raise RequestError(str(error)) from None
    return {
        "kind": "sweep",
        "axis": axis.name,
        "values": parsed,
        "workloads": resolved_workloads,
        "profile": profile.name,
    }


def _result_key(request: dict) -> tuple:
    """The artifact-cache key tuple a request's rendered result lives under."""
    return (request,)


def request_digest(request: dict) -> str:
    """The shard-routing fingerprint of a *normalized* request.

    Deliberately version-free (unlike artifact digests, which fold in
    ``code_version``): a code change must invalidate cached artifacts,
    but it must *not* reshuffle which shard owns a request — placement
    stability is what keeps warm caches and in-flight dedup valid
    across deploys.  Every spelling that normalizes to the same request
    dict shares this fingerprint, so it also shares a shard.
    """
    return fingerprint("route", request)


def _spec_for(request: dict, profile: ExperimentProfile):
    """The SweepSpec for a normalized sweep request (CLI-identical path)."""
    return adhoc_spec(
        request["axis"],
        profile,
        values=[str(value) for value in request["values"]],
        workloads=request["workloads"],
    )


@dataclass
class DispatcherStats:
    """Cumulative dispatcher-side tallies, served by ``GET /v1/stats``."""

    submissions: int = 0
    coalesced: int = 0
    jobs_from_cache: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    batches: int = 0
    batched_jobs: int = 0
    cells_executed: int = 0
    #: Cells skipped because another worker's in-flight batch owned them.
    cells_deduped_inflight: int = 0
    #: Dependency artifacts (traces, binaries) a batch waited on instead
    #: of racing another batch that was already computing them.
    deps_deduped_inflight: int = 0
    #: Batches that started while at least one other batch was executing.
    overlapped_batches: int = 0
    #: Submissions this shard accepted although the consistent-hash ring
    #: assigns their fingerprint to a different shard (a client that
    #: skipped routing).  Accepted anyway — correctness never depends on
    #: placement, only dedup convergence does — but a growing count
    #: means clients are defeating cross-shard dedup.
    misrouted: int = 0
    #: Submissions refused at admission (429 quota / 503 depth / 413 size).
    rejected_quota: int = 0
    rejected_depth: int = 0
    rejected_size: int = 0
    #: Containment tallies: bounded retries granted, jobs quarantined,
    #: deadline expiries (cell executions *and* in-flight waits), batch
    #: bisection rounds, and worker-pool deaths observed.
    retries: int = 0
    quarantined: int = 0
    timeouts: int = 0
    bisections: int = 0
    pool_crashes: int = 0
    busy_seconds: float = 0.0
    started_at: float = field(default_factory=time.monotonic)

    def utilization(self) -> float:
        """Busy worker-seconds per wall second.

        With ``workers > 1`` this is an *aggregate* across drain slots
        and can exceed 1.0 — e.g. ~3.5 means three to four batches were
        executing concurrently on average.
        """
        elapsed = time.monotonic() - self.started_at
        return self.busy_seconds / elapsed if elapsed > 0 else 0.0


class _InflightCells:
    """Cross-worker registry of cells currently being computed.

    :meth:`claim` partitions a batch's deduplicated cells into *owned*
    (this worker registered them first and must compute them) and
    *foreign* (another worker's executing batch already owns them —
    skip computing, then :meth:`threading.Event.wait` until the owner
    finishes and read the artifact its atomic cache store published).

    The claim covers the full *dependency closure*: an owned ``timed``
    cell registers the trace and binary cells it will materialize on a
    cache miss, even though those are never enumerated in the batch's
    job list — so two concurrent batches of distinct timed cells over
    one workload no longer race the shared trace artifact (each
    dependency is computed by exactly one batch; the others wait on its
    event and then read the artifact from the atomic store).  Because
    every claim is one atomic pass under the registry lock, a batch can
    only ever wait on batches that claimed *before* it — the wait-for
    graph follows claim order and cannot cycle.

    The registry only ever *narrows* work: if an owner dies without
    storing, the waiter's deadline expires, it reclaims the signature
    (:meth:`reclaim`), and recomputes — so correctness never depends on the
    registry, only compute-once does.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: Dict[str, threading.Event] = {}

    def claim(
        self, cells: List[Job]
    ) -> Tuple[List[Job], List[str], List["_Wait"], List["_Wait"]]:
        """Returns ``(owned, owned_sigs, foreign, dep_waits)``.

        ``owned`` are enumerated cells this batch must execute;
        ``owned_sigs`` every signature registered (cells *and* their
        dependency closure) that :meth:`release` must clear; ``foreign``
        waits for enumerated cells another batch owns (await before
        assembling); ``dep_waits`` waits for dependency cells another
        batch owns (await before executing, so the owned cells' implicit
        dependency lookups hit the artifact the owner stored).  Each
        wait carries the cell and signature so an expired wait can be
        reclaimed and recomputed by the waiter.
        """
        owned: List[Job] = []
        owned_sigs: List[str] = []
        foreign: List[_Wait] = []
        dep_waits: List[_Wait] = []
        seen = set()
        with self._lock:
            for cell in cells:
                signature = cell.signature()
                if signature in seen:
                    continue
                seen.add(signature)
                event = self._events.get(signature)
                if event is None:
                    self._events[signature] = threading.Event()
                    owned.append(cell)
                    owned_sigs.append(signature)
                else:
                    foreign.append(_Wait(cell, signature, event))
            # Second pass: the owned cells' dependency closures.  Only
            # owned cells matter — a foreign cell's dependencies are the
            # owning batch's business.
            for cell in owned:
                for dependency in cell.dependencies():
                    signature = dependency.signature()
                    if signature in seen:
                        continue
                    seen.add(signature)
                    event = self._events.get(signature)
                    if event is None:
                        self._events[signature] = threading.Event()
                        owned_sigs.append(signature)
                    else:
                        dep_waits.append(_Wait(dependency, signature, event))
        return owned, owned_sigs, foreign, dep_waits

    def reclaim(self, signature: str, stale: threading.Event) -> bool:
        """Take over a claim whose owner blew the wait deadline.

        Atomic compare-and-swap: succeeds only while ``signature`` is
        still registered to the ``stale`` event (the presumed-dead
        owner).  The reclaimer installs a fresh event — later claimants
        wait on *it* — and must :meth:`release` the signature when its
        own recompute finishes.  Returns ``False`` when the owner
        finished (or another waiter reclaimed) in the meantime; the
        caller recomputes anyway — against a finished owner that is one
        cache probe, against a racing reclaimer the atomic artifact
        store makes the double-compute byte-safe.
        """
        with self._lock:
            if self._events.get(signature) is not stale:
                return False
            self._events[signature] = threading.Event()
            return True

    def release(self, signatures: List[str]) -> None:
        with self._lock:
            for signature in signatures:
                event = self._events.pop(signature, None)
                if event is not None:
                    event.set()


@dataclass
class _Wait:
    """One foreign-owned signature a batch must await (or reclaim)."""

    cell: Job
    signature: str
    event: threading.Event


class Dispatcher:
    """Drains the queue into fused, bounded worker-pool batches.

    ``workers`` is how many drain slots call :meth:`drain_once`
    concurrently (the server hosts one thread per slot); the dispatcher
    itself only serializes the claim phase and keeps its tallies
    coherent — execution is the callers' concurrency.
    """

    def __init__(
        self,
        queue: JobQueue,
        cache_root,
        *,
        jobs: int = 1,
        max_batch: int = 8,
        workers: int = 1,
        quota: Optional[int] = None,
        max_queue_depth: Optional[int] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        max_attempts: int = 3,
        job_timeout: Optional[float] = None,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
        warm_pool: bool = False,
        cache: Optional[ArtifactCache] = None,
        shard_index: int = 0,
        shard_count: int = 1,
        shard_urls: Tuple[str, ...] = (),
    ) -> None:
        self.queue = queue
        #: Observability: the queue owns the event bus + tracer (its
        #: ``_apply`` is the single emission path); the dispatcher
        #: shares them to publish batch-level records and stamp the
        #: execution-phase spans (batched/executed/assembled/cache_hit).
        self.events = queue.events
        self.tracer = queue.tracer
        #: The artifact store.  A tiered cache even when no shared dir or
        #: peers are configured: the tier tallies then just mirror the
        #: local counters, and ``/v1/stats`` keeps one schema either way.
        self.cache = (
            cache if cache is not None else TieredArtifactCache(cache_root)
        )
        #: Shard identity (``repro serve --shard K/N --peers ...``).
        #: ``shard_urls`` is all N announced base URLs in index order —
        #: the ring every client routes over — and ``shard_urls[K]`` is
        #: this process.  Unsharded servers keep the 0/1 defaults and no
        #: ring.
        self.shard_index = int(shard_index)
        self.shard_count = max(1, int(shard_count))
        self.shard_urls = tuple(str(u).rstrip("/") for u in shard_urls)
        self._ring = (
            ConsistentHashRing(self.shard_urls)
            if self.shard_count > 1 and self.shard_urls else None
        )
        self.jobs = max(1, jobs)
        self.max_batch = max(1, max_batch)
        self.workers = max(1, workers)
        #: Persistent pre-warmed executor pool (None = pool-per-batch).
        #: Spawned lazily on first use or eagerly via ``warm_up()``;
        #: torn down and rebuilt on crash/hang, shut down with the
        #: server.  Sized ``jobs * workers``: every concurrent drain
        #: slot can fan its batch across ``jobs`` warm processes
        #: without queueing behind another slot's cells.
        self.warm_pool: Optional[WarmPool] = (
            WarmPool(
                self.jobs * self.workers,
                cache_root=str(self.cache.root),
                mp_context=multiprocessing.get_context("spawn"),
                on_event=self.events.publish,
            )
            if warm_pool else None
        )
        #: Failure containment: how many failed executions a job gets
        #: before quarantine, and the per-cell wall-clock deadline.
        #: ``job_timeout`` of ``None``/0 disables deadline enforcement —
        #: batches run on the legacy fast path (in-process or
        #: ``multiprocessing.Pool``) with no containment overhead.
        self.max_attempts = max(1, int(max_attempts))
        self.job_timeout = float(job_timeout) if job_timeout else None
        #: Deadline for in-flight waits on cells another batch owns:
        #: the configured job deadline when one is set, else a generous
        #: constant — either way an expired wait reclaims + recomputes,
        #: never proceeds without a result.
        self.wait_timeout = self.job_timeout or DEFAULT_WAIT_TIMEOUT
        #: How long a RUNNING claim is trusted before lease reclaim.
        #: A batch's worst case is ~log2(max_batch) bisection rounds,
        #: each bounded by the deadline, plus pool spawns — 8x the
        #: deadline + a minute is generously past that, so a live slow
        #: batch is practically never reclaimed out from under its
        #: worker (and a false reclaim is safe, just wasteful: the
        #: late verdict loses its transition race and is dropped).
        self.lease_seconds = (
            None if self.job_timeout is None
            else self.job_timeout * 8 + 60.0
        )
        #: Circuit breaker: after ``breaker_threshold`` consecutive
        #: executions with a pool crash, pause draining and refuse
        #: non-cached submissions for ``breaker_cooldown`` seconds.
        self.breaker_threshold = max(1, int(breaker_threshold))
        self.breaker_cooldown = float(breaker_cooldown)
        self._breaker_failures = 0
        self._breaker_open_until = 0.0
        #: Admission bounds (``None``/0 = unlimited): max live jobs per
        #: client id, max live jobs total, max POST body size.  The
        #: queue enforces the first two at submit; the server enforces
        #: the body cap at the transport layer and reports through
        #: :meth:`reject_size`.
        self.quota = quota or None
        self.max_queue_depth = max_queue_depth or None
        self.max_body_bytes = max_body_bytes
        self.stats = DispatcherStats()
        #: Serializes the fair-drain + claim phase across drain workers
        #: so two slots never mark the same job running.
        self._claim_lock = threading.Lock()
        #: Guards the stats counters (mutated from every drain slot and
        #: the event-loop submit path concurrently).
        self._stats_lock = threading.Lock()
        #: Serializes counter accumulation + flush (snapshot/subtract in
        #: flush_counters is not safe against a concurrent flush).
        self._counters_lock = threading.Lock()
        self._inflight = _InflightCells()
        #: Drain slots currently executing a batch (overlap gauge).
        self._active_batches = 0
        #: Cells currently inside a worker pool across all drain slots
        #: (the dashboard's in-flight gauge).
        self._inflight_cells = 0
        #: Wall-clock birth for ``/v1/stats`` (`started_at`); the
        #: monotonic twin lives in ``DispatcherStats`` for utilization.
        self._started_wall = time.time()
        #: Cumulative cache tallies for this server process; survives the
        #: per-batch flush_counters() that drains cache.counters into the
        #: on-disk lifetime file.
        self._session_counters: Dict[str, CacheCounters] = {}

    # -- submission ------------------------------------------------------

    def submit(self, payload: dict, client: str) -> ServiceJob:
        """Normalize, dedup, and enqueue one request.

        A request whose rendered result is already in the artifact store
        is completed on the spot — the instant-response path that makes a
        warm resubmission cost one path probe and zero simulation.  This
        runs on the caller's thread (the server's event loop), so it
        only probes artifact existence — it never unpickles anything.
        The journal append it performs is a deliberate synchronous
        fsync: the 202 receipt promises durability, and serializing
        submits behind the (single-worker) batch executor would be far
        worse than a short disk wait.
        A coalesced hit on a done job re-checks that the job's artifact
        still exists: if a cache gc evicted it, the job is requeued for
        recomputation instead of pointing clients at a permanent 404.

        Admission control: a new job that would push ``client`` past
        ``quota`` live jobs raises
        :class:`~repro.service.queue.QuotaExceededError`; one that would
        push the queue past ``max_queue_depth`` raises
        :class:`~repro.service.queue.QueueFullError`.  Coalescing
        submissions and requests whose rendered result already sits in
        the artifact store are always admitted — both cost one journal
        line and zero simulation, so refusing them would throttle
        exactly the traffic the service handles for free.
        """
        request = normalize_request(payload)
        with self._stats_lock:
            self.stats.submissions += 1
        if (self._ring is not None
                and self._ring.owner(request_digest(request))
                != self.shard_urls[self.shard_index]):
            with self._stats_lock:
                self.stats.misrouted += 1
        digest = self.cache.digest(RESULT_KIND, _result_key(request))
        # readable_digest, not the pure path probe: a torn artifact is
        # healed (unlinked + counted) and the job recomputed instead of
        # instant-completing onto a result_key every GET will 500 on.
        # On a tiered cache this also walks the shared tier and — for a
        # cold key on a non-owner shard — asks peers, which is exactly
        # how shard B instant-completes from shard A's work.
        cached = self.cache.readable_digest(RESULT_KIND, digest)
        if not cached:
            # While the breaker is open, new *work* is refused (503 +
            # Retry-After); cache-backed requests still sail — they cost
            # zero pool time, which is the resource being protected.
            open_for = self.breaker_open_for()
            if open_for > 0:
                raise BreakerOpenError(
                    "not accepting new work: the worker-pool circuit "
                    f"breaker is open after {self.breaker_threshold} "
                    "consecutive pool crashes; retry in "
                    f"{math.ceil(open_for)}s",
                    retry_after=int(math.ceil(open_for)),
                )
        try:
            job, created = self.queue.submit(
                request, client,
                quota=self.quota, max_depth=self.max_queue_depth,
                exempt=cached,
            )
        except QuotaExceededError:
            with self._stats_lock:
                self.stats.rejected_quota += 1
            raise
        except QueueFullError:
            with self._stats_lock:
                self.stats.rejected_depth += 1
            raise
        if not created:
            with self._stats_lock:
                self.stats.coalesced += 1
            if (job.state is JobState.DONE
                    and not (job.result_key
                             and self.cache.readable_digest(
                                 RESULT_KIND, job.result_key))):
                job = self.queue.requeue_lost(job.id)
            return job
        if cached:
            try:
                # Short-circuit span: queued -> cache_hit -> done, with
                # no claim/batch/execute stages in between.
                self.tracer.stamp(job.id, "cache_hit")
                job = self.queue.mark_done(
                    job.id, result_key=digest, source="cache"
                )
                with self._stats_lock:
                    self.stats.jobs_from_cache += 1
            except TransitionError:
                # A dispatcher worker drained and finished this job
                # between our queue.submit and the existence probe; its
                # result is the same bytes, so just serve its record.
                job = self.queue.get(job.id)
        return job

    def reject_size(self) -> None:
        """Tally one oversize-body refusal (the server's 413 path)."""
        with self._stats_lock:
            self.stats.rejected_size += 1

    def compact(self, retain_terminal: Optional[int] = None) -> dict:
        """Compact the queue journal now (``POST /v1/compact``)."""
        report = self.queue.compact(retain_terminal=retain_terminal)
        return {
            "generation": report.generation,
            "jobs_kept": report.jobs_kept,
            "jobs_dropped": report.jobs_dropped,
            "events_folded": report.events_folded,
        }

    def load_result(self, result_key: str) -> Optional[str]:
        """The rendered JSON document stored under an artifact digest.

        Serves from the *directory* tiers only — never a peer fetch.
        The ``/v1/results`` handler calls this, and that endpoint is
        itself the peer-fetch transport: if serving it could consult
        peers, two shards missing the same digest would request it from
        each other in an unbounded ping-pong.
        """
        if isinstance(self.cache, TieredArtifactCache):
            hit, value = self.cache.load_digest(
                RESULT_KIND, result_key, allow_peer=False
            )
        else:
            hit, value = self.cache.load_digest(RESULT_KIND, result_key)
        return value if hit else None

    # -- execution -------------------------------------------------------

    def _cells_for(
        self, job: ServiceJob, profile: ExperimentProfile
    ) -> List[Job]:
        request = job.request
        if request["kind"] == "figure":
            module, _ = EXPERIMENTS[request["target"]]
            return list(module.jobs(profile))
        return _spec_for(request, profile).jobs(profile)

    def _assemble(
        self, job: ServiceJob, profile: ExperimentProfile,
        context: ExperimentContext,
    ) -> str:
        """Render one job's manifest from the warmed context (no compute)."""
        request = job.request
        if request["kind"] == "figure":
            target = request["target"]
            module, _ = EXPERIMENTS[target]
            result = module.run(profile, context)
            return render_manifest(profile.name, {target: result})
        spec = _spec_for(request, profile)
        result = assemble_sweep(
            spec, profile, context,
            title=sweep_title(request["axis"], profile),
        )
        return render_manifest(profile.name, {spec.name: result})

    def _claim_batch(self) -> List[ServiceJob]:
        """Atomically claim one compatible job group (queued -> running).

        The claim lock makes fair-drain + grouping + the
        ``queued -> running`` transitions one indivisible step across
        drain workers: two concurrent slots can never pull the same job,
        and a slot claiming jobs of one profile leaves other profiles'
        jobs queued for the next slot — the sharding rule.
        """
        with self._claim_lock:
            drained = self.queue.pending_fair(self.max_batch)
            if not drained:
                return []
            profile_name = drained[0].request["profile"]
            claimed: List[ServiceJob] = []
            for job in drained:
                if job.request["profile"] != profile_name:
                    continue
                try:
                    self.queue.mark_running(
                        job.id, lease_seconds=self.lease_seconds
                    )
                except TransitionError:
                    # The submit thread instant-completed this job from
                    # the cache after the fair drain picked it.
                    continue
                claimed.append(job)
            return claimed

    def drain_once(self) -> int:
        """Claim and process one fused batch; returns jobs handled.

        Drains up to ``max_batch`` jobs fairly, keeps the ones sharing
        the head job's profile (the compatibility rule — cells from
        different profiles never share artifacts, so fusing them buys
        nothing), fuses their cells into a single deduplicated
        :func:`~repro.experiments.parallel.execute` batch, then
        assembles and stores each job's result individually.  Safe to
        call from ``workers`` threads concurrently: claiming is atomic,
        execution overlaps.
        """
        # Auto-compaction lives here, on the drain workers — a snapshot
        # write is multiple fsyncs and must never run on the submit
        # path's event loop.  O(1) check when below threshold.
        self.queue.maybe_compact()
        self._reclaim_expired_leases()
        if self.breaker_open_for() > 0:
            # Repeated pool crashes: spawning more pools would burn CPU
            # re-proving the same failure.  Drain pauses until the
            # cooldown passes; submissions get 503 + Retry-After.
            return 0
        if not self.queue.has_pending():  # O(1) idle fast path
            return 0
        group = self._claim_batch()
        if not group:
            return 0
        started = time.monotonic()
        profile = ExperimentProfile.by_name(group[0].request["profile"])
        self.events.publish({
            "event": "batch",
            "jobs": len(group),
            "profile": profile.name,
        })
        # One fresh context per batch: its in-memory memo layer holds
        # exactly the batch's cells and is dropped afterwards, so a
        # long-lived server's footprint is bounded by its largest batch
        # (the shared disk cache keeps cross-batch warmth).
        context = ExperimentContext(profile, cache=self.cache, jobs=self.jobs)

        with self._stats_lock:
            if self._active_batches > 0:
                self.stats.overlapped_batches += 1
            self._active_batches += 1
        try:
            self._run_batch(group, profile, context)
        except Exception:
            # Something escaped the per-job handling (a journal I/O
            # failure, most likely).  RUNNING is a state nothing
            # re-drains, so demote what we marked — best effort; if the
            # journal is truly dead, restart replay demotes instead —
            # then let the drain loop log and back off.
            for job in group:
                current = self.queue.get(job.id)
                if current is not None and current.state is JobState.RUNNING:
                    try:
                        self.queue.demote(job.id)
                    except Exception:
                        pass
            raise
        finally:
            with self._stats_lock:
                self._active_batches -= 1
                self.stats.busy_seconds += time.monotonic() - started
            self.events.publish({
                "event": "batch_done",
                "jobs": len(group),
                "duration_ms": round((time.monotonic() - started) * 1000, 3),
            })
        try:
            with self._counters_lock:
                self._accumulate_session_counters()
                self.cache.flush_counters()
        except OSError:
            pass  # tallies stay in memory for the next flush attempt
        return len(group)

    def _run_batch(self, group, profile: ExperimentProfile,
                   context: ExperimentContext) -> None:
        """Fuse, execute, and assemble one claimed job group.

        Execution failures are *contained*: a cell that hangs, crashes
        the pool, or raises marks only the jobs that enumerate it, and
        those go through the bounded retry/quarantine policy
        (:meth:`_contain`) — their healthy batchmates assemble and
        complete normally.  Deterministic per-job failures (cell
        enumeration, assembly) still fail the job directly: re-running
        identical bytes cannot change a deterministic outcome.
        """
        cells: List[Job] = []
        runnable: List[Tuple[ServiceJob, List[Job]]] = []
        for job in group:
            try:
                job_cells = self._cells_for(job, profile)
            except Exception as error:  # bad request that survived normalize
                self._finish(job, error=f"{type(error).__name__}: {error}")
                continue
            runnable.append((job, job_cells))
            cells.extend(job_cells)
            self.tracer.stamp(job.id, "batched", cells=len(job_cells))

        #: signature -> reason, for every cell without a usable result.
        failed_cells: Dict[str, str] = {}
        if runnable:
            attempted = len(runnable)
            # Cells another worker's in-flight batch owns are computed
            # exactly once there; this batch executes only the cells it
            # claimed first, then waits for the foreign ones below.
            # The claim also covers the owned cells' dependency closure
            # (traces, binaries), so dependency artifacts another batch
            # is already materializing are waited on — not raced.
            owned, owned_sigs, foreign, dep_waits = \
                self._inflight.claim(cells)
            with self._stats_lock:
                self.stats.deps_deduped_inflight += len(dep_waits)
            # Before executing: the owned cells' implicit dependency
            # lookups must find the artifact the owning batch's atomic
            # store publishes.  Deadline-driven — an expired wait means
            # the owner is presumed dead, so reclaim and compute the
            # dependency explicitly in this batch.
            owned, owned_sigs = self._await_or_reclaim(
                dep_waits, owned, owned_sigs
            )
            try:
                executed = self._execute_cells(owned, context, failed_cells)
            finally:
                self._inflight.release(owned_sigs)
            # Foreign enumerated cells: the owner's store must land
            # before assembly reads it.  Same expiry contract — reclaim
            # and recompute, never proceed without a verdict.
            recovered, recovered_sigs = self._await_or_reclaim(foreign)
            if recovered:
                try:
                    executed += self._execute_cells(
                        recovered, context, failed_cells
                    )
                finally:
                    self._inflight.release(recovered_sigs)
            with self._stats_lock:
                self.stats.batches += 1
                self.stats.batched_jobs += attempted
                self.stats.cells_executed += executed
                self.stats.cells_deduped_inflight += len(foreign)
            for job, _ in runnable:
                self.tracer.stamp(job.id, "executed", batch_cells=executed)

        for job, job_cells in runnable:
            reason = next(
                (failed_cells[cell.signature()] for cell in job_cells
                 if cell.signature() in failed_cells),
                None,
            )
            if reason is not None:
                self._contain(job, reason)
                continue
            try:
                rendered = self._assemble(job, profile, context)
                digest = self.cache.store(
                    RESULT_KIND, _result_key(job.request), rendered
                )
                self.tracer.stamp(job.id, "assembled")
                self._finish(job, result_key=digest)
            except Exception as error:
                self._finish(job, error=f"{type(error).__name__}: {error}")

    def _await_or_reclaim(
        self,
        waits: List[_Wait],
        owned: Optional[List[Job]] = None,
        owned_sigs: Optional[List[str]] = None,
    ) -> Tuple[List[Job], List[str]]:
        """Await foreign-owned cells; expired waits become our work.

        Extends (and returns) ``owned``/``owned_sigs`` with every wait
        whose owner blew :attr:`wait_timeout`.  A successful reclaim
        also registers the signature under a fresh event (released by
        the caller after recompute); a lost reclaim race still adds the
        cell — recomputing is one cache probe if the owner actually
        finished, and the atomic store makes a true double-compute
        byte-safe.  Either way the batch never proceeds to execution or
        assembly with a cell in limbo.
        """
        owned = owned if owned is not None else []
        owned_sigs = owned_sigs if owned_sigs is not None else []
        for wait in waits:
            if wait.event.wait(timeout=self.wait_timeout):
                continue
            with self._stats_lock:
                self.stats.timeouts += 1
            if self._inflight.reclaim(wait.signature, wait.event):
                owned_sigs.append(wait.signature)
            owned.append(wait.cell)
        return owned, owned_sigs

    def _execute_cells(
        self,
        cells: List[Job],
        context: ExperimentContext,
        failed: Dict[str, str],
    ) -> int:
        """Execute one cell list, recording per-cell failures.

        With a job deadline configured, cells run on the contained
        executor (killable workers, per-cell deadlines, pool-crash
        bisection); its per-signature failures merge into ``failed``.
        Without one, the legacy fast path runs — but an execution-level
        exception now charges every cell instead of permanently failing
        every co-batched job, so the retry/quarantine policy bounds the
        damage either way.  Returns cells actually executed.
        """
        if not cells:
            return 0
        # spawn, not fork: this process runs an asyncio thread, and
        # forking a multi-threaded process can hand children locks held
        # mid-operation by the event loop.
        spawn = multiprocessing.get_context("spawn")
        with self._stats_lock:
            self._inflight_cells += len(cells)
        try:
            if self.job_timeout is not None:
                report = execute_contained(
                    cells, context, job_timeout=self.job_timeout,
                    mp_context=spawn, max_workers=self.jobs,
                    warm_pool=self.warm_pool,
                    observer=self.events.publish,
                )
                for signature, failure in report.failures.items():
                    failed[signature] = f"{failure.kind}: {failure.detail}"
                with self._stats_lock:
                    self.stats.timeouts += report.timeouts
                    self.stats.bisections += report.bisections
                    self.stats.pool_crashes += report.pool_crashes
                if report.executed or report.pool_crashes:
                    self._breaker_record(crashed=report.pool_crashes > 0)
                return report.executed
            try:
                if self.warm_pool is not None:
                    executed = warm_execute(cells, context, self.warm_pool)
                else:
                    executed = execute(cells, context, mp_context=spawn)
            except Exception as error:
                # The whole execution died under the batch (the spawn
                # pool, most likely).  Without deadlines there is no
                # telling which cell was the culprit, so charge them all
                # one attempt.
                self._breaker_record(crashed=True)
                reason = (
                    f"batch execution failed: {type(error).__name__}: {error}"
                )
                for cell in cells:
                    failed.setdefault(cell.signature(), reason)
                return 0
            self._breaker_record(crashed=False)
            return executed
        finally:
            with self._stats_lock:
                self._inflight_cells -= len(cells)

    def _contain(self, job: ServiceJob, reason: str) -> None:
        """Route one failed execution through the bounded retry budget.

        Below ``max_attempts`` failed executions the job is retried
        (``running -> queued``, one attempt charged); at the cap it is
        quarantined with the failure diagnostic.  A job no longer
        RUNNING lost a completion race — someone else delivered its
        result, which is success, not failure.
        """
        current = self.queue.get(job.id)
        if current is None or current.state is not JobState.RUNNING:
            return
        try:
            if current.attempts + 1 >= self.max_attempts:
                self.queue.quarantine(
                    job.id,
                    f"{reason} (attempt {current.attempts + 1} of "
                    f"{self.max_attempts})",
                )
                with self._stats_lock:
                    self.stats.quarantined += 1
            else:
                self.queue.retry(job.id)
                with self._stats_lock:
                    self.stats.retries += 1
        except (TransitionError, KeyError):
            pass

    def _reclaim_expired_leases(self) -> None:
        """Heal RUNNING jobs whose lease deadline passed.

        A drain slot that died mid-batch (or a batch wedged past any
        reasonable runtime) leaves its jobs RUNNING — a state nothing
        re-drains.  Expired leases route through the same
        retry/quarantine policy as any other failed execution, so a
        repeatedly-wedging job still converges to quarantine.
        """
        if self.lease_seconds is None:
            return
        for job in self.queue.expired_leases():
            self._contain(
                job,
                f"lease expired: no verdict within "
                f"{self.lease_seconds:g}s (worker presumed dead)",
            )

    def _breaker_record(self, *, crashed: bool) -> None:
        """Feed one execution's pool-health verdict to the breaker."""
        with self._stats_lock:
            if not crashed:
                self._breaker_failures = 0
                return
            self._breaker_failures += 1
            if self._breaker_failures >= self.breaker_threshold:
                self._breaker_open_until = (
                    time.monotonic() + self.breaker_cooldown
                )

    def breaker_open_for(self) -> float:
        """Seconds of cooldown remaining (0.0 = breaker closed).

        After the cooldown the breaker is half-open: one batch drains
        as a trial; a crash-free execution resets the failure count, a
        crashing one re-opens immediately (the consecutive count is
        still at threshold).
        """
        with self._stats_lock:
            return max(0.0, self._breaker_open_until - time.monotonic())

    def idle(self) -> bool:
        """True when no drain slot is executing a batch (drain gate)."""
        with self._stats_lock:
            return self._active_batches == 0

    def _accumulate_session_counters(self) -> None:
        """Fold the about-to-be-flushed tallies into the session totals."""
        for kind, counter in list(self.cache.counters.items()):
            slot = self._session_counters.setdefault(kind, CacheCounters())
            slot.hits += counter.hits
            slot.misses += counter.misses
            slot.stores += counter.stores
            slot.corrupt += counter.corrupt

    def _finish(self, job: ServiceJob, *, result_key: str = None,
                error: str = None) -> None:
        """Complete or fail a job, tolerating completion races.

        A submit-thread instant-cache hit can finish a job between this
        batch's ``mark_running`` and here; the resulting
        :class:`TransitionError` means someone else already delivered
        the (identical) result, which is success, not failure.
        """
        try:
            if error is None:
                self.queue.mark_done(
                    job.id, result_key=result_key, source="computed"
                )
                with self._stats_lock:
                    self.stats.jobs_completed += 1
            else:
                self.queue.mark_failed(job.id, error)
                with self._stats_lock:
                    self.stats.jobs_failed += 1
        except TransitionError:
            pass

    # -- reporting -------------------------------------------------------

    def warm_up(self) -> None:
        """Eagerly spawn the warm worker pool (no-op when disabled).

        Called by the server at startup so the first batch never pays
        interpreter spin-up; safe to call repeatedly.
        """
        if self.warm_pool is not None:
            self.warm_pool.ensure()

    def shutdown_pool(self) -> None:
        """Tear down the warm pool (no-op when disabled)."""
        if self.warm_pool is not None:
            self.warm_pool.shutdown()

    def snapshot(self) -> dict:
        """The ``GET /v1/stats`` document (deterministic key order).

        Runs on the event-loop thread while the dispatcher thread
        mutates the counter dicts; ``list()`` materializes the items
        atomically (a single C-level step under the GIL) before any
        Python-level iteration, so concurrent inserts cannot perturb it.
        The ``session`` section is cumulative for this server process:
        the per-batch flush into the on-disk lifetime file does not
        zero it.
        """
        merged: Dict[str, CacheCounters] = {}
        for source in (self._session_counters, self.cache.counters):
            for kind, c in list(source.items()):
                slot = merged.setdefault(kind, CacheCounters())
                slot.hits += c.hits
                slot.misses += c.misses
                slot.stores += c.stores
                slot.corrupt += c.corrupt
        cache_counters = {
            kind: {
                "hits": c.hits, "misses": c.misses,
                "stores": c.stores, "corrupt": c.corrupt,
            }
            for kind, c in sorted(merged.items())
        }
        events = self.events.stats()
        events.update(self.tracer.stats())
        return {
            #: Bumped whenever a section or key is added/renamed, so
            #: monitoring consumers can gate on it.  The pinned schema
            #: test asserts the exact key set at each version.
            "schema_version": 3,
            "started_at": round(self._started_wall, 3),
            "uptime_seconds": round(time.time() - self._started_wall, 3),
            "queue": {
                "depth": self.queue.depth(),
                "states": self.queue.state_counts(),
                "compaction": self.queue.compaction_stats(),
            },
            "dispatcher": {
                "submissions": self.stats.submissions,
                "coalesced": self.stats.coalesced,
                "jobs_from_cache": self.stats.jobs_from_cache,
                "jobs_completed": self.stats.jobs_completed,
                "jobs_failed": self.stats.jobs_failed,
                "batches": self.stats.batches,
                "batched_jobs": self.stats.batched_jobs,
                "cells_executed": self.stats.cells_executed,
                "cells_deduped_inflight": self.stats.cells_deduped_inflight,
                "deps_deduped_inflight": self.stats.deps_deduped_inflight,
                "overlapped_batches": self.stats.overlapped_batches,
            },
            "shard": {
                "index": self.shard_index,
                "count": self.shard_count,
                "url": (
                    self.shard_urls[self.shard_index]
                    if self._ring is not None else None
                ),
                "peers": len(self.shard_urls),
                "misrouted": self.stats.misrouted,
            },
            "admission": {
                "quota": self.quota,
                "max_queue_depth": self.max_queue_depth,
                "max_body_bytes": self.max_body_bytes,
                "rejected_quota": self.stats.rejected_quota,
                "rejected_depth": self.stats.rejected_depth,
                "rejected_size": self.stats.rejected_size,
            },
            "containment": {
                "max_attempts": self.max_attempts,
                "job_timeout": self.job_timeout,
                "retries": self.stats.retries,
                "quarantined": self.stats.quarantined,
                "timeouts": self.stats.timeouts,
                "bisections": self.stats.bisections,
                "pool_crashes": self.stats.pool_crashes,
                "breaker_open": self.breaker_open_for() > 0,
            },
            "cache": {
                "session": cache_counters,
                "lifetime": self.cache.persistent_counters(),
            },
            "tiered": (
                self.cache.tier_stats()
                if isinstance(self.cache, TieredArtifactCache) else None
            ),
            "workers": {
                "count": self.workers,
                "active": self._active_batches,
                "inflight_cells": self._inflight_cells,
                "pool_size": self.jobs,
                "max_batch": self.max_batch,
                "busy_seconds": round(self.stats.busy_seconds, 3),
                "utilization": round(self.stats.utilization(), 4),
                "warm_pool": (
                    self.warm_pool.snapshot()
                    if self.warm_pool is not None else None
                ),
            },
            "events": events,
        }
