"""Opcode and operation-class definitions.

Each opcode belongs to an :class:`OpClass`, which is what the timing model
cares about (which functional unit executes it, and with what latency), and
an operand *format*, which is what the assembler, encoder, and formatter
care about.  Both attributes live in one specification table (`_OP_SPEC`)
from which every other view is derived:

* **int-indexed tuples** (``OP_CLASS_CODE``, ``OP_FORMAT``,
  ``OP_IS_LOAD``, ...) — O(1) lookups by raw opcode integer, used on the
  simulators' hot paths and by the assembler/encoder/rewriter;
* the legacy **enum-keyed dict** ``OP_CLASS`` and the membership
  **frozensets** (``RRR_OPS``, ``LOAD_OPS``, ...) — kept as derived views
  for readability and backward compatibility.

There is deliberately no second place where an opcode's class or format is
written down; adding an opcode means adding one `_OP_SPEC` row.
"""

from __future__ import annotations

from enum import IntEnum, unique


@unique
class OpClass(IntEnum):
    """Functional classes of operations, used for scheduling and latency."""

    IALU = 0      # integer add/sub/logic/shift/compare
    IMUL = 1      # integer multiply
    IDIV = 2      # integer divide
    LOAD = 3      # memory read
    STORE = 4     # memory write
    BRANCH = 5    # conditional branch
    JUMP = 6      # unconditional jump (incl. call and return)
    NOP = 7       # no work (nop, kill, lvm ops)
    SYSCALL = 8   # halt / environment call


@unique
class Opcode(IntEnum):
    """All opcodes of the MIPS-like ISA, including the DVI extensions."""

    # Arithmetic / logic, register-register.
    ADD = 0
    SUB = 1
    MUL = 2
    DIV = 3
    REM = 4
    AND = 5
    OR = 6
    XOR = 7
    NOR = 8
    SLL = 9
    SRL = 10
    SRA = 11
    SLT = 12
    SLTU = 13
    # Arithmetic / logic, register-immediate.
    ADDI = 14
    ANDI = 15
    ORI = 16
    XORI = 17
    SLLI = 18
    SRLI = 19
    SRAI = 20
    SLTI = 21
    LUI = 22
    # Memory.
    LW = 23
    SW = 24
    LB = 25
    SB = 26
    # Control.
    BEQ = 27
    BNE = 28
    BLT = 29
    BGE = 30
    BLEZ = 31
    BGTZ = 32
    J = 33
    JAL = 34
    JR = 35
    JALR = 36
    # Environment.
    NOP = 37
    HALT = 38
    # --- DVI ISA extensions (paper sections 2 and 5.1, 6.1) ---
    KILL = 39      # E-DVI: kill-mask instruction
    LIVE_SW = 40   # live-store: save of a callee-saved register
    LIVE_LW = 41   # live-load: restore of a callee-saved register
    LVM_SAVE = 42  # store the LVM to memory (context switch support)
    LVM_LOAD = 43  # load the LVM from memory (context switch support)


NUM_OPCODES = len(Opcode)
NUM_OP_CLASSES = len(OpClass)

# Operand-format codes (the encoder/decoder/formatter dispatch key).
FMT_RRR = 0     # op rd, rs1, rs2
FMT_RRI = 1     # op rd, rs1, imm
FMT_LUI = 2     # op rd, imm
FMT_LOAD = 3    # op rd, imm(rs1)
FMT_STORE = 4   # op rs2, imm(rs1)
FMT_BR_RR = 5   # op rs1, rs2, target
FMT_BR_RZ = 6   # op rs1, target
FMT_J = 7       # op target (j / jal)
FMT_JR = 8      # op rs1
FMT_JALR = 9    # op rd, rs1
FMT_KILL = 10   # kill mask
FMT_LVM = 11    # op imm(rs1)
FMT_BARE = 12   # op (nop / halt)

# ----------------------------------------------------------------------
# The single source of truth: opcode -> (class, format), in Opcode order.
# ----------------------------------------------------------------------

_OP_SPEC = (
    (Opcode.ADD, OpClass.IALU, FMT_RRR),
    (Opcode.SUB, OpClass.IALU, FMT_RRR),
    (Opcode.MUL, OpClass.IMUL, FMT_RRR),
    (Opcode.DIV, OpClass.IDIV, FMT_RRR),
    (Opcode.REM, OpClass.IDIV, FMT_RRR),
    (Opcode.AND, OpClass.IALU, FMT_RRR),
    (Opcode.OR, OpClass.IALU, FMT_RRR),
    (Opcode.XOR, OpClass.IALU, FMT_RRR),
    (Opcode.NOR, OpClass.IALU, FMT_RRR),
    (Opcode.SLL, OpClass.IALU, FMT_RRR),
    (Opcode.SRL, OpClass.IALU, FMT_RRR),
    (Opcode.SRA, OpClass.IALU, FMT_RRR),
    (Opcode.SLT, OpClass.IALU, FMT_RRR),
    (Opcode.SLTU, OpClass.IALU, FMT_RRR),
    (Opcode.ADDI, OpClass.IALU, FMT_RRI),
    (Opcode.ANDI, OpClass.IALU, FMT_RRI),
    (Opcode.ORI, OpClass.IALU, FMT_RRI),
    (Opcode.XORI, OpClass.IALU, FMT_RRI),
    (Opcode.SLLI, OpClass.IALU, FMT_RRI),
    (Opcode.SRLI, OpClass.IALU, FMT_RRI),
    (Opcode.SRAI, OpClass.IALU, FMT_RRI),
    (Opcode.SLTI, OpClass.IALU, FMT_RRI),
    (Opcode.LUI, OpClass.IALU, FMT_LUI),
    (Opcode.LW, OpClass.LOAD, FMT_LOAD),
    (Opcode.SW, OpClass.STORE, FMT_STORE),
    (Opcode.LB, OpClass.LOAD, FMT_LOAD),
    (Opcode.SB, OpClass.STORE, FMT_STORE),
    (Opcode.BEQ, OpClass.BRANCH, FMT_BR_RR),
    (Opcode.BNE, OpClass.BRANCH, FMT_BR_RR),
    (Opcode.BLT, OpClass.BRANCH, FMT_BR_RR),
    (Opcode.BGE, OpClass.BRANCH, FMT_BR_RR),
    (Opcode.BLEZ, OpClass.BRANCH, FMT_BR_RZ),
    (Opcode.BGTZ, OpClass.BRANCH, FMT_BR_RZ),
    (Opcode.J, OpClass.JUMP, FMT_J),
    (Opcode.JAL, OpClass.JUMP, FMT_J),
    (Opcode.JR, OpClass.JUMP, FMT_JR),
    (Opcode.JALR, OpClass.JUMP, FMT_JALR),
    (Opcode.NOP, OpClass.NOP, FMT_BARE),
    (Opcode.HALT, OpClass.SYSCALL, FMT_BARE),
    (Opcode.KILL, OpClass.NOP, FMT_KILL),
    (Opcode.LIVE_SW, OpClass.STORE, FMT_STORE),
    (Opcode.LIVE_LW, OpClass.LOAD, FMT_LOAD),
    (Opcode.LVM_SAVE, OpClass.NOP, FMT_LVM),
    (Opcode.LVM_LOAD, OpClass.NOP, FMT_LVM),
)

assert tuple(op for op, _, _ in _OP_SPEC) == tuple(Opcode), \
    "_OP_SPEC must list every opcode once, in Opcode order"

# ----------------------------------------------------------------------
# Int-indexed tables (index by ``int(op)`` — or by ``op`` itself, since
# Opcode is an IntEnum).  These are the hot-path views.
# ----------------------------------------------------------------------

#: Opcode int -> OpClass member.
OP_CLASS_TABLE = tuple(cls for _, cls, _ in _OP_SPEC)
#: Opcode int -> raw OpClass int code.
OP_CLASS_CODE = tuple(int(cls) for _, cls, _ in _OP_SPEC)
#: Opcode int -> operand-format code (``FMT_*``).
OP_FORMAT = tuple(fmt for _, _, fmt in _OP_SPEC)

#: Opcode int -> membership flags (derived from class/format).
OP_IS_LOAD = tuple(cls is OpClass.LOAD for _, cls, _ in _OP_SPEC)
OP_IS_STORE = tuple(cls is OpClass.STORE for _, cls, _ in _OP_SPEC)
OP_IS_MEM = tuple(l or s for l, s in zip(OP_IS_LOAD, OP_IS_STORE))
OP_IS_BRANCH = tuple(cls is OpClass.BRANCH for _, cls, _ in _OP_SPEC)
OP_IS_JUMP = tuple(cls is OpClass.JUMP for _, cls, _ in _OP_SPEC)
OP_IS_CONTROL = tuple(b or j for b, j in zip(OP_IS_BRANCH, OP_IS_JUMP))
OP_IS_CALL = tuple(op in (Opcode.JAL, Opcode.JALR) for op in Opcode)
OP_IS_RETURN = tuple(op is Opcode.JR for op in Opcode)

# ----------------------------------------------------------------------
# Derived enum-keyed views (readability / backward compatibility).
# ----------------------------------------------------------------------

#: Opcode -> OpClass.
OP_CLASS = {op: cls for op, cls, _ in _OP_SPEC}

#: Register-register ALU ops (rd, rs1, rs2).
RRR_OPS = frozenset(op for op, _, fmt in _OP_SPEC if fmt == FMT_RRR)

#: Register-immediate ALU ops (rd, rs1, imm).
RRI_OPS = frozenset(op for op, _, fmt in _OP_SPEC if fmt == FMT_RRI)

#: Loads (rd, imm(rs1)).
LOAD_OPS = frozenset(op for op, _, fmt in _OP_SPEC if fmt == FMT_LOAD)

#: Stores (rs2, imm(rs1)) -- rs2 is the data register.
STORE_OPS = frozenset(op for op, _, fmt in _OP_SPEC if fmt == FMT_STORE)

#: Conditional branches comparing two registers.
BRANCH_RR_OPS = frozenset(op for op, _, fmt in _OP_SPEC if fmt == FMT_BR_RR)

#: Conditional branches comparing one register against zero.
BRANCH_RZ_OPS = frozenset(op for op, _, fmt in _OP_SPEC if fmt == FMT_BR_RZ)

#: All conditional branches.
BRANCH_OPS = BRANCH_RR_OPS | BRANCH_RZ_OPS

#: All control-transfer ops (conditional and unconditional).
CONTROL_OPS = frozenset(op for op in Opcode if OP_IS_CONTROL[op])

#: Opcodes that perform a procedure call.
CALL_OPS = frozenset(op for op in Opcode if OP_IS_CALL[op])

#: Opcodes used as procedure returns (``jr ra`` by convention).
RETURN_OPS = frozenset(op for op in Opcode if OP_IS_RETURN[op])

#: Memory-accessing opcodes.
MEM_OPS = LOAD_OPS | STORE_OPS

#: Execution latency (cycles) by op class, SimpleScalar-like defaults.
DEFAULT_LATENCY = {
    OpClass.IALU: 1,
    OpClass.IMUL: 3,
    OpClass.IDIV: 12,
    OpClass.LOAD: 1,   # plus cache access time
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.NOP: 1,
    OpClass.SYSCALL: 1,
}

#: OpClass int code -> default latency (int-indexed view of the above).
DEFAULT_LATENCY_BY_CODE = tuple(
    DEFAULT_LATENCY[OpClass(code)] for code in range(NUM_OP_CLASSES)
)


def op_class(op: Opcode) -> OpClass:
    """The :class:`OpClass` of opcode ``op``."""
    return OP_CLASS_TABLE[op]
