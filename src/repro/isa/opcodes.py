"""Opcode and operation-class definitions.

Each opcode belongs to an :class:`OpClass`, which is what the timing model
cares about (which functional unit executes it, and with what latency), and
carries a small set of static attributes (does it read memory, is it a
control transfer, ...) that the decoder, the analyses, and the simulators all
share.
"""

from __future__ import annotations

from enum import IntEnum, unique


@unique
class OpClass(IntEnum):
    """Functional classes of operations, used for scheduling and latency."""

    IALU = 0      # integer add/sub/logic/shift/compare
    IMUL = 1      # integer multiply
    IDIV = 2      # integer divide
    LOAD = 3      # memory read
    STORE = 4     # memory write
    BRANCH = 5    # conditional branch
    JUMP = 6      # unconditional jump (incl. call and return)
    NOP = 7       # no work (nop, kill, lvm ops)
    SYSCALL = 8   # halt / environment call


@unique
class Opcode(IntEnum):
    """All opcodes of the MIPS-like ISA, including the DVI extensions."""

    # Arithmetic / logic, register-register.
    ADD = 0
    SUB = 1
    MUL = 2
    DIV = 3
    REM = 4
    AND = 5
    OR = 6
    XOR = 7
    NOR = 8
    SLL = 9
    SRL = 10
    SRA = 11
    SLT = 12
    SLTU = 13
    # Arithmetic / logic, register-immediate.
    ADDI = 14
    ANDI = 15
    ORI = 16
    XORI = 17
    SLLI = 18
    SRLI = 19
    SRAI = 20
    SLTI = 21
    LUI = 22
    # Memory.
    LW = 23
    SW = 24
    LB = 25
    SB = 26
    # Control.
    BEQ = 27
    BNE = 28
    BLT = 29
    BGE = 30
    BLEZ = 31
    BGTZ = 32
    J = 33
    JAL = 34
    JR = 35
    JALR = 36
    # Environment.
    NOP = 37
    HALT = 38
    # --- DVI ISA extensions (paper sections 2 and 5.1, 6.1) ---
    KILL = 39      # E-DVI: kill-mask instruction
    LIVE_SW = 40   # live-store: save of a callee-saved register
    LIVE_LW = 41   # live-load: restore of a callee-saved register
    LVM_SAVE = 42  # store the LVM to memory (context switch support)
    LVM_LOAD = 43  # load the LVM from memory (context switch support)


#: Opcode -> OpClass.
OP_CLASS = {
    Opcode.ADD: OpClass.IALU, Opcode.SUB: OpClass.IALU,
    Opcode.MUL: OpClass.IMUL, Opcode.DIV: OpClass.IDIV,
    Opcode.REM: OpClass.IDIV,
    Opcode.AND: OpClass.IALU, Opcode.OR: OpClass.IALU,
    Opcode.XOR: OpClass.IALU, Opcode.NOR: OpClass.IALU,
    Opcode.SLL: OpClass.IALU, Opcode.SRL: OpClass.IALU,
    Opcode.SRA: OpClass.IALU, Opcode.SLT: OpClass.IALU,
    Opcode.SLTU: OpClass.IALU,
    Opcode.ADDI: OpClass.IALU, Opcode.ANDI: OpClass.IALU,
    Opcode.ORI: OpClass.IALU, Opcode.XORI: OpClass.IALU,
    Opcode.SLLI: OpClass.IALU, Opcode.SRLI: OpClass.IALU,
    Opcode.SRAI: OpClass.IALU, Opcode.SLTI: OpClass.IALU,
    Opcode.LUI: OpClass.IALU,
    Opcode.LW: OpClass.LOAD, Opcode.LB: OpClass.LOAD,
    Opcode.SW: OpClass.STORE, Opcode.SB: OpClass.STORE,
    Opcode.BEQ: OpClass.BRANCH, Opcode.BNE: OpClass.BRANCH,
    Opcode.BLT: OpClass.BRANCH, Opcode.BGE: OpClass.BRANCH,
    Opcode.BLEZ: OpClass.BRANCH, Opcode.BGTZ: OpClass.BRANCH,
    Opcode.J: OpClass.JUMP, Opcode.JAL: OpClass.JUMP,
    Opcode.JR: OpClass.JUMP, Opcode.JALR: OpClass.JUMP,
    Opcode.NOP: OpClass.NOP, Opcode.HALT: OpClass.SYSCALL,
    Opcode.KILL: OpClass.NOP,
    Opcode.LIVE_SW: OpClass.STORE, Opcode.LIVE_LW: OpClass.LOAD,
    Opcode.LVM_SAVE: OpClass.NOP, Opcode.LVM_LOAD: OpClass.NOP,
}

#: Register-register ALU ops (rd, rs1, rs2).
RRR_OPS = frozenset({
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
    Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.NOR,
    Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.SLT, Opcode.SLTU,
})

#: Register-immediate ALU ops (rd, rs1, imm).
RRI_OPS = frozenset({
    Opcode.ADDI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLLI, Opcode.SRLI, Opcode.SRAI, Opcode.SLTI,
})

#: Loads (rd, imm(rs1)).
LOAD_OPS = frozenset({Opcode.LW, Opcode.LB, Opcode.LIVE_LW})

#: Stores (rs2, imm(rs1)) -- rs2 is the data register.
STORE_OPS = frozenset({Opcode.SW, Opcode.SB, Opcode.LIVE_SW})

#: Conditional branches comparing two registers.
BRANCH_RR_OPS = frozenset({Opcode.BEQ, Opcode.BNE, Opcode.BLT, Opcode.BGE})

#: Conditional branches comparing one register against zero.
BRANCH_RZ_OPS = frozenset({Opcode.BLEZ, Opcode.BGTZ})

#: All conditional branches.
BRANCH_OPS = BRANCH_RR_OPS | BRANCH_RZ_OPS

#: All control-transfer ops (conditional and unconditional).
CONTROL_OPS = BRANCH_OPS | frozenset({Opcode.J, Opcode.JAL, Opcode.JR, Opcode.JALR})

#: Opcodes that perform a procedure call.
CALL_OPS = frozenset({Opcode.JAL, Opcode.JALR})

#: Opcodes used as procedure returns (``jr ra`` by convention).
RETURN_OPS = frozenset({Opcode.JR})

#: Memory-accessing opcodes.
MEM_OPS = LOAD_OPS | STORE_OPS

#: Execution latency (cycles) by op class, SimpleScalar-like defaults.
DEFAULT_LATENCY = {
    OpClass.IALU: 1,
    OpClass.IMUL: 3,
    OpClass.IDIV: 12,
    OpClass.LOAD: 1,   # plus cache access time
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.JUMP: 1,
    OpClass.NOP: 1,
    OpClass.SYSCALL: 1,
}


def op_class(op: Opcode) -> OpClass:
    """The :class:`OpClass` of opcode ``op``."""
    return OP_CLASS[op]
