"""The :class:`Instruction` type shared by every layer of the system.

An instruction is a small immutable record.  The same representation is used
by the assembler, the analyses, the binary rewriter, the functional
emulator, and (via dynamic trace records) the timing simulator.

Operand conventions:

* register-register ops: ``op rd, rs1, rs2``
* register-immediate ops: ``op rd, rs1, imm``
* loads: ``op rd, imm(rs1)``
* stores: ``op rs2, imm(rs1)`` (``rs2`` is the data register)
* branches: ``op rs1, rs2, target``
* ``jal target`` writes ``ra``; ``jr rs1``; ``jalr rd, rs1``
* ``kill`` carries a register bit mask (``kill_mask``)
* ``lvm_save`` / ``lvm_load``: ``op imm(rs1)``

The ``target`` field holds a label string before linking and an instruction
index (not a byte address) after :meth:`repro.program.program.Program.link`.

Static predicates and the def/use masks dispatch on the int-indexed
metadata tables of :mod:`repro.isa.opcodes` (``OP_FORMAT``,
``OP_IS_LOAD``, ...), so opcode metadata has a single source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple, Union

from repro.isa import registers as regs
from repro.isa.opcodes import (
    BRANCH_OPS,
    FMT_BARE,
    FMT_BR_RR,
    FMT_BR_RZ,
    FMT_J,
    FMT_JALR,
    FMT_JR,
    FMT_KILL,
    FMT_LOAD,
    FMT_LUI,
    FMT_LVM,
    FMT_RRI,
    FMT_RRR,
    FMT_STORE,
    LOAD_OPS,
    OP_CLASS_TABLE,
    OP_FORMAT,
    OP_IS_BRANCH,
    OP_IS_CALL,
    OP_IS_CONTROL,
    OP_IS_LOAD,
    OP_IS_MEM,
    OP_IS_RETURN,
    OP_IS_STORE,
    STORE_OPS,
    OpClass,
    Opcode,
)

#: Bytes per encoded instruction (fixed-width 32-bit encoding).
INST_BYTES = 4


@dataclass(frozen=True)
class Instruction:
    """A single static instruction."""

    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: Optional[Union[str, int]] = None
    kill_mask: int = 0
    #: Optional label attached to this instruction's address.
    comment: str = ""

    # ------------------------------------------------------------------
    # Static properties.
    # ------------------------------------------------------------------

    @property
    def op_class(self) -> OpClass:
        return OP_CLASS_TABLE[self.op]

    @property
    def is_branch(self) -> bool:
        """A conditional branch."""
        return OP_IS_BRANCH[self.op]

    @property
    def is_control(self) -> bool:
        """Any control transfer (branch, jump, call, return)."""
        return OP_IS_CONTROL[self.op]

    @property
    def is_call(self) -> bool:
        return OP_IS_CALL[self.op]

    @property
    def is_return(self) -> bool:
        """``jr ra`` is the conventional procedure return."""
        return OP_IS_RETURN[self.op] and self.rs1 == regs.RA

    @property
    def is_indirect(self) -> bool:
        """Control transfer through a register (target unknown statically)."""
        fmt = OP_FORMAT[self.op]
        return fmt == FMT_JR or fmt == FMT_JALR

    @property
    def is_load(self) -> bool:
        return OP_IS_LOAD[self.op]

    @property
    def is_store(self) -> bool:
        return OP_IS_STORE[self.op]

    @property
    def is_mem(self) -> bool:
        return OP_IS_MEM[self.op]

    @property
    def is_save(self) -> bool:
        """A live-store (callee-saved register save)."""
        return self.op == Opcode.LIVE_SW

    @property
    def is_restore(self) -> bool:
        """A live-load (callee-saved register restore)."""
        return self.op == Opcode.LIVE_LW

    @property
    def is_kill(self) -> bool:
        return self.op == Opcode.KILL

    @property
    def is_halt(self) -> bool:
        return self.op == Opcode.HALT

    @property
    def falls_through(self) -> bool:
        """Whether control may continue to the next sequential instruction."""
        op = self.op
        if op == Opcode.J or op == Opcode.HALT:
            return False
        if op == Opcode.JR:  # includes the conventional return, jr ra
            return False
        return True

    # ------------------------------------------------------------------
    # Register def/use sets (as bit masks; r0 is excluded from both since
    # it is a hardwired constant).
    # ------------------------------------------------------------------

    def def_mask(self) -> int:
        """Mask of architectural registers this instruction writes."""
        fmt = OP_FORMAT[self.op]
        if fmt in (FMT_RRR, FMT_RRI, FMT_LUI, FMT_LOAD, FMT_JALR):
            return _bit(self.rd)
        if fmt == FMT_J and self.op == Opcode.JAL:
            return _bit(regs.RA)
        return 0

    def use_mask(self) -> int:
        """Mask of architectural registers this instruction reads."""
        fmt = OP_FORMAT[self.op]
        if fmt in (FMT_RRR, FMT_STORE, FMT_BR_RR):
            return _bit(self.rs1) | _bit(self.rs2)
        if fmt in (FMT_RRI, FMT_LOAD, FMT_BR_RZ, FMT_JR, FMT_JALR, FMT_LVM):
            return _bit(self.rs1)
        return 0

    def defs(self) -> Tuple[int, ...]:
        """The written registers, as a tuple of indices."""
        return tuple(regs.regs_in_mask(self.def_mask()))

    def uses(self) -> Tuple[int, ...]:
        """The read registers, as a tuple of indices."""
        return tuple(regs.regs_in_mask(self.use_mask()))

    # ------------------------------------------------------------------
    # Rewriting helpers.
    # ------------------------------------------------------------------

    def with_target(self, target: Union[str, int]) -> "Instruction":
        """A copy of this instruction with a different branch/jump target."""
        return replace(self, target=target)

    # ------------------------------------------------------------------
    # Formatting.
    # ------------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return format_instruction(self)


def _bit(reg: int) -> int:
    """Bit for register ``reg``; r0 contributes nothing."""
    return 0 if reg == regs.ZERO else (1 << reg)


def format_instruction(inst: Instruction) -> str:
    """Render an instruction in assembly syntax."""
    op = inst.op
    name = op.name.lower()
    target = inst.target if inst.target is not None else "?"
    fmt = OP_FORMAT[op]
    if fmt == FMT_RRR:
        return (f"{name} {regs.reg_name(inst.rd)}, "
                f"{regs.reg_name(inst.rs1)}, {regs.reg_name(inst.rs2)}")
    if fmt == FMT_RRI:
        return (f"{name} {regs.reg_name(inst.rd)}, "
                f"{regs.reg_name(inst.rs1)}, {inst.imm}")
    if fmt == FMT_LUI:
        return f"{name} {regs.reg_name(inst.rd)}, {inst.imm}"
    if fmt == FMT_LOAD:
        return f"{name} {regs.reg_name(inst.rd)}, {inst.imm}({regs.reg_name(inst.rs1)})"
    if fmt == FMT_STORE:
        return f"{name} {regs.reg_name(inst.rs2)}, {inst.imm}({regs.reg_name(inst.rs1)})"
    if fmt == FMT_BR_RR:
        return (f"{name} {regs.reg_name(inst.rs1)}, "
                f"{regs.reg_name(inst.rs2)}, {target}")
    if fmt == FMT_BR_RZ:
        return f"{name} {regs.reg_name(inst.rs1)}, {target}"
    if fmt == FMT_J:
        return f"{name} {target}"
    if fmt == FMT_JR:
        return f"{name} {regs.reg_name(inst.rs1)}"
    if fmt == FMT_JALR:
        return f"{name} {regs.reg_name(inst.rd)}, {regs.reg_name(inst.rs1)}"
    if fmt == FMT_KILL:
        return f"kill {regs.format_mask(inst.kill_mask)}"
    if fmt == FMT_LVM:
        return f"{name} {inst.imm}({regs.reg_name(inst.rs1)})"
    assert fmt == FMT_BARE
    return name


# ----------------------------------------------------------------------
# Constructor helpers.  These keep workload code and tests terse while
# validating operands eagerly.
# ----------------------------------------------------------------------

def rrr(op: Opcode, rd: int, rs1: int, rs2: int) -> Instruction:
    """Build a register-register ALU instruction."""
    if OP_FORMAT[op] != FMT_RRR:
        raise ValueError(f"{op.name} is not a register-register op")
    return Instruction(op, rd=rd, rs1=rs1, rs2=rs2)


def rri(op: Opcode, rd: int, rs1: int, imm: int) -> Instruction:
    """Build a register-immediate ALU instruction."""
    if OP_FORMAT[op] != FMT_RRI:
        raise ValueError(f"{op.name} is not a register-immediate op")
    return Instruction(op, rd=rd, rs1=rs1, imm=imm)


def load(op: Opcode, rd: int, base: int, offset: int) -> Instruction:
    """Build a load ``op rd, offset(base)``."""
    if op not in LOAD_OPS:
        raise ValueError(f"{op.name} is not a load op")
    return Instruction(op, rd=rd, rs1=base, imm=offset)


def store(op: Opcode, data: int, base: int, offset: int) -> Instruction:
    """Build a store ``op data, offset(base)``."""
    if op not in STORE_OPS:
        raise ValueError(f"{op.name} is not a store op")
    return Instruction(op, rs1=base, rs2=data, imm=offset)


def branch(op: Opcode, rs1: int, rs2: int, target: Union[str, int]) -> Instruction:
    """Build a conditional branch."""
    if op not in BRANCH_OPS:
        raise ValueError(f"{op.name} is not a branch op")
    return Instruction(op, rs1=rs1, rs2=rs2, target=target)


def kill(mask: int) -> Instruction:
    """Build an E-DVI kill instruction from a register bit mask."""
    if mask < 0 or mask >> regs.NUM_REGS:
        raise ValueError(f"kill mask out of range: {mask:#x}")
    if mask & 1:
        raise ValueError("r0 cannot be killed")
    return Instruction(Opcode.KILL, kill_mask=mask)
