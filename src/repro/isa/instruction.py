"""The :class:`Instruction` type shared by every layer of the system.

An instruction is a small immutable record.  The same representation is used
by the assembler, the analyses, the binary rewriter, the functional
emulator, and (via dynamic trace records) the timing simulator.

Operand conventions:

* register-register ops: ``op rd, rs1, rs2``
* register-immediate ops: ``op rd, rs1, imm``
* loads: ``op rd, imm(rs1)``
* stores: ``op rs2, imm(rs1)`` (``rs2`` is the data register)
* branches: ``op rs1, rs2, target``
* ``jal target`` writes ``ra``; ``jr rs1``; ``jalr rd, rs1``
* ``kill`` carries a register bit mask (``kill_mask``)
* ``lvm_save`` / ``lvm_load``: ``op imm(rs1)``

The ``target`` field holds a label string before linking and an instruction
index (not a byte address) after :meth:`repro.program.program.Program.link`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple, Union

from repro.isa import registers as regs
from repro.isa.opcodes import (
    BRANCH_OPS,
    BRANCH_RR_OPS,
    BRANCH_RZ_OPS,
    CALL_OPS,
    CONTROL_OPS,
    LOAD_OPS,
    MEM_OPS,
    OP_CLASS,
    RETURN_OPS,
    RRI_OPS,
    RRR_OPS,
    STORE_OPS,
    OpClass,
    Opcode,
)

#: Bytes per encoded instruction (fixed-width 32-bit encoding).
INST_BYTES = 4


@dataclass(frozen=True)
class Instruction:
    """A single static instruction."""

    op: Opcode
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    target: Optional[Union[str, int]] = None
    kill_mask: int = 0
    #: Optional label attached to this instruction's address.
    comment: str = ""

    # ------------------------------------------------------------------
    # Static properties.
    # ------------------------------------------------------------------

    @property
    def op_class(self) -> OpClass:
        return OP_CLASS[self.op]

    @property
    def is_branch(self) -> bool:
        """A conditional branch."""
        return self.op in BRANCH_OPS

    @property
    def is_control(self) -> bool:
        """Any control transfer (branch, jump, call, return)."""
        return self.op in CONTROL_OPS

    @property
    def is_call(self) -> bool:
        return self.op in CALL_OPS

    @property
    def is_return(self) -> bool:
        """``jr ra`` is the conventional procedure return."""
        return self.op in RETURN_OPS and self.rs1 == regs.RA

    @property
    def is_indirect(self) -> bool:
        """Control transfer through a register (target unknown statically)."""
        return self.op in (Opcode.JR, Opcode.JALR)

    @property
    def is_load(self) -> bool:
        return self.op in LOAD_OPS

    @property
    def is_store(self) -> bool:
        return self.op in STORE_OPS

    @property
    def is_mem(self) -> bool:
        return self.op in MEM_OPS

    @property
    def is_save(self) -> bool:
        """A live-store (callee-saved register save)."""
        return self.op is Opcode.LIVE_SW

    @property
    def is_restore(self) -> bool:
        """A live-load (callee-saved register restore)."""
        return self.op is Opcode.LIVE_LW

    @property
    def is_kill(self) -> bool:
        return self.op is Opcode.KILL

    @property
    def is_halt(self) -> bool:
        return self.op is Opcode.HALT

    @property
    def falls_through(self) -> bool:
        """Whether control may continue to the next sequential instruction."""
        if self.op in (Opcode.J, Opcode.JR, Opcode.HALT):
            return False
        if self.is_return:
            return False
        return True

    # ------------------------------------------------------------------
    # Register def/use sets (as bit masks; r0 is excluded from both since
    # it is a hardwired constant).
    # ------------------------------------------------------------------

    def def_mask(self) -> int:
        """Mask of architectural registers this instruction writes."""
        op = self.op
        if op in RRR_OPS or op in RRI_OPS or op is Opcode.LUI:
            return _bit(self.rd)
        if op in LOAD_OPS:
            return _bit(self.rd)
        if op is Opcode.JAL:
            return _bit(regs.RA)
        if op is Opcode.JALR:
            return _bit(self.rd)
        return 0

    def use_mask(self) -> int:
        """Mask of architectural registers this instruction reads."""
        op = self.op
        if op in RRR_OPS:
            return _bit(self.rs1) | _bit(self.rs2)
        if op in RRI_OPS:
            return _bit(self.rs1)
        if op in LOAD_OPS:
            return _bit(self.rs1)
        if op in STORE_OPS:
            return _bit(self.rs1) | _bit(self.rs2)
        if op in BRANCH_RR_OPS:
            return _bit(self.rs1) | _bit(self.rs2)
        if op in BRANCH_RZ_OPS:
            return _bit(self.rs1)
        if op in (Opcode.JR, Opcode.JALR):
            return _bit(self.rs1)
        if op in (Opcode.LVM_SAVE, Opcode.LVM_LOAD):
            return _bit(self.rs1)
        return 0

    def defs(self) -> Tuple[int, ...]:
        """The written registers, as a tuple of indices."""
        return tuple(regs.regs_in_mask(self.def_mask()))

    def uses(self) -> Tuple[int, ...]:
        """The read registers, as a tuple of indices."""
        return tuple(regs.regs_in_mask(self.use_mask()))

    # ------------------------------------------------------------------
    # Rewriting helpers.
    # ------------------------------------------------------------------

    def with_target(self, target: Union[str, int]) -> "Instruction":
        """A copy of this instruction with a different branch/jump target."""
        return replace(self, target=target)

    # ------------------------------------------------------------------
    # Formatting.
    # ------------------------------------------------------------------

    def __str__(self) -> str:  # pragma: no cover - formatting convenience
        return format_instruction(self)


def _bit(reg: int) -> int:
    """Bit for register ``reg``; r0 contributes nothing."""
    return 0 if reg == regs.ZERO else (1 << reg)


def format_instruction(inst: Instruction) -> str:
    """Render an instruction in assembly syntax."""
    op = inst.op
    name = op.name.lower()
    target = inst.target if inst.target is not None else "?"
    if op in RRR_OPS:
        return (f"{name} {regs.reg_name(inst.rd)}, "
                f"{regs.reg_name(inst.rs1)}, {regs.reg_name(inst.rs2)}")
    if op in RRI_OPS:
        return (f"{name} {regs.reg_name(inst.rd)}, "
                f"{regs.reg_name(inst.rs1)}, {inst.imm}")
    if op is Opcode.LUI:
        return f"{name} {regs.reg_name(inst.rd)}, {inst.imm}"
    if op in LOAD_OPS:
        return f"{name} {regs.reg_name(inst.rd)}, {inst.imm}({regs.reg_name(inst.rs1)})"
    if op in STORE_OPS:
        return f"{name} {regs.reg_name(inst.rs2)}, {inst.imm}({regs.reg_name(inst.rs1)})"
    if op in BRANCH_RR_OPS:
        return (f"{name} {regs.reg_name(inst.rs1)}, "
                f"{regs.reg_name(inst.rs2)}, {target}")
    if op in BRANCH_RZ_OPS:
        return f"{name} {regs.reg_name(inst.rs1)}, {target}"
    if op in (Opcode.J, Opcode.JAL):
        return f"{name} {target}"
    if op is Opcode.JR:
        return f"{name} {regs.reg_name(inst.rs1)}"
    if op is Opcode.JALR:
        return f"{name} {regs.reg_name(inst.rd)}, {regs.reg_name(inst.rs1)}"
    if op is Opcode.KILL:
        return f"kill {regs.format_mask(inst.kill_mask)}"
    if op in (Opcode.LVM_SAVE, Opcode.LVM_LOAD):
        return f"{name} {inst.imm}({regs.reg_name(inst.rs1)})"
    return name


# ----------------------------------------------------------------------
# Constructor helpers.  These keep workload code and tests terse while
# validating operands eagerly.
# ----------------------------------------------------------------------

def rrr(op: Opcode, rd: int, rs1: int, rs2: int) -> Instruction:
    """Build a register-register ALU instruction."""
    if op not in RRR_OPS:
        raise ValueError(f"{op.name} is not a register-register op")
    return Instruction(op, rd=rd, rs1=rs1, rs2=rs2)


def rri(op: Opcode, rd: int, rs1: int, imm: int) -> Instruction:
    """Build a register-immediate ALU instruction."""
    if op not in RRI_OPS:
        raise ValueError(f"{op.name} is not a register-immediate op")
    return Instruction(op, rd=rd, rs1=rs1, imm=imm)


def load(op: Opcode, rd: int, base: int, offset: int) -> Instruction:
    """Build a load ``op rd, offset(base)``."""
    if op not in LOAD_OPS:
        raise ValueError(f"{op.name} is not a load op")
    return Instruction(op, rd=rd, rs1=base, imm=offset)


def store(op: Opcode, data: int, base: int, offset: int) -> Instruction:
    """Build a store ``op data, offset(base)``."""
    if op not in STORE_OPS:
        raise ValueError(f"{op.name} is not a store op")
    return Instruction(op, rs1=base, rs2=data, imm=offset)


def branch(op: Opcode, rs1: int, rs2: int, target: Union[str, int]) -> Instruction:
    """Build a conditional branch."""
    if op not in BRANCH_OPS:
        raise ValueError(f"{op.name} is not a branch op")
    return Instruction(op, rs1=rs1, rs2=rs2, target=target)


def kill(mask: int) -> Instruction:
    """Build an E-DVI kill instruction from a register bit mask."""
    if mask < 0 or mask >> regs.NUM_REGS:
        raise ValueError(f"kill mask out of range: {mask:#x}")
    if mask & 1:
        raise ValueError("r0 cannot be killed")
    return Instruction(Opcode.KILL, kill_mask=mask)
