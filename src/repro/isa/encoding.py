"""Fixed-width 32-bit binary encoding of the ISA.

The encoding exists for three reasons: it pins down that the DVI extensions
really fit the "few new instructions" budget the paper claims (a ``kill``
instruction encodes a 24-bit kill mask over ``r8``-``r31`` in its non-opcode
bits, exactly the paper's "subset of the non-opcode bits as a kill mask for a
register subset"); it gives the Figure 13 static-code-size experiment a
well-defined meaning (4 bytes per instruction, E-DVI included); and the
encode/decode round trip is a convenient correctness oracle for property
tests.

Layout (bit 31 is the most significant):

====================  =========================================
field                 bits
====================  =========================================
opcode                [31:26]
R-type                rd [25:21], rs1 [20:16], rs2 [15:11]
I-type (ALU, loads)   rd [25:21], rs1 [20:16], imm [15:0]
stores                rs2 [25:21], rs1 [20:16], imm [15:0]
branches              rs1 [25:21], rs2 [20:16], offset [15:0]
j / jal               target instruction index [25:0]
kill                  mask over r8..r31 [23:0]
lvm_save / lvm_load   rs1 [20:16], imm [15:0]
====================  =========================================

Branch offsets are encoded relative to the *next* instruction, in
instruction units, as a signed 16-bit field.  ``j``/``jal`` targets are
absolute instruction indices.  All targets must already be linked (integers,
not labels).
"""

from __future__ import annotations

from typing import List

from repro.isa.instruction import Instruction
from repro.isa.opcodes import (
    FMT_BARE,
    FMT_BR_RR,
    FMT_BR_RZ,
    FMT_J,
    FMT_JALR,
    FMT_JR,
    FMT_KILL,
    FMT_LOAD,
    FMT_LUI,
    FMT_LVM,
    FMT_RRI,
    FMT_RRR,
    FMT_STORE,
    OP_FORMAT,
    Opcode,
)

#: Lowest register nameable in a kill mask (r8; r0-r7 are never killable
#: explicitly -- zero, assembler temp, return values, and arguments).
KILL_MASK_BASE = 8
#: Width of the encoded kill-mask field.
KILL_MASK_BITS = 24

_IMM_MIN = -(1 << 15)
_IMM_MAX = (1 << 15) - 1
_TARGET_MAX = (1 << 26) - 1


class EncodingError(ValueError):
    """An instruction cannot be represented in the binary encoding."""


def encode(inst: Instruction, index: int) -> int:
    """Encode ``inst``, located at instruction index ``index``, to a word."""
    op = inst.op
    word = int(op) << 26
    fmt = OP_FORMAT[op]
    if fmt == FMT_RRR:
        return word | (inst.rd << 21) | (inst.rs1 << 16) | (inst.rs2 << 11)
    if fmt == FMT_RRI or fmt == FMT_LOAD:
        return word | (inst.rd << 21) | (inst.rs1 << 16) | _imm16(inst.imm)
    if fmt == FMT_LUI:
        return word | (inst.rd << 21) | _imm16(inst.imm)
    if fmt == FMT_STORE:
        return word | (inst.rs2 << 21) | (inst.rs1 << 16) | _imm16(inst.imm)
    if fmt == FMT_BR_RR or fmt == FMT_BR_RZ:
        offset = _linked_target(inst) - (index + 1)
        return word | (inst.rs1 << 21) | (inst.rs2 << 16) | _imm16(offset)
    if fmt == FMT_J:
        target = _linked_target(inst)
        if not 0 <= target <= _TARGET_MAX:
            raise EncodingError(f"jump target out of range: {target}")
        return word | target
    if fmt == FMT_JR:
        return word | (inst.rs1 << 16)
    if fmt == FMT_JALR:
        return word | (inst.rd << 21) | (inst.rs1 << 16)
    if fmt == FMT_KILL:
        return word | _encode_kill_mask(inst.kill_mask)
    if fmt == FMT_LVM:
        return word | (inst.rs1 << 16) | _imm16(inst.imm)
    if fmt == FMT_BARE:
        return word
    raise EncodingError(f"cannot encode opcode {op.name}")


def decode(word: int, index: int) -> Instruction:
    """Decode a 32-bit word at instruction index ``index``."""
    if not 0 <= word < (1 << 32):
        raise EncodingError(f"word out of range: {word:#x}")
    try:
        op = Opcode(word >> 26)
    except ValueError as exc:
        raise EncodingError(f"invalid opcode field in {word:#010x}") from exc
    f1 = (word >> 21) & 0x1F
    f2 = (word >> 16) & 0x1F
    f3 = (word >> 11) & 0x1F
    imm = _sign_extend16(word & 0xFFFF)
    fmt = OP_FORMAT[op]
    if fmt == FMT_RRR:
        return Instruction(op, rd=f1, rs1=f2, rs2=f3)
    if fmt == FMT_RRI or fmt == FMT_LOAD:
        return Instruction(op, rd=f1, rs1=f2, imm=imm)
    if fmt == FMT_LUI:
        return Instruction(op, rd=f1, imm=imm)
    if fmt == FMT_STORE:
        return Instruction(op, rs2=f1, rs1=f2, imm=imm)
    if fmt == FMT_BR_RR or fmt == FMT_BR_RZ:
        return Instruction(op, rs1=f1, rs2=f2, target=index + 1 + imm)
    if fmt == FMT_J:
        return Instruction(op, target=word & _TARGET_MAX)
    if fmt == FMT_JR:
        return Instruction(op, rs1=f2)
    if fmt == FMT_JALR:
        return Instruction(op, rd=f1, rs1=f2)
    if fmt == FMT_KILL:
        return Instruction(op, kill_mask=_decode_kill_mask(word))
    if fmt == FMT_LVM:
        return Instruction(op, rs1=f2, imm=imm)
    return Instruction(op)


def encode_program(insts: List[Instruction]) -> List[int]:
    """Encode a linked instruction list to a list of 32-bit words."""
    return [encode(inst, index) for index, inst in enumerate(insts)]


def decode_program(words: List[int]) -> List[Instruction]:
    """Decode a list of 32-bit words back to instructions."""
    return [decode(word, index) for index, word in enumerate(words)]


def _imm16(value: int) -> int:
    if not _IMM_MIN <= value <= _IMM_MAX:
        raise EncodingError(f"immediate out of 16-bit range: {value}")
    return value & 0xFFFF


def _sign_extend16(value: int) -> int:
    return value - (1 << 16) if value & (1 << 15) else value


def _linked_target(inst: Instruction) -> int:
    if not isinstance(inst.target, int):
        raise EncodingError(
            f"unlinked target {inst.target!r}; link the program before encoding"
        )
    return inst.target


def _encode_kill_mask(mask: int) -> int:
    if mask & ((1 << KILL_MASK_BASE) - 1):
        raise EncodingError(
            f"kill mask names registers below r{KILL_MASK_BASE}: {mask:#x}"
        )
    field = mask >> KILL_MASK_BASE
    if field >> KILL_MASK_BITS:
        raise EncodingError(f"kill mask out of range: {mask:#x}")
    return field


def _decode_kill_mask(word: int) -> int:
    return (word & ((1 << KILL_MASK_BITS) - 1)) << KILL_MASK_BASE
