"""The calling convention (ABI) and the implicit-DVI masks it defines.

The paper's I-DVI optimization (section 2) relies on the ABI partition of the
general-purpose registers into *caller-saved* and *callee-saved* sets:

* caller-saved registers are dead at the entry and exit points of any
  procedure (except those carrying arguments in, or return values out), so a
  dynamic ``call`` or ``return`` instruction is an implicit kill of them;
* callee-saved registers must be preserved by any procedure that assigns
  them, which is what the save/restore (``live_sw``/``live_lw``) pairs in
  procedure prologues and epilogues do.

Section 7 of the paper notes that, to avoid hard-wiring the convention into
the processor, I-DVI should be inferred only for registers named in an
*ABI-supplied mask*; :class:`ABI` models exactly that, and a cleared mask
disables I-DVI (useful for debugging, and for the "No DVI" baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa import registers as regs
from repro.isa.registers import mask_of


@dataclass(frozen=True)
class ABI:
    """A calling convention over the 32 integer registers.

    All sets are represented as bit masks (bit *i* set means ``r<i>`` is a
    member).  The default values implement the MIPS o32-style convention
    described in :mod:`repro.isa.registers`.
    """

    #: Registers a callee must preserve if it assigns them.
    callee_saved: int = field(
        default_factory=lambda: mask_of(
            [regs.S0, regs.S1, regs.S2, regs.S3,
             regs.S4, regs.S5, regs.S6, regs.S7, regs.FP]
        )
    )
    #: Registers a caller must preserve across calls if live.
    caller_saved: int = field(
        default_factory=lambda: mask_of(
            [regs.AT, regs.V0, regs.V1,
             regs.A0, regs.A1, regs.A2, regs.A3,
             regs.T0, regs.T1, regs.T2, regs.T3,
             regs.T4, regs.T5, regs.T6, regs.T7,
             regs.T8, regs.T9, regs.RA]
        )
    )
    #: Registers used to pass arguments.
    argument_regs: int = field(
        default_factory=lambda: mask_of([regs.A0, regs.A1, regs.A2, regs.A3])
    )
    #: Registers used to return values.
    return_regs: int = field(default_factory=lambda: mask_of([regs.V0, regs.V1]))
    #: Stack pointer register.
    sp: int = regs.SP
    #: Return-address register.
    ra: int = regs.RA

    def __post_init__(self) -> None:
        if self.callee_saved & self.caller_saved:
            overlap = self.callee_saved & self.caller_saved
            raise ValueError(
                f"caller- and callee-saved sets overlap: {regs.format_mask(overlap)}"
            )

    # ------------------------------------------------------------------
    # I-DVI masks (section 2, "Implicit DVI"; section 7, "Hardware and ABI
    # interactions").
    # ------------------------------------------------------------------

    def idvi_call_mask(self) -> int:
        """Registers implicitly dead at a dynamic ``call`` instruction.

        At procedure entry every caller-saved register is dead except the
        argument registers (which carry live values in) and ``ra`` (written
        by the call itself, and needed to return).
        """
        return self.caller_saved & ~self.argument_regs & ~(1 << self.ra)

    def idvi_return_mask(self) -> int:
        """Registers implicitly dead at a dynamic ``return`` instruction.

        At procedure exit every caller-saved register is dead except the
        return-value registers.
        """
        return self.caller_saved & ~self.return_regs & ~(1 << self.ra)

    # ------------------------------------------------------------------
    # Liveness boundary conditions used by the binary rewriter.
    # ------------------------------------------------------------------

    def live_at_return(self) -> int:
        """Registers that must be treated as live at a procedure's return.

        Callee-saved registers are live at return (the caller may hold live
        values in them), as are the return-value registers, the stack
        pointer, and the global pointer.  This is the boundary condition
        that makes intra-procedural liveness sound for E-DVI insertion: a
        callee-saved register is only *dead* at a point in a procedure if the
        procedure itself will overwrite it (e.g. via an epilogue restore)
        before returning.
        """
        return (
            self.callee_saved
            | self.return_regs
            | (1 << self.sp)
            | (1 << regs.GP)
        )

    def killable_mask(self) -> int:
        """Registers a ``kill`` instruction is allowed to name.

        The zero register, kernel registers, the stack pointer, and the
        global pointer are never killable; everything else is.
        """
        never = mask_of([regs.ZERO, regs.K0, regs.K1, self.sp, regs.GP])
        return ((1 << regs.NUM_REGS) - 1) & ~never

    def saveable_mask(self) -> int:
        """Registers a context switch must preserve when live.

        Everything except the hardwired zero and the kernel temporaries.
        This is the denominator for the Figure 12 experiment.
        """
        return ((1 << regs.NUM_REGS) - 1) & ~mask_of([regs.ZERO, regs.K0, regs.K1])


#: The default ABI instance used throughout the code base.
DEFAULT_ABI = ABI()


def no_idvi_abi() -> ABI:
    """An ABI whose I-DVI masks are empty (the section 7 "clear mask").

    Used for the "No DVI" and "E-DVI only" experiment configurations: the
    convention is unchanged, but the processor infers nothing from calls and
    returns.
    """
    return ABI(
        callee_saved=DEFAULT_ABI.callee_saved,
        caller_saved=0,
        argument_regs=DEFAULT_ABI.argument_regs,
        return_regs=DEFAULT_ABI.return_regs,
    )
