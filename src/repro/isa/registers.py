"""Architectural register definitions for the MIPS-like ISA.

The machine has 32 integer registers, ``r0`` through ``r31``, with ``r0``
hardwired to zero.  Registers are represented throughout the code base as
plain ``int`` indices (0-31); this module provides the symbolic names, the
conventional ABI aliases (``sp``, ``ra``, ...), parsing, and formatting.

The paper's optimizations concern only the integer register file (all of its
benchmarks are SPEC95 *integer* codes), so no floating point register file is
modelled.  The register *roles* (caller-saved, callee-saved, argument,
return value) are defined by :mod:`repro.isa.abi`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

#: Number of architectural integer registers.
NUM_REGS = 32

#: Index of the hardwired zero register.
ZERO = 0

# Conventional ABI aliases, MIPS style.
AT = 1  # assembler temporary
V0 = 2  # return value 0
V1 = 3  # return value 1
A0, A1, A2, A3 = 4, 5, 6, 7  # argument registers
T0, T1, T2, T3, T4, T5, T6, T7 = 8, 9, 10, 11, 12, 13, 14, 15  # temporaries
S0, S1, S2, S3, S4, S5, S6, S7 = 16, 17, 18, 19, 20, 21, 22, 23  # callee-saved
T8, T9 = 24, 25  # more temporaries
K0, K1 = 26, 27  # reserved for kernel
GP = 28  # global pointer
SP = 29  # stack pointer
FP = 30  # frame pointer (callee-saved)
RA = 31  # return address

#: Alias name -> register index.
ALIASES = {
    "zero": ZERO, "at": AT, "v0": V0, "v1": V1,
    "a0": A0, "a1": A1, "a2": A2, "a3": A3,
    "t0": T0, "t1": T1, "t2": T2, "t3": T3,
    "t4": T4, "t5": T5, "t6": T6, "t7": T7,
    "s0": S0, "s1": S1, "s2": S2, "s3": S3,
    "s4": S4, "s5": S5, "s6": S6, "s7": S7,
    "t8": T8, "t9": T9, "k0": K0, "k1": K1,
    "gp": GP, "sp": SP, "fp": FP, "ra": RA,
}

#: Register index -> canonical alias name.
ALIAS_NAMES = {index: name for name, index in ALIASES.items()}


def reg_name(reg: int, *, numeric: bool = False) -> str:
    """Return the printable name of register ``reg``.

    By default the ABI alias is used (``sp``, ``s0``...); with
    ``numeric=True`` the raw ``rN`` form is returned instead.
    """
    _check(reg)
    if numeric:
        return f"r{reg}"
    return ALIAS_NAMES[reg]


def parse_reg(text: str) -> int:
    """Parse a register name (``r12``, ``$12``, ``sp``, ``$sp``) to an index.

    Raises :class:`ValueError` for names that do not denote a register.
    """
    name = text.strip().lower()
    if name.startswith("$"):
        name = name[1:]
    if name in ALIASES:
        return ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        index = int(name[1:])
        if 0 <= index < NUM_REGS:
            return index
    raise ValueError(f"not a register name: {text!r}")


def mask_of(regs: Iterable[int]) -> int:
    """Build a bit mask with one bit set per register in ``regs``."""
    mask = 0
    for reg in regs:
        _check(reg)
        mask |= 1 << reg
    return mask


def regs_in_mask(mask: int) -> Iterator[int]:
    """Yield the register indices whose bits are set in ``mask``, ascending."""
    if mask < 0 or mask >> NUM_REGS:
        raise ValueError(f"register mask out of range: {mask:#x}")
    for reg in range(NUM_REGS):
        if mask & (1 << reg):
            yield reg


def popcount(mask: int) -> int:
    """Number of set bits in a register mask."""
    return bin(mask).count("1")


def format_mask(mask: int) -> str:
    """Human-readable rendering of a register mask, e.g. ``{s0, s1}``."""
    names = ", ".join(reg_name(reg) for reg in regs_in_mask(mask))
    return "{" + names + "}"


def _check(reg: int) -> None:
    if not 0 <= reg < NUM_REGS:
        raise ValueError(f"register index out of range: {reg}")
