"""ISA definition: registers, opcodes, instructions, ABI, binary encoding."""

from repro.isa.abi import ABI, DEFAULT_ABI, no_idvi_abi
from repro.isa.instruction import INST_BYTES, Instruction, format_instruction
from repro.isa.opcodes import OpClass, Opcode, op_class

__all__ = [
    "ABI",
    "DEFAULT_ABI",
    "INST_BYTES",
    "Instruction",
    "OpClass",
    "Opcode",
    "format_instruction",
    "no_idvi_abi",
    "op_class",
]
