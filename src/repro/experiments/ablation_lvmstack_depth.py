"""Ablation: LVM-Stack capacity.

The paper simulates a 16-entry circular LVM-Stack and reports that it
captures nearly 100% of the benefit of an unbounded structure on all
benchmarks except li (94%).  This ablation sweeps the depth and reports
each configuration's eliminated saves+restores as a fraction of the
unbounded stack's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dvi.config import DVIConfig, SRScheme
from repro.experiments.parallel import Job, execute
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table

DEPTHS: Tuple[Optional[int], ...] = (1, 2, 4, 8, 16, 32, None)


def _dvi_at_depth(depth: Optional[int]) -> DVIConfig:
    return DVIConfig(
        use_idvi=True,
        use_edvi=True,
        scheme=SRScheme.LVM_STACK,
        lvm_stack_depth=depth,
    )


def jobs(
    profile: ExperimentProfile,
    *,
    depths: Sequence[Optional[int]] = DEPTHS,
):
    """One functional cell per (save/restore workload, LVM-Stack depth)."""
    return [
        Job(kind="functional", workload=workload, dvi=_dvi_at_depth(depth),
            edvi_binary=True)
        for workload in profile.sr_workloads
        for depth in depths
    ]


@dataclass
class DepthRow:
    workload: str
    #: depth (None = unbounded) -> saves+restores eliminated.
    eliminated: Dict[Optional[int], int]

    def capture_fraction(self, depth: Optional[int]) -> float:
        """Eliminated at ``depth`` relative to the unbounded stack."""
        unbounded = self.eliminated[None]
        if not unbounded:
            return 1.0
        return self.eliminated[depth] / unbounded


@dataclass
class AblationResult:
    rows: List[DepthRow]
    depths: Tuple[Optional[int], ...]

    def format_table(self) -> str:
        headers = ["Benchmark"] + [
            "unbounded" if depth is None else str(depth) for depth in self.depths
        ]
        body = [
            [row.workload]
            + [100.0 * row.capture_fraction(depth) for depth in self.depths]
            for row in self.rows
        ]
        return format_table(
            headers, body,
            title="LVM-Stack depth ablation (% of unbounded benefit captured)",
        )


def run(
    profile: ExperimentProfile,
    context: ExperimentContext = None,
    *,
    depths: Sequence[Optional[int]] = DEPTHS,
) -> AblationResult:
    """Sweep the LVM-Stack depth over the save/restore-heavy workloads."""
    context = context or ExperimentContext(profile)
    execute(jobs(profile, depths=depths), context)
    rows: List[DepthRow] = []
    for workload in profile.sr_workloads:
        eliminated: Dict[Optional[int], int] = {}
        for depth in depths:
            stats = context.functional(
                workload, _dvi_at_depth(depth), edvi_binary=True
            ).stats
            eliminated[depth] = stats.saves_restores_eliminated
        rows.append(DepthRow(workload=workload, eliminated=eliminated))
    return AblationResult(rows=rows, depths=tuple(depths))
