"""Ablation: LVM-Stack capacity.

The paper simulates a 16-entry circular LVM-Stack and reports that it
captures nearly 100% of the benefit of an unbounded structure on all
benchmarks except li (94%).  This ablation sweeps the depth and reports
each configuration's eliminated saves+restores as a fraction of the
unbounded stack's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dvi.config import DVIConfig, SRScheme
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table
from repro.experiments.sweep import Axis, Mode, SweepSpec

DEPTHS: Tuple[Optional[int], ...] = (1, 2, 4, 8, 16, 32, None)


def _dvi_at_depth(depth: Optional[int]) -> DVIConfig:
    return DVIConfig(
        use_idvi=True,
        use_edvi=True,
        scheme=SRScheme.LVM_STACK,
        lvm_stack_depth=depth,
    )


#: One functional cell per (save/restore workload, LVM-Stack depth): the
#: swept axis *is* the DVI configuration, so the mode's DVI is a function
#: of the axis point.
SPEC = SweepSpec(
    name="ablation-lvmstack-depth",
    kind="functional",
    workloads="sr_workloads",
    modes=(
        Mode("E-DVI and I-DVI",
             lambda point: _dvi_at_depth(point["depth"]),
             edvi_binary=True),
    ),
    axes=(Axis("depth", values=DEPTHS),),
)


def jobs(
    profile: ExperimentProfile,
    *,
    depths: Sequence[Optional[int]] = DEPTHS,
):
    """The spec's cells (kept as the uniform per-experiment entry point)."""
    return SPEC.with_axis_values("depth", depths).jobs(profile)


@dataclass
class DepthRow:
    workload: str
    #: depth (None = unbounded) -> saves+restores eliminated.
    eliminated: Dict[Optional[int], int]

    def capture_fraction(self, depth: Optional[int]) -> float:
        """Eliminated at ``depth`` relative to the unbounded stack."""
        unbounded = self.eliminated[None]
        if not unbounded:
            return 1.0
        return self.eliminated[depth] / unbounded


@dataclass
class AblationResult:
    rows: List[DepthRow]
    depths: Tuple[Optional[int], ...]

    def format_table(self) -> str:
        headers = ["Benchmark"] + [
            "unbounded" if depth is None else str(depth) for depth in self.depths
        ]
        body = [
            [row.workload]
            + [100.0 * row.capture_fraction(depth) for depth in self.depths]
            for row in self.rows
        ]
        return format_table(
            headers, body,
            title="LVM-Stack depth ablation (% of unbounded benefit captured)",
        )


def run(
    profile: ExperimentProfile,
    context: ExperimentContext = None,
    *,
    depths: Sequence[Optional[int]] = DEPTHS,
) -> AblationResult:
    """Sweep the LVM-Stack depth over the save/restore-heavy workloads."""
    context = context or ExperimentContext(profile)
    spec = SPEC.with_axis_values("depth", depths)
    spec.execute(profile, context)
    (mode,) = spec.modes
    rows: List[DepthRow] = []
    for workload in spec.resolve_workloads(profile):
        eliminated: Dict[Optional[int], int] = {}
        for point in spec.points(profile):
            stats = spec.result(context, mode, workload, point).stats
            eliminated[point["depth"]] = stats.saves_restores_eliminated
        rows.append(DepthRow(workload=workload, eliminated=eliminated))
    return AblationResult(rows=rows, depths=tuple(depths))
