"""Figure 5: average IPC as a function of physical register file size.

Three curves — No DVI, I-DVI only, E-DVI and I-DVI — of the unweighted
arithmetic-mean IPC over the suite, swept over integer register file sizes.
The paper's headline shape: with I-DVI the suite reaches ~90% of peak IPC
at sizes "only a little larger than the minimum of 32 required to avoid
deadlock", and E-DVI adds little on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.runner import (
    ExperimentContext,
    ExperimentProfile,
    format_table,
    regfile_modes,
)
from repro.experiments.sweep import Axis, Mode, SweepSpec
from repro.sim.config import MachineConfig

#: The (mode x register-file size x workload) timing sweep.  Modes are
#: the three :func:`repro.experiments.runner.regfile_modes` curves
#: (No DVI / I-DVI / E-DVI and I-DVI); each cell times one workload on
#: the Figure 2 machine resized to one register-file size.
SPEC = SweepSpec(
    name="fig5",
    kind="timed",
    workloads="workloads",
    modes=tuple(
        Mode(label, dvi, edvi_binary)
        for label, dvi, edvi_binary in regfile_modes()
    ),
    axes=(Axis("size", profile_attr="regfile_sizes"),),
    machine=lambda point: MachineConfig.micro97().with_phys_regs(point["size"]),
)


@dataclass
class Fig5Result:
    sizes: List[int]
    #: mode label -> average-IPC series aligned with ``sizes``.
    curves: Dict[str, List[float]]
    #: (mode, workload) -> IPC series (per-benchmark detail).
    detail: Dict[Tuple[str, str], List[float]]

    def peak_ipc(self, mode: str) -> float:
        return max(self.curves[mode])

    def size_reaching(self, mode: str, fraction: float) -> int:
        """Smallest size whose IPC is >= ``fraction`` of the mode's peak."""
        target = fraction * self.peak_ipc(mode)
        for size, ipc in zip(self.sizes, self.curves[mode]):
            if ipc >= target:
                return size
        return self.sizes[-1]

    def format_table(self) -> str:
        labels = list(self.curves)
        rows = [
            [size] + [self.curves[label][i] for label in labels]
            for i, size in enumerate(self.sizes)
        ]
        return format_table(
            ["Registers"] + labels,
            rows,
            title="Figure 5: Average IPC vs. physical register file size",
        )


def jobs(profile: ExperimentProfile):
    """The spec's cells (kept as the uniform per-experiment entry point)."""
    return SPEC.jobs(profile)


def run(profile: ExperimentProfile, context: ExperimentContext = None) -> Fig5Result:
    """Sweep register file sizes for the three DVI modes."""
    context = context or ExperimentContext(profile)
    SPEC.execute(profile, context)
    workloads = SPEC.resolve_workloads(profile)
    sizes = list(profile.regfile_sizes)
    curves: Dict[str, List[float]] = {}
    detail: Dict[Tuple[str, str], List[float]] = {}

    for mode in SPEC.modes:
        per_workload: Dict[str, List[float]] = {w: [] for w in workloads}
        for point in SPEC.points(profile):
            for workload in workloads:
                stats = SPEC.result(context, mode, workload, point)
                per_workload[workload].append(stats.ipc)
        curves[mode.label] = [
            sum(per_workload[w][i] for w in workloads) / len(workloads)
            for i in range(len(sizes))
        ]
        for workload, series in per_workload.items():
            detail[(mode.label, workload)] = series
    return Fig5Result(sizes=sizes, curves=curves, detail=detail)
