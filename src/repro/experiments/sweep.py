"""Declarative sweep engine: one enumerator for every experiment's cells.

A figure is a *sweep*: modes (DVI settings) x axis points (machine or
scheme knobs) x workloads, each cell being one independent simulation.
Before this module, each ``fig*`` experiment hand-enumerated its own
job list; now an experiment **declares** a :class:`SweepSpec` and the
engine turns it into the :class:`~repro.experiments.parallel.Job` cells
the cache/parallel scheduler consumes.  The CLI's ``sweep`` subcommand
builds ad-hoc specs over any registered component axis (predictors,
hierarchy presets, workloads, register-file sizes) from the same four
pieces, which is what makes new scenarios declarations instead of new
modules.

Cache-key discipline: a spec never invents new key material.  Cells
resolve to the same (workload, DVI config, machine config) tuples the
:class:`~repro.experiments.runner.ExperimentContext` has always keyed
artifacts by, and machine variation is expressed through registered spec
*names* (``predictor_spec`` / ``hierarchy_spec``) or existing config
fields — so sweep-produced cells share artifacts with figure-produced
cells, and a warm cache stays warm across both.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.dvi.config import DVIConfig
from repro.experiments.parallel import Job, execute
from repro.experiments.runner import (
    ExperimentContext,
    ExperimentProfile,
    format_table,
)
from repro.registry import Registry
from repro.sim.branch.predictors import PREDICTORS
from repro.sim.cache.hierarchy import HIERARCHIES
from repro.sim.config import MachineConfig

__all__ = [
    "SWEEP_AXES",
    "Axis",
    "Mode",
    "SweepAxisSpec",
    "SweepResult",
    "SweepRow",
    "SweepSpec",
    "adhoc_spec",
    "assemble_sweep",
    "run_sweep",
    "sweep_title",
]

#: A point along the sweep's axes: axis name -> value.
Point = Mapping[str, Any]


@dataclass(frozen=True)
class Mode:
    """One DVI curve/bar of a figure.

    ``dvi`` is either a fixed :class:`DVIConfig` or a callable taking the
    axis point (for sweeps whose DVI setting *is* the axis, like the
    LVM-Stack depth ablation).
    """

    label: str
    dvi: Union[DVIConfig, Callable[[Point], DVIConfig]]
    edvi_binary: bool = False
    live_hist: bool = False

    def dvi_at(self, point: Point) -> DVIConfig:
        return self.dvi(point) if callable(self.dvi) else self.dvi


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a name plus where its values come from.

    Values come from exactly one of: a fixed tuple, a zero-argument
    callable (evaluated at enumeration time — how component axes track
    their registry), or a profile attribute (how figure sweeps scale with
    ``tiny``/``quick``/``full``).
    """

    name: str
    values: Union[Tuple[Any, ...], Callable[[], Tuple[Any, ...]], None] = None
    profile_attr: Optional[str] = None

    def resolve(self, profile: ExperimentProfile) -> Tuple[Any, ...]:
        if self.profile_attr is not None:
            return tuple(getattr(profile, self.profile_attr))
        if callable(self.values):
            return tuple(self.values())
        if self.values is None:
            raise ValueError(f"axis {self.name!r} has no value source")
        return tuple(self.values)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative experiment: kind x workloads x modes x axes.

    ``workloads`` selects the swept workload set: the name of a profile
    attribute (``"workloads"`` / ``"sr_workloads"``), an explicit name
    tuple, or a callable over the profile.  ``machine`` maps an axis
    point to the :class:`MachineConfig` timing cells run on — a fixed
    config, a callable, or ``None`` for functional sweeps.

    ``include_binary`` / ``include_traces`` add the build/trace cells a
    figure consumes directly (Figure 13 reads static code sizes and
    annotation counts; Figure 12's scheduler run needs the binaries).
    """

    name: str
    kind: str = "timed"  # "timed" | "functional"
    workloads: Union[str, Tuple[str, ...],
                     Callable[[ExperimentProfile], Sequence[str]]] = "workloads"
    modes: Tuple[Mode, ...] = ()
    axes: Tuple[Axis, ...] = ()
    machine: Union[MachineConfig, Callable[[Point], MachineConfig], None] = None
    include_binary: bool = False
    include_traces: bool = False

    # -- resolution ----------------------------------------------------

    def resolve_workloads(self, profile: ExperimentProfile) -> List[str]:
        if callable(self.workloads):
            return list(self.workloads(profile))
        if isinstance(self.workloads, str):
            return list(getattr(profile, self.workloads))
        return list(self.workloads)

    def points(self, profile: ExperimentProfile) -> Iterator[Dict[str, Any]]:
        """Every axis-value combination, outermost axis varying slowest."""
        if not self.axes:
            yield {}
            return
        resolved = [(axis.name, axis.resolve(profile)) for axis in self.axes]

        def expand(prefix: Dict[str, Any], rest) -> Iterator[Dict[str, Any]]:
            if not rest:
                yield dict(prefix)
                return
            (name, values), tail = rest[0], rest[1:]
            for value in values:
                prefix[name] = value
                yield from expand(prefix, tail)
            prefix.pop(name, None)

        yield from expand({}, resolved)

    def machine_at(self, point: Point) -> Optional[MachineConfig]:
        if callable(self.machine):
            return self.machine(point)
        return self.machine

    # -- cell enumeration ----------------------------------------------

    def jobs(self, profile: ExperimentProfile) -> List[Job]:
        """The spec's independent simulation cells, as scheduler jobs."""
        if self.kind == "timed" and self.machine is None:
            raise ValueError(
                f"spec {self.name!r} declares timed cells but no machine "
                f"source (set machine=, or kind='functional')"
            )
        workloads = self.resolve_workloads(profile)
        plan: List[Job] = []
        if self.include_binary:
            plan.extend(Job(kind="binary", workload=w) for w in workloads)
        if self.include_traces:
            for mode in self.modes:
                seen: List[DVIConfig] = []
                for point in self.points(profile):
                    dvi = mode.dvi_at(point)
                    if dvi in seen:  # trace cells do not vary with machine axes
                        continue
                    seen.append(dvi)
                    for workload in workloads:
                        plan.append(Job(kind="trace", workload=workload,
                                        dvi=dvi,
                                        edvi_binary=mode.edvi_binary))
        for mode in self.modes:
            for point in self.points(profile):
                dvi = mode.dvi_at(point)
                machine = self.machine_at(point)
                for workload in workloads:
                    if self.kind == "timed":
                        plan.append(Job(kind="timed", workload=workload,
                                        dvi=dvi, edvi_binary=mode.edvi_binary,
                                        machine=machine))
                    else:
                        plan.append(Job(kind="functional", workload=workload,
                                        dvi=dvi, edvi_binary=mode.edvi_binary,
                                        live_hist=mode.live_hist))
        return plan

    def execute(self, profile: ExperimentProfile,
                context: ExperimentContext) -> None:
        """Run (or replay from cache) every cell into the context."""
        execute(self.jobs(profile), context)

    # -- cell results --------------------------------------------------

    def result(self, context: ExperimentContext, mode: Mode, workload: str,
               point: Point = None):
        """The one cell result the context holds for (mode, workload, point).

        ``PipelineStats`` for timed sweeps, ``FunctionalResult`` for
        functional ones.
        """
        point = point or {}
        dvi = mode.dvi_at(point)
        if self.kind == "timed":
            return context.timed(workload, dvi, self.machine_at(point),
                                 edvi_binary=mode.edvi_binary)
        return context.functional(workload, dvi,
                                  edvi_binary=mode.edvi_binary,
                                  live_hist=mode.live_hist)

    # -- declarative tweaks --------------------------------------------

    def with_axis_values(self, name: str, values: Sequence[Any]) -> "SweepSpec":
        """A copy of the spec with one axis pinned to explicit values."""
        axes = tuple(
            dataclasses.replace(axis, values=tuple(values), profile_attr=None)
            if axis.name == name else axis
            for axis in self.axes
        )
        if all(axis.name != name for axis in self.axes):
            raise ValueError(f"spec {self.name!r} has no axis {name!r}")
        return dataclasses.replace(self, axes=axes)

    def with_machine(self, machine) -> "SweepSpec":
        """A copy of the spec with the machine source replaced."""
        return dataclasses.replace(self, machine=machine)

    def with_workloads(self, workloads: Sequence[str]) -> "SweepSpec":
        """A copy of the spec pinned to an explicit workload list."""
        return dataclasses.replace(self, workloads=tuple(workloads))


# ----------------------------------------------------------------------
# Generic sweep assembly: the table the CLI's ``sweep`` subcommand and
# the predictor ablation print.
# ----------------------------------------------------------------------

@dataclass
class SweepRow:
    """One assembled cell of a generic sweep table."""

    workload: str
    mode: str
    point: Dict[str, Any]
    metrics: Dict[str, float]


@dataclass
class SweepResult:
    """Generic sweep output: one row per cell, ordered mode/point/workload."""

    spec_name: str
    kind: str
    axis_names: Tuple[str, ...]
    metric_names: Tuple[str, ...]
    rows: List[SweepRow] = field(default_factory=list)
    title: str = ""

    def metric(self, metric: str, workload: str, mode: str,
               **point: Any) -> float:
        for row in self.rows:
            if (row.workload, row.mode) == (workload, mode) and all(
                row.point.get(k) == v for k, v in point.items()
            ):
                return row.metrics[metric]
        raise KeyError((metric, workload, mode, point))

    def format_table(self) -> str:
        show_mode = len({row.mode for row in self.rows}) > 1
        headers = ["Workload"] + (["Mode"] if show_mode else []) + [
            name for name in self.axis_names
        ] + [name for name in self.metric_names]
        body = [
            [row.workload] + ([row.mode] if show_mode else [])
            + [row.point[axis] for axis in self.axis_names]
            + [row.metrics[metric] for metric in self.metric_names]
            for row in self.rows
        ]
        return format_table(
            headers, body,
            title=self.title or f"Sweep: {self.spec_name}",
        )


#: Metric name -> extractor, per sweep kind.  Single source of truth for
#: both the per-row metric dicts and the table's column order.
_TIMED_METRICS = {
    "IPC": lambda stats: stats.ipc,
    "mispredict %": lambda stats: 100.0 * stats.mispredict_rate,
}

_FUNCTIONAL_METRICS = {
    "insts": lambda result: float(result.stats.program_insts),
    "eliminated": lambda result: float(
        result.stats.saves_restores_eliminated
    ),
}


# ----------------------------------------------------------------------
# Registered ad-hoc sweep axes: what ``python -m repro sweep --axis X``
# can range over.  Each axis knows its default value set (usually a
# component registry), how to parse a value from the command line, and
# how a value maps onto a machine configuration.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SweepAxisSpec:
    """One CLI-sweepable machine dimension."""

    name: str
    description: str
    default_values: Callable[[ExperimentProfile], Tuple[Any, ...]]
    parse: Callable[[str], Any]
    machine: Callable[[Any], MachineConfig]


#: Name -> :class:`SweepAxisSpec`; the ``sweep`` subcommand's ``--axis``
#: values resolve here.
SWEEP_AXES: Registry[SweepAxisSpec] = Registry("sweep axis")

SWEEP_AXES.register("predictor", SweepAxisSpec(
    name="predictor",
    description="registered branch predictors (see list --predictors)",
    default_values=lambda profile: tuple(PREDICTORS.names()),
    parse=lambda text: PREDICTORS.get(text).name,
    machine=lambda value: MachineConfig.micro97().with_predictor(value),
))

SWEEP_AXES.register("hierarchy", SweepAxisSpec(
    name="hierarchy",
    description="registered cache-hierarchy presets (see list --hierarchies)",
    default_values=lambda profile: tuple(HIERARCHIES.names()),
    parse=lambda text: HIERARCHIES.get(text).name,
    machine=lambda value: MachineConfig.micro97().with_hierarchy(value),
))

SWEEP_AXES.register("regfile", SweepAxisSpec(
    name="regfile",
    description="physical register file sizes (profile sweep by default)",
    default_values=lambda profile: tuple(profile.regfile_sizes),
    parse=int,
    machine=lambda value: MachineConfig.micro97().with_phys_regs(value),
))

SWEEP_AXES.register("ports", SweepAxisSpec(
    name="ports",
    description="independent cache ports on the Figure 2 machine",
    default_values=lambda profile: (1, 2, 3),
    parse=int,
    machine=lambda value: MachineConfig.micro97().with_ports_and_width(
        value, MachineConfig.micro97().issue_width
    ),
))


def sweep_title(axis_name: str, profile: ExperimentProfile) -> str:
    """The table title an ad-hoc sweep renders.

    One definition shared by the CLI's ``sweep`` subcommand and the
    service dispatcher: a served sweep document must stay byte-identical
    to the local run's ``--json`` output, title included.
    """
    return f"Sweep over {axis_name} ({profile.name} profile)"


def adhoc_spec(
    axis_name: str,
    profile: ExperimentProfile,
    *,
    values: Optional[Sequence[str]] = None,
    workloads: Optional[Sequence[str]] = None,
) -> SweepSpec:
    """The ``sweep`` subcommand's spec: one registered axis, no-DVI cells.

    ``values``/``workloads`` are raw command-line strings; each is parsed
    and validated through the owning registry so an unknown name fails
    with the registry's valid-name list.
    """
    axis = SWEEP_AXES.get(axis_name)
    if values is not None:
        resolved = tuple(axis.parse(text) for text in values)
    else:
        resolved = axis.default_values(profile)
    spec = SweepSpec(
        name=f"sweep-{axis_name}",
        kind="timed",
        workloads="workloads",
        modes=(Mode("No DVI", DVIConfig.none()),),
        axes=(Axis(axis.name, values=resolved),),
        machine=lambda point: axis.machine(point[axis.name]),
    )
    if workloads is not None:
        from repro.workloads.suite import get_workload

        spec = spec.with_workloads(
            tuple(get_workload(name).name for name in workloads)
        )
    return spec


def run_sweep(
    spec: SweepSpec,
    profile: ExperimentProfile,
    context: ExperimentContext = None,
    *,
    title: str = "",
) -> SweepResult:
    """Execute a spec and assemble the generic per-cell metric table."""
    context = context or ExperimentContext(profile)
    spec.execute(profile, context)
    return assemble_sweep(spec, profile, context, title=title)


def assemble_sweep(
    spec: SweepSpec,
    profile: ExperimentProfile,
    context: ExperimentContext,
    *,
    title: str = "",
) -> SweepResult:
    """Assemble a spec's metric table from an already-warmed context.

    The execute/assemble split is what lets the service dispatcher fuse
    several submitted sweeps into one :func:`~repro.experiments.parallel
    .execute` batch and then assemble each request's table individually:
    assembly only reads the context's memo layer, so it re-runs nothing.
    """
    metrics = _TIMED_METRICS if spec.kind == "timed" else _FUNCTIONAL_METRICS
    result = SweepResult(
        spec_name=spec.name,
        kind=spec.kind,
        axis_names=tuple(axis.name for axis in spec.axes),
        metric_names=tuple(metrics),
        title=title,
    )
    for mode in spec.modes:
        for point in spec.points(profile):
            for workload in spec.resolve_workloads(profile):
                cell = spec.result(context, mode, workload, point)
                result.rows.append(SweepRow(
                    workload=workload,
                    mode=mode.label,
                    point=dict(point),
                    metrics={
                        name: extract(cell)
                        for name, extract in metrics.items()
                    },
                ))
    return result
