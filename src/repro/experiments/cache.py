"""Content-addressed on-disk artifact cache for the experiment pipeline.

Every expensive artifact an experiment produces — built binaries, dynamic
traces, functional-run results, timing-simulation stats — is addressable
by a deterministic *cache key*: the SHA-256 digest of

* the artifact **kind** (``binary`` / ``trace`` / ``functional`` /
  ``timed`` / experiment-specific kinds),
* a canonical rendering of the **key tuple** (workload name, profile
  scale, :class:`~repro.dvi.config.DVIConfig`,
  :class:`~repro.sim.config.MachineConfig`, flags), and
* the **code version** — a digest of every ``.py`` file under
  ``src/repro`` — so any source change invalidates the whole store
  rather than serving stale simulations.

DESIGN.md documents the key/invalidation scheme; the short version is
that a key canonicalizes *values*, never object identities, so two
processes (or two runs on different days) that request the same cell
produce the same digest and share one artifact file.

Artifacts are pickled to ``<root>/<kind>/<digest[:2]>/<digest>.pkl``.
Writes go through a temporary file followed by :func:`os.replace`, so
concurrent writers (the :mod:`repro.experiments.parallel` worker pool)
race benignly: both compute the same bytes and the last rename wins.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Tuple

__all__ = [
    "ArtifactCache",
    "CacheCounters",
    "canonical",
    "code_version",
    "fingerprint",
]


# ----------------------------------------------------------------------
# Canonicalization and fingerprinting.
# ----------------------------------------------------------------------

def canonical(obj: Any) -> str:
    """A deterministic, value-based rendering of ``obj``.

    Handles the types experiment keys are built from: primitives,
    tuples/lists, dicts (sorted by canonical key), enums (by class and
    member name), and dataclasses (by class name and field values, which
    covers ``DVIConfig``, ``MachineConfig``, ``ABI``, and
    ``HierarchyConfig`` recursively).  Object identity, dict insertion
    order, and float formatting quirks never leak into the result.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__qualname__}({fields})"
    if isinstance(obj, Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    if isinstance(obj, dict):
        entries = sorted(
            (canonical(key), canonical(value)) for key, value in obj.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in entries) + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(canonical(item) for item in obj) + "]"
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return repr(obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for a cache key")


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical rendering of ``parts``."""
    payload = "|".join(canonical(part) for part in parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``.py`` source file under ``src/repro``.

    Baked into every cache key so that editing *any* simulator, workload,
    or experiment source invalidates previously stored artifacts — the
    coarse-but-safe invalidation rule DESIGN.md motivates.
    """
    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# The store.
# ----------------------------------------------------------------------

@dataclass
class CacheCounters:
    """Hit/miss/store tallies for one artifact kind."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class ArtifactCache:
    """A content-addressed pickle store rooted at a directory.

    ``lookup``/``store`` take an artifact *kind* plus a key tuple; the
    digest additionally covers :func:`code_version` (overridable for
    tests).  Counters are kept per kind so callers can assert properties
    like "a warm run performs zero functional or timing misses".
    """

    def __init__(self, root: os.PathLike, *, version: str = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else code_version()
        self.counters: Dict[str, CacheCounters] = {}

    # -- key handling ---------------------------------------------------

    def digest(self, kind: str, key: Tuple) -> str:
        return fingerprint(kind, key, self.version)

    def _path(self, kind: str, digest: str) -> Path:
        return self.root / kind / digest[:2] / f"{digest}.pkl"

    def _counter(self, kind: str) -> CacheCounters:
        return self.counters.setdefault(kind, CacheCounters())

    # -- store/lookup ---------------------------------------------------

    def lookup(self, kind: str, key: Tuple) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        path = self._path(kind, self.digest(kind, key))
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError):
            self._counter(kind).misses += 1
            return False, None
        self._counter(kind).hits += 1
        return True, value

    def store(self, kind: str, key: Tuple, value: Any) -> None:
        """Persist ``value`` atomically under the key's digest."""
        path = self._path(kind, self.digest(kind, key))
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._counter(kind).stores += 1

    # -- reporting ------------------------------------------------------

    def misses(self, *kinds: str) -> int:
        """Total misses, optionally restricted to the given kinds."""
        selected = kinds or tuple(self.counters)
        return sum(self._counter(kind).misses for kind in selected)

    def hits(self, *kinds: str) -> int:
        """Total hits, optionally restricted to the given kinds."""
        selected = kinds or tuple(self.counters)
        return sum(self._counter(kind).hits for kind in selected)

    def summary(self) -> str:
        """One line per kind, for the CLI's stderr report."""
        if not self.counters:
            return "cache: idle"
        parts = [
            f"{kind}: {c.hits} hit / {c.misses} miss / {c.stores} stored"
            for kind, c in sorted(self.counters.items())
        ]
        return "cache [" + "; ".join(parts) + "]"
