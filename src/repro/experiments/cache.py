"""Content-addressed on-disk artifact cache for the experiment pipeline.

Every expensive artifact an experiment produces — built binaries, dynamic
traces, functional-run results, timing-simulation stats — is addressable
by a deterministic *cache key*: the SHA-256 digest of

* the artifact **kind** (``binary`` / ``trace`` / ``functional`` /
  ``timed`` / experiment-specific kinds),
* a canonical rendering of the **key tuple** (workload name, profile
  scale, :class:`~repro.dvi.config.DVIConfig`,
  :class:`~repro.sim.config.MachineConfig`, flags), and
* the **code version** — a digest of every ``.py`` file under
  ``src/repro`` — so any source change invalidates the whole store
  rather than serving stale simulations.

DESIGN.md documents the key/invalidation scheme; the short version is
that a key canonicalizes *values*, never object identities, so two
processes (or two runs on different days) that request the same cell
produce the same digest and share one artifact file.

Artifacts are pickled to ``<root>/<kind>/<digest[:2]>/<digest>.pkl``.
Writes go through a temporary file followed by :func:`os.replace`, so
concurrent writers (the :mod:`repro.experiments.parallel` worker pool,
or several service worker processes) race benignly: both compute the
same bytes and the last rename wins.  A writer whose rename fails
because another process holds the destination open (``PermissionError``
on Windows) treats the other writer's identical artifact as its own
store.
:meth:`ArtifactCache.gc` prunes by age/size and sweeps the ``.tmp``
droppings a crashed writer can leave behind.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import os
import pickle
import tempfile
import time
from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = [
    "ArtifactCache",
    "CacheCounters",
    "CacheEntry",
    "GCReport",
    "canonical",
    "code_version",
    "fingerprint",
    "set_store_hook",
    "write_json_atomic",
]


# ----------------------------------------------------------------------
# Canonicalization and fingerprinting.
# ----------------------------------------------------------------------

def canonical(obj: Any) -> str:
    """A deterministic, value-based rendering of ``obj``.

    Handles the types experiment keys are built from: primitives,
    tuples/lists, dicts (sorted by canonical key), enums (by class and
    member name), and dataclasses (by class name and field values, which
    covers ``DVIConfig``, ``MachineConfig``, ``ABI``, and
    ``HierarchyConfig`` recursively).  Object identity, dict insertion
    order, and float formatting quirks never leak into the result.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__qualname__}({fields})"
    if isinstance(obj, Enum):
        return f"{type(obj).__qualname__}.{obj.name}"
    if isinstance(obj, dict):
        entries = sorted(
            (canonical(key), canonical(value)) for key, value in obj.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in entries) + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(canonical(item) for item in obj) + "]"
    if isinstance(obj, float) and obj.is_integer() and math.isfinite(obj):
        # Numeric aliasing: ``1`` and ``1.0`` are the same value, so
        # they must render identically or every dedup layer keyed on a
        # fingerprint (live jobs, artifacts, cells) treats equal JSON
        # requests as distinct work.  Integral floats collapse to the
        # int rendering; the change is covered by code_version, so no
        # stale artifact keyed under the old rendering can be served.
        return repr(int(obj))
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return repr(obj)
    raise TypeError(f"cannot canonicalize {type(obj).__name__} for a cache key")


def fingerprint(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical rendering of ``parts``."""
    payload = "|".join(canonical(part) for part in parts)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@lru_cache(maxsize=1)
def code_version() -> str:
    """Digest of every ``.py`` source file under ``src/repro``.

    Baked into every cache key so that editing *any* simulator, workload,
    or experiment source invalidates previously stored artifacts — the
    coarse-but-safe invalidation rule DESIGN.md motivates.  The
    superblock codegen version is folded in explicitly: the generated
    superinstruction bodies are not source files on disk, so a codegen
    change must bump :data:`repro.sim.compile.SUPERBLOCK_VERSION` to be
    sure stale artifacts can never be served.
    """
    from repro.sim.compile import SUPERBLOCK_VERSION

    package_root = Path(__file__).resolve().parents[1]
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    digest.update(f"superblocks:{SUPERBLOCK_VERSION}".encode("utf-8"))
    return digest.hexdigest()[:16]


def write_json_atomic(
    path: os.PathLike,
    payload: Any,
    *,
    indent: Optional[int] = None,
    checkpoint: Optional[Any] = None,
) -> None:
    """Write ``payload`` as JSON to ``path`` crash-safely.

    The durable-replace idiom every JSON state file in this repo uses:
    a private temp file in the destination directory, flushed and
    fsynced, then :func:`os.replace`\\ d into place — a reader sees
    either the old complete file or the new complete file, never a torn
    one.  ``checkpoint``, when given, is called with ``"write"`` /
    ``"fsync"`` / ``"rename"`` immediately before each primitive — the
    seam the service queue's crash-injection harness interposes on.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            if checkpoint is not None:
                checkpoint("write")
            json.dump(payload, handle, indent=indent, sort_keys=True)
            handle.write("\n")
            handle.flush()
            if checkpoint is not None:
                checkpoint("fsync")
            os.fsync(handle.fileno())
        if checkpoint is not None:
            checkpoint("rename")
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# The store.
# ----------------------------------------------------------------------

#: Final byte of every complete pickle stream (the STOP opcode) — the
#: cheap structural probe :meth:`ArtifactCache.readable_digest` uses to
#: reject truncated artifacts without unpickling them.
_PICKLE_STOP = b"."

#: Optional failpoint hook around the two store primitives, called as
#: ``hook(stage, path)`` with ``stage`` in ``("write", "rename")``
#: immediately before each.  The seam the shared-tier crash-injection
#: tests interpose on (a writer killed between tmp-write and rename
#: must never publish a torn artifact); ``None`` (the default) costs
#: one global read per store.
_STORE_HOOK = None


def set_store_hook(hook) -> None:
    """Install (or with ``None`` remove) the store failpoint hook."""
    global _STORE_HOOK
    _STORE_HOOK = hook

@dataclass
class CacheCounters:
    """Hit/miss/store tallies for one artifact kind.

    ``corrupt`` counts unreadable artifacts *healed* (unlinked so the
    key recomputes) — a torn shared-filesystem write, a partial copy, a
    flipped bit.  Every corrupt observation is also a miss; the
    dedicated counter exists so operators can tell "cold" from
    "something is damaging the store".
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk artifact, as the inventory scan reports it."""

    kind: str
    digest: str
    size: int
    mtime: float


@dataclass
class GCReport:
    """What one :meth:`ArtifactCache.gc` pass removed."""

    removed: int = 0
    freed_bytes: int = 0
    swept_tmp: int = 0

    def summary(self) -> str:
        return (
            f"gc: removed {self.removed} artifact(s), "
            f"freed {self.freed_bytes:,} bytes, "
            f"swept {self.swept_tmp} stale temp file(s)"
        )


class ArtifactCache:
    """A content-addressed pickle store rooted at a directory.

    ``lookup``/``store`` take an artifact *kind* plus a key tuple; the
    digest additionally covers :func:`code_version` (overridable for
    tests).  Counters are kept per kind so callers can assert properties
    like "a warm run performs zero functional or timing misses".
    """

    def __init__(self, root: os.PathLike, *, version: str = None) -> None:
        self.root = Path(root)
        self.version = version if version is not None else code_version()
        self.counters: Dict[str, CacheCounters] = {}

    # -- key handling ---------------------------------------------------

    def digest(self, kind: str, key: Tuple) -> str:
        return fingerprint(kind, key, self.version)

    def _path(self, kind: str, digest: str) -> Path:
        return self.root / kind / digest[:2] / f"{digest}.pkl"

    def _counter(self, kind: str) -> CacheCounters:
        return self.counters.setdefault(kind, CacheCounters())

    # -- store/lookup ---------------------------------------------------

    def lookup(self, kind: str, key: Tuple) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss."""
        return self.load_digest(kind, self.digest(kind, key))

    def exists(self, kind: str, key: Tuple) -> bool:
        """Whether an artifact is on disk, without loading or counting.

        A pure path probe: no unpickling (cheap enough for a server's
        event loop) and no hit/miss counter side effects.
        """
        return self.exists_digest(kind, self.digest(kind, key))

    def exists_digest(self, kind: str, digest: str) -> bool:
        """Path-probe form of :meth:`exists` for a digest already in hand."""
        return self._path(kind, digest).is_file()

    def readable_digest(self, kind: str, digest: str) -> bool:
        """Whether an artifact is on disk *and* structurally complete.

        The probe the dispatcher's instant-complete path uses instead
        of the bare path probe: a torn artifact (crashed copy into a
        shared tier, flipped disk) would otherwise let the server
        complete jobs whose results can never be read.  The check stays
        event-loop cheap — open, stat, read the final byte, require the
        pickle STOP opcode — and never unpickles.  An artifact that
        fails the probe is *healed* on the spot (unlinked + ``corrupt``
        tallied) so the key recomputes instead of wedging forever.  A
        complete-but-garbage pickle can still pass; the full unpickle
        in :meth:`load_digest` heals that residue the same way.
        """
        path = self._path(kind, digest)
        try:
            with open(path, "rb") as handle:
                handle.seek(0, os.SEEK_END)
                if handle.tell() > 0:
                    handle.seek(-1, os.SEEK_END)
                    if handle.read(1) == _PICKLE_STOP:
                        return True
        except FileNotFoundError:
            return False
        except OSError:
            pass  # unreadable for any other reason: heal below
        self._heal(kind, digest)
        return False

    def load_digest(self, kind: str, digest: str) -> Tuple[bool, Any]:
        """Like :meth:`lookup`, addressed by a digest already in hand.

        This is how the service layer serves ``GET /v1/results/<key>``:
        the key a completed job advertises *is* the artifact digest, so
        the read needs no key-tuple reconstruction.

        A load that fails with the file *present* (torn pickle,
        truncation, I/O error) heals the entry: the unreadable file is
        unlinked (tolerating a racing unlink or gc) and tallied under
        the ``corrupt`` counter, so the next probe misses cleanly and
        the key is recomputed instead of poisoned forever.
        """
        try:
            with open(self._path(kind, digest), "rb") as handle:
                value = pickle.load(handle)
        except FileNotFoundError:
            self._counter(kind).misses += 1
            return False, None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Anything the file's presence promised but its bytes could
            # not deliver.  (The unpickler surfaces garbage opcodes as
            # a grab-bag of exception types, not just UnpicklingError.)
            self._heal(kind, digest)
            self._counter(kind).misses += 1
            return False, None
        self._counter(kind).hits += 1
        return True, value

    def _heal(self, kind: str, digest: str) -> bool:
        """Unlink an unreadable artifact so its key can recompute.

        A racing heal/gc/re-store is benign: missing means someone else
        already cleared (or atomically replaced) it.  The ``corrupt``
        tally counts only files *we* removed; returns whether this call
        did the unlinking (the tiered cache's per-tier tally hooks in
        here).
        """
        try:
            os.unlink(self._path(kind, digest))
        except OSError:
            return False
        self._counter(kind).corrupt += 1
        return True

    def store(self, kind: str, key: Tuple, value: Any) -> str:
        """Persist ``value`` atomically under the key's digest.

        Safe against concurrent writers of the same key: the pickle is
        written to a private temp file in the destination directory and
        renamed into place (``os.replace`` overwrites atomically).  If
        the rename fails because another process holds the destination
        open (Windows semantics), the racing writer's artifact (same
        key, hence same bytes) is accepted as this store's result.
        Returns the artifact digest.
        """
        digest = self.digest(kind, key)
        self.store_digest(kind, digest, value)
        return digest

    def store_digest(self, kind: str, digest: str, value: Any) -> str:
        """Persist ``value`` under a digest already in hand.

        The write path :meth:`store` bottoms out in, exposed for tier
        promotion: a tiered cache that fetched an artifact from a
        shared directory or a peer already knows the digest and has no
        key tuple to recompute it from.  Same atomicity contract as
        :meth:`store`.
        """
        path = self._path(kind, digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            if _STORE_HOOK is not None:
                _STORE_HOOK("write", path)
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            if _STORE_HOOK is not None:
                _STORE_HOOK("rename", path)
            try:
                os.replace(tmp_name, path)
            except PermissionError:
                if not os.path.exists(path):
                    raise  # not a racing writer; a real permission fault
                # a racing process stored the identical artifact and a
                # reader holds it open (Windows); theirs is ours
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        if os.path.exists(tmp_name):
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
        self._counter(kind).stores += 1
        return digest

    # -- inventory and pruning ------------------------------------------

    def entries(self) -> Iterator["CacheEntry"]:
        """Every artifact on disk, as ``(kind, digest, bytes, mtime)``."""
        if not self.root.is_dir():
            return
        for kind_dir in sorted(self.root.iterdir()):
            if not kind_dir.is_dir():
                continue
            for path in sorted(kind_dir.glob("*/*.pkl")):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # pruned by a racing gc
                yield CacheEntry(
                    kind=kind_dir.name,
                    digest=path.stem,
                    size=stat.st_size,
                    mtime=stat.st_mtime,
                )

    def disk_stats(self) -> Dict[str, Tuple[int, int]]:
        """Per-kind ``(entry count, total bytes)`` from a disk scan."""
        stats: Dict[str, Tuple[int, int]] = {}
        for entry in self.entries():
            count, size = stats.get(entry.kind, (0, 0))
            stats[entry.kind] = (count + 1, size + entry.size)
        return stats

    def gc(
        self,
        *,
        max_age: Optional[float] = None,
        max_bytes: Optional[int] = None,
        now: Optional[float] = None,
    ) -> "GCReport":
        """Prune artifacts by age and/or total size; sweep stale temp files.

        ``max_age`` removes artifacts whose mtime is older than that many
        seconds; ``max_bytes`` then removes oldest-first until the store
        fits the budget.  Orphaned ``.tmp`` files (left by a writer that
        crashed mid-store) older than an hour are always swept.  Safe to
        run while readers/writers are active: a concurrently re-stored
        artifact simply reappears as a fresh entry.
        """
        now = time.time() if now is None else now
        report = GCReport()
        if self.root.is_dir():
            # Artifact-dir droppings (crashed store) and root-level ones
            # (crashed flush_counters) alike.
            for pattern in ("*/*/*.tmp", "*.tmp"):
                for tmp in self.root.glob(pattern):
                    try:
                        if now - tmp.stat().st_mtime > 3600.0:
                            tmp.unlink()
                            report.swept_tmp += 1
                    except OSError:
                        pass
        survivors = []
        for entry in self.entries():
            if max_age is not None and now - entry.mtime > max_age:
                self._remove(entry, report)
            else:
                survivors.append(entry)
        if max_bytes is not None:
            total = sum(entry.size for entry in survivors)
            for entry in sorted(survivors, key=lambda e: (e.mtime, e.digest)):
                if total <= max_bytes:
                    break
                self._remove(entry, report)
                total -= entry.size
        return report

    def _remove(self, entry: "CacheEntry", report: "GCReport") -> None:
        try:
            self._path(entry.kind, entry.digest).unlink()
        except OSError:
            return  # already gone (racing gc or writer) — not freed by us
        report.removed += 1
        report.freed_bytes += entry.size

    # -- persistent counters --------------------------------------------
    #
    # In-memory counters die with the process; the service's /v1/stats
    # and the ``repro cache stats`` CLI want lifetime hit/miss tallies
    # for a cache *directory*.  ``flush_counters`` folds this process's
    # tallies into ``<root>/counters.json`` (atomic replace; concurrent
    # flushes may lose each other's increments, which keeps the file
    # best-effort/approximate by design) and resets the in-memory side.

    _COUNTERS_FILE = "counters.json"

    def persistent_counters(self) -> Dict[str, Dict[str, int]]:
        """Lifetime per-kind tallies previously flushed to this root."""
        try:
            with open(self.root / self._COUNTERS_FILE, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError):
            return {}
        return data if isinstance(data, dict) else {}

    def flush_counters(self) -> None:
        """Fold this process's counters into the root's lifetime tallies.

        Concurrency-friendly drain: the flushed amounts are snapshotted
        first and *subtracted* from the live counter objects afterwards
        (rather than swapping in a fresh dict), so increments arriving
        from other threads mid-flush are carried to the next flush
        instead of being dropped with an orphaned object.
        """
        snapshot = [
            (kind, counter, counter.hits, counter.misses, counter.stores,
             counter.corrupt)
            for kind, counter in list(self.counters.items())
        ]
        if not any(h or m or s or c for _, _, h, m, s, c in snapshot):
            return
        merged = self.persistent_counters()
        for kind, _, hits, misses, stores, corrupt in snapshot:
            slot = merged.setdefault(
                kind, {"hits": 0, "misses": 0, "stores": 0, "corrupt": 0}
            )
            slot["hits"] = slot.get("hits", 0) + hits
            slot["misses"] = slot.get("misses", 0) + misses
            slot["stores"] = slot.get("stores", 0) + stores
            slot["corrupt"] = slot.get("corrupt", 0) + corrupt
        write_json_atomic(self.root / self._COUNTERS_FILE, merged, indent=2)
        for _, counter, hits, misses, stores, corrupt in snapshot:
            counter.hits -= hits
            counter.misses -= misses
            counter.stores -= stores
            counter.corrupt -= corrupt

    # -- reporting ------------------------------------------------------

    def misses(self, *kinds: str) -> int:
        """Total misses, optionally restricted to the given kinds."""
        selected = kinds or tuple(self.counters)
        return sum(self._counter(kind).misses for kind in selected)

    def hits(self, *kinds: str) -> int:
        """Total hits, optionally restricted to the given kinds."""
        selected = kinds or tuple(self.counters)
        return sum(self._counter(kind).hits for kind in selected)

    def summary(self) -> str:
        """One line per kind, for the CLI's stderr report."""
        if not self.counters:
            return "cache: idle"
        parts = [
            f"{kind}: {c.hits} hit / {c.misses} miss / {c.stores} stored"
            + (f" / {c.corrupt} corrupt healed" if c.corrupt else "")
            for kind, c in sorted(self.counters.items())
        ]
        return "cache [" + "; ".join(parts) + "]"
