"""Parallel execution of experiment sweeps.

Every figure's sweep decomposes into independent *cells*: one functional
or timing simulation of one (workload, DVI configuration, machine
configuration) point.  Experiment modules enumerate their cells as
:class:`Job` lists (their ``jobs(profile)`` functions); :func:`execute`
runs a job list to completion — serially in-process, or fanned out over a
``multiprocessing`` worker pool when the context's ``jobs`` knob asks for
parallelism — and merges every result back into the parent
:class:`~repro.experiments.runner.ExperimentContext` caches.

Determinism: workers only *compute* cells; the parent merges results in
job-list order and every experiment assembles its figure from the warmed
context afterwards, in plain deterministic Python.  A parallel run is
therefore bit-identical to a serial one (the test suite asserts this),
and the merge order never depends on worker completion order because
``Pool.map`` preserves input order.

Workers are initialized with the profile and the cache directory, so all
processes share one content-addressed disk store (writes are atomic; see
:mod:`repro.experiments.cache`) and a warm cache benefits every worker.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.dvi.config import DVIConfig
from repro.experiments.cache import ArtifactCache, CacheCounters, fingerprint
from repro.experiments.runner import ExperimentContext, ExperimentProfile
from repro.sim.config import MachineConfig

__all__ = ["Job", "execute"]

#: Job kinds, in the order a cell's dependency chain runs them.
KINDS = ("binary", "functional", "trace", "timed")


@dataclass(frozen=True)
class Job:
    """One independent simulation cell of an experiment sweep.

    ``kind`` selects the artifact the cell produces:

    * ``"binary"`` — build the workload (both E-DVI variants),
    * ``"functional"`` — an architectural run (stats, no trace),
    * ``"trace"`` — a full dynamic trace,
    * ``"timed"`` — an out-of-order timing simulation (requires
      ``machine``; generates the trace as a dependency).
    """

    kind: str
    workload: str
    dvi: Optional[DVIConfig] = None
    edvi_binary: bool = False
    machine: Optional[MachineConfig] = None
    live_hist: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown job kind {self.kind!r}")
        if self.kind == "timed" and self.machine is None:
            raise ValueError("timed jobs need a machine config")
        if self.kind in ("functional", "trace", "timed") and self.dvi is None:
            raise ValueError(f"{self.kind} jobs need a DVI config")

    def signature(self) -> str:
        """Value-based identity, for deduplication across figures."""
        return fingerprint(
            self.kind, self.workload, self.dvi, self.edvi_binary,
            self.machine, self.live_hist,
        )

    def dependencies(self) -> List["Job"]:
        """The implicit upstream cells running this cell materializes.

        A ``timed`` cell generates its trace (and the trace its binary)
        on a cache miss without those cells ever being enumerated in a
        job list.  Cross-batch dedup that only registers enumerated
        cells therefore lets two concurrent batches race the shared
        dependency artifacts; claiming the closure returned here closes
        that gap.  The ``binary`` dependency deliberately uses the
        default field values so its signature matches an enumerated
        ``binary`` cell (one build produces both E-DVI variants).
        """
        if self.kind == "binary":
            return []
        binary = Job("binary", self.workload)
        if self.kind in ("functional", "trace"):
            return [binary]
        return [
            binary,
            Job("trace", self.workload, dvi=self.dvi,
                edvi_binary=self.edvi_binary),
        ]


# ----------------------------------------------------------------------
# Running one job inside a context (used by both serial and worker paths).
# ----------------------------------------------------------------------

def _run_job(job: Job, context: ExperimentContext) -> Any:
    if job.kind == "binary":
        context.binary(job.workload, edvi=True)
        return (
            context.binary(job.workload, edvi=False),
            context.binary(job.workload, edvi=True),
        )
    if job.kind == "functional":
        return context.functional(
            job.workload, job.dvi,
            edvi_binary=job.edvi_binary, live_hist=job.live_hist,
        )
    if job.kind == "trace":
        return context.trace(job.workload, job.dvi, edvi_binary=job.edvi_binary)
    return context.timed(
        job.workload, job.dvi, job.machine, edvi_binary=job.edvi_binary
    )


def _satisfied(job: Job, context: ExperimentContext) -> bool:
    """True if the parent's in-memory caches already hold the cell."""
    if job.kind == "binary":
        return (job.workload, True) in context._binaries
    if job.kind == "functional":
        key = (job.workload, job.edvi_binary, job.dvi, job.live_hist)
        return key in context._functional
    if job.kind == "trace":
        return (job.workload, job.edvi_binary, job.dvi) in context._traces
    return (
        fingerprint(
            context._timed_key(job.workload, job.dvi, job.machine, job.edvi_binary)
        )
        in context._timed
    )


def _absorb(job: Job, value: Any, context: ExperimentContext) -> None:
    """Merge one worker-computed result into the parent's memo layer."""
    if job.kind == "binary":
        plain, annotated = value
        context._binaries[(job.workload, False)] = plain
        context._binaries[(job.workload, True)] = annotated
    elif job.kind == "functional":
        key = (job.workload, job.edvi_binary, job.dvi, job.live_hist)
        context._functional[key] = value
    elif job.kind == "trace":
        context._traces[(job.workload, job.edvi_binary, job.dvi)] = value
    else:
        memo_key = fingerprint(
            context._timed_key(job.workload, job.dvi, job.machine, job.edvi_binary)
        )
        context._timed[memo_key] = value


# ----------------------------------------------------------------------
# Worker-pool plumbing.  Workers build a private ExperimentContext (with
# its own ArtifactCache instance aimed at the shared directory) once per
# process, then execute job after job against it.
# ----------------------------------------------------------------------

_WORKER_CONTEXT: Optional[ExperimentContext] = None


def _worker_init(profile: ExperimentProfile, cache_root: Optional[str]) -> None:
    global _WORKER_CONTEXT
    cache = ArtifactCache(cache_root) if cache_root else None
    _WORKER_CONTEXT = ExperimentContext(profile, cache=cache)


def _worker_run(job: Job) -> Tuple[Any, dict]:
    """Run one job; return its result plus the cache-counter delta.

    Each worker's ArtifactCache keeps its own counters, so the parent
    would otherwise report a near-idle cache after a parallel run.
    Counters are drained (returned and reset) per job and merged back by
    :func:`execute`.
    """
    assert _WORKER_CONTEXT is not None, "worker pool not initialized"
    value = _run_job(job, _WORKER_CONTEXT)
    deltas = {}
    if _WORKER_CONTEXT.cache is not None:
        for kind, counter in _WORKER_CONTEXT.cache.counters.items():
            deltas[kind] = (counter.hits, counter.misses, counter.stores,
                            counter.corrupt)
        _WORKER_CONTEXT.cache.counters.clear()
    return value, deltas


# ----------------------------------------------------------------------
# The scheduler entry point.
# ----------------------------------------------------------------------

def execute(
    jobs: Sequence[Job],
    context: ExperimentContext,
    *,
    mp_context=None,
) -> int:
    """Run every cell in ``jobs``, warming the context's caches.

    Cells already present in the context (in memory) are skipped; the
    remainder is deduplicated by value signature and executed either
    in-process (``context.jobs == 1``) or on a worker pool of
    ``context.jobs`` processes.  On return, every cell in ``jobs`` is
    resident in the context's memo layer, so the calling experiment's
    assembly phase runs entirely from cache.

    ``mp_context`` selects the multiprocessing start method for the
    pool.  The default (fork on Linux) is right for the CLI, which
    forks from a single-threaded parent; the service dispatcher passes
    a ``spawn`` context because it calls from a worker thread of a
    process that also runs an asyncio event loop, where forking can
    inherit held locks.

    Returns the number of cells actually executed (after skip/dedup) —
    the service dispatcher reports this as its batching effectiveness.
    """
    pending: List[Job] = []
    seen = set()
    for job in jobs:
        signature = job.signature()
        if signature in seen or _satisfied(job, context):
            continue
        seen.add(signature)
        pending.append(job)
    if not pending:
        return 0

    workers = min(context.jobs, len(pending))
    if workers <= 1:
        for job in pending:
            _run_job(job, context)
        return len(pending)

    cache_root = str(context.cache.root) if context.cache is not None else None
    pool_factory = (mp_context or multiprocessing).Pool
    with pool_factory(
        processes=workers,
        initializer=_worker_init,
        initargs=(context.profile, cache_root),
    ) as pool:
        results = pool.map(_worker_run, pending)
    for job, (value, deltas) in zip(pending, results):
        _absorb(job, value, context)
        if context.cache is not None:
            for kind, (hits, misses, stores, corrupt) in deltas.items():
                counter = context.cache.counters.setdefault(
                    kind, CacheCounters()
                )
                counter.hits += hits
                counter.misses += misses
                counter.stores += stores
                counter.corrupt += corrupt
    return len(pending)
