"""Figure 3: benchmark characterization.

Dynamic instruction count, and calls / memory references / saves+restores
as a percentage of total dynamic instructions, for every workload — plus
the Figure 2 machine description for context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dvi.config import DVIConfig
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table
from repro.experiments.sweep import Mode, SweepSpec
from repro.sim.config import MachineConfig

#: One no-DVI functional cell per workload in the suite.
SPEC = SweepSpec(
    name="fig3",
    kind="functional",
    workloads="workloads",
    modes=(Mode("baseline", DVIConfig.none()),),
)


@dataclass
class CharacterizationRow:
    workload: str
    dynamic_insts: int
    pct_calls: float
    pct_mem: float
    pct_saves_restores: float


@dataclass
class Fig3Result:
    rows: List[CharacterizationRow]

    def by_name(self) -> Dict[str, CharacterizationRow]:
        return {row.workload: row for row in self.rows}

    def format_table(self) -> str:
        return format_table(
            ["Benchmark", "Dynamic Inst", "Call Inst %", "Mem Inst %",
             "Saves & Restores %"],
            [
                [r.workload, r.dynamic_insts, r.pct_calls, r.pct_mem,
                 r.pct_saves_restores]
                for r in self.rows
            ],
            title="Figure 3: Benchmark characterization",
        )


def jobs(profile: ExperimentProfile):
    """The spec's cells (kept as the uniform per-experiment entry point)."""
    return SPEC.jobs(profile)


def run(profile: ExperimentProfile, context: ExperimentContext = None) -> Fig3Result:
    """Characterize every workload with one functional run each."""
    context = context or ExperimentContext(profile)
    SPEC.execute(profile, context)
    (mode,) = SPEC.modes
    rows = []
    for name in SPEC.resolve_workloads(profile):
        stats = SPEC.result(context, mode, name).stats
        rows.append(
            CharacterizationRow(
                workload=name,
                dynamic_insts=stats.program_insts,
                pct_calls=stats.pct_calls,
                pct_mem=stats.pct_mem,
                pct_saves_restores=stats.pct_saves_restores,
            )
        )
    return Fig3Result(rows=rows)


def machine_description() -> str:
    """The Figure 2 configuration table."""
    return "Figure 2: Machine configuration\n" + MachineConfig.micro97().describe()
