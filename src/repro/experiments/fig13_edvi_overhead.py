"""Figure 13: E-DVI overhead.

Compares the E-DVI-annotated binary against the annotation-free one *with
all DVI optimizations disabled* (annotations are fetched and decoded as
pure overhead), at two I-cache sizes.  Reported per workload: percentage
overhead in dynamic instructions fetched, in static code size, and in IPC
(negative IPC overhead = the annotated binary ran faster — alignment
noise, which the paper also observes).  Expected shape: all values are
small; the IPC cost is bounded by the fetch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dvi.config import DVIConfig
from repro.experiments.parallel import Job, execute
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table
from repro.sim.config import MachineConfig

ICACHE_SIZES = (32 * 1024, 64 * 1024)


def jobs(profile: ExperimentProfile):
    """Binary, trace, and per-I-cache-size timing cells for each workload.

    Every cell runs the Figure 13 DVI setting (annotations present but
    unexploited), once with the plain binary and once with the annotated
    one.
    """
    dvi = DVIConfig.edvi_overhead()
    plan = []
    for workload in profile.workloads:
        plan.append(Job(kind="binary", workload=workload))
        for edvi_binary in (False, True):
            plan.append(Job(kind="trace", workload=workload, dvi=dvi,
                            edvi_binary=edvi_binary))
            for icache in ICACHE_SIZES:
                config = MachineConfig.micro97_unconstrained().with_icache(icache)
                plan.append(Job(kind="timed", workload=workload, dvi=dvi,
                                edvi_binary=edvi_binary, machine=config))
    return plan


@dataclass
class OverheadRow:
    workload: str
    pct_dynamic: float   # extra dynamic fetches
    pct_static: float    # extra code size
    #: I-cache size (bytes) -> IPC overhead percent (positive = slower).
    pct_ipc: Dict[int, float]


@dataclass
class Fig13Result:
    rows: List[OverheadRow]

    def by_workload(self) -> Dict[str, OverheadRow]:
        return {row.workload: row for row in self.rows}

    def format_table(self) -> str:
        headers = ["Benchmark", "Dyn inst %", "Code size %"] + [
            f"IPC % ({size // 1024}K I$)" for size in ICACHE_SIZES
        ]
        rows = [
            [r.workload, r.pct_dynamic, r.pct_static]
            + [r.pct_ipc[size] for size in ICACHE_SIZES]
            for r in self.rows
        ]
        return format_table(
            headers, rows, title="Figure 13: E-DVI overhead (unexploited annotations)"
        )


def run(profile: ExperimentProfile, context: ExperimentContext = None) -> Fig13Result:
    """Measure dynamic, static, and IPC overheads of the annotations."""
    context = context or ExperimentContext(profile)
    execute(jobs(profile), context)
    dvi = DVIConfig.edvi_overhead()
    rows: List[OverheadRow] = []
    for workload in profile.workloads:
        plain = context.binary(workload, edvi=False)
        annotated = context.binary(workload, edvi=True)
        pct_static = 100.0 * (len(annotated.insts) - len(plain.insts)) / len(plain.insts)

        base_trace = context.trace(workload, dvi, edvi_binary=False)
        edvi_trace = context.trace(workload, dvi, edvi_binary=True)
        pct_dynamic = (
            100.0 * edvi_trace.annotation_insts / edvi_trace.program_insts
        )

        pct_ipc: Dict[int, float] = {}
        for icache in ICACHE_SIZES:
            config = MachineConfig.micro97_unconstrained().with_icache(icache)
            base = context.timed(workload, dvi, config, edvi_binary=False)
            with_edvi = context.timed(workload, dvi, config, edvi_binary=True)
            pct_ipc[icache] = 100.0 * (1.0 - with_edvi.ipc / base.ipc)
        rows.append(
            OverheadRow(
                workload=workload,
                pct_dynamic=pct_dynamic,
                pct_static=pct_static,
                pct_ipc=pct_ipc,
            )
        )
    return Fig13Result(rows=rows)
