"""Figure 13: E-DVI overhead.

Compares the E-DVI-annotated binary against the annotation-free one *with
all DVI optimizations disabled* (annotations are fetched and decoded as
pure overhead), at two I-cache sizes.  Reported per workload: percentage
overhead in dynamic instructions fetched, in static code size, and in IPC
(negative IPC overhead = the annotated binary ran faster — alignment
noise, which the paper also observes).  Expected shape: all values are
small; the IPC cost is bounded by the fetch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dvi.config import DVIConfig
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table
from repro.experiments.sweep import Axis, Mode, SweepSpec
from repro.sim.config import MachineConfig

ICACHE_SIZES = (32 * 1024, 64 * 1024)

#: Binary, trace, and per-I-cache-size timing cells for each workload.
#: Every cell runs the Figure 13 DVI setting (annotations present but
#: unexploited), once with the plain binary and once with the annotated
#: one.
SPEC = SweepSpec(
    name="fig13",
    kind="timed",
    workloads="workloads",
    modes=(
        Mode("plain", DVIConfig.edvi_overhead()),
        Mode("annotated", DVIConfig.edvi_overhead(), edvi_binary=True),
    ),
    axes=(Axis("icache", values=ICACHE_SIZES),),
    machine=lambda point: MachineConfig.micro97_unconstrained()
    .with_icache(point["icache"]),
    include_binary=True,
    include_traces=True,
)


def jobs(profile: ExperimentProfile):
    """The spec's cells (kept as the uniform per-experiment entry point)."""
    return SPEC.jobs(profile)


@dataclass
class OverheadRow:
    workload: str
    pct_dynamic: float   # extra dynamic fetches
    pct_static: float    # extra code size
    #: I-cache size (bytes) -> IPC overhead percent (positive = slower).
    pct_ipc: Dict[int, float]


@dataclass
class Fig13Result:
    rows: List[OverheadRow]

    def by_workload(self) -> Dict[str, OverheadRow]:
        return {row.workload: row for row in self.rows}

    def format_table(self) -> str:
        headers = ["Benchmark", "Dyn inst %", "Code size %"] + [
            f"IPC % ({size // 1024}K I$)" for size in ICACHE_SIZES
        ]
        rows = [
            [r.workload, r.pct_dynamic, r.pct_static]
            + [r.pct_ipc[size] for size in ICACHE_SIZES]
            for r in self.rows
        ]
        return format_table(
            headers, rows, title="Figure 13: E-DVI overhead (unexploited annotations)"
        )


def run(profile: ExperimentProfile, context: ExperimentContext = None) -> Fig13Result:
    """Measure dynamic, static, and IPC overheads of the annotations."""
    context = context or ExperimentContext(profile)
    SPEC.execute(profile, context)
    dvi = DVIConfig.edvi_overhead()
    plain_mode, annotated_mode = SPEC.modes
    rows: List[OverheadRow] = []
    for workload in SPEC.resolve_workloads(profile):
        plain = context.binary(workload, edvi=False)
        annotated = context.binary(workload, edvi=True)
        pct_static = 100.0 * (len(annotated.insts) - len(plain.insts)) / len(plain.insts)

        edvi_trace = context.trace(workload, dvi, edvi_binary=True)
        pct_dynamic = (
            100.0 * edvi_trace.annotation_insts / edvi_trace.program_insts
        )

        pct_ipc: Dict[int, float] = {}
        for point in SPEC.points(profile):
            base = SPEC.result(context, plain_mode, workload, point)
            with_edvi = SPEC.result(context, annotated_mode, workload, point)
            pct_ipc[point["icache"]] = 100.0 * (1.0 - with_edvi.ipc / base.ipc)
        rows.append(
            OverheadRow(
                workload=workload,
                pct_dynamic=pct_dynamic,
                pct_static=pct_static,
                pct_ipc=pct_ipc,
            )
        )
    return Fig13Result(rows=rows)
