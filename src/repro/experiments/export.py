"""Deterministic JSON export of experiment results.

Every ``Fig*Result`` is a tree of dataclasses, lists, and dicts (some
keyed by tuples or ints); :func:`to_jsonable` lowers that tree to plain
JSON types without losing information, and :func:`render_manifest`
assembles the ``--json`` payload the CLI writes.

Determinism matters here: the acceptance bar for the pipeline is that a
parallel run's JSON is *byte-identical* to a serial run's, so nothing
time-, path-, or host-dependent may enter the payload, and key order is
the deterministic assembly order of the results themselves.
"""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from typing import Any, Dict

__all__ = ["to_jsonable", "render_manifest"]


def _key_str(key: Any) -> str:
    """Lower a dict key to a stable string (JSON keys must be strings)."""
    if isinstance(key, str):
        return key
    if key is None:
        return "null"
    if isinstance(key, tuple):
        return "|".join(_key_str(part) for part in key)
    if isinstance(key, Enum):
        return key.name
    return str(key)


def to_jsonable(obj: Any) -> Any:
    """Recursively lower dataclasses/enums/tuple-keyed dicts to JSON types."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, Enum):
        return obj.name
    if isinstance(obj, dict):
        return {_key_str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(item) for item in obj]
    return obj


def render_manifest(profile_name: str, results: Dict[str, Any]) -> str:
    """The ``--json`` document: profile + every result's data and table.

    ``results`` maps experiment id (``fig3`` ... ``ablation``) to its
    ``Fig*Result`` in execution order.
    """
    payload = {
        "profile": profile_name,
        "results": {
            name: {
                "table": result.format_table(),
                "data": to_jsonable(result),
            }
            for name, result in results.items()
        },
    }
    return json.dumps(payload, indent=2) + "\n"
