"""Ablation: branch-predictor comparison over the registered predictors.

A scenario the paper never ran (its machine fixes the combining
gshare/bimod predictor) that the component registry makes a declaration:
one no-DVI timing cell per (workload, registered predictor) on the
otherwise-unchanged Figure 2 machine, reporting IPC and mispredict rate.
Expected shape: ``comb`` >= its components (``gshare``, ``bimodal``) >=
``local`` on these interleaved synthetic kernels, with ``static-taken``
the floor — and the IPC spread quantifies how much the Figure 2 machine's
performance depends on its predictor.

The sweep axis tracks :data:`~repro.sim.branch.predictors.PREDICTORS`
at enumeration time, so a newly registered predictor joins this ablation
(and ``run-all``) without this module changing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dvi.config import DVIConfig
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table
from repro.experiments.sweep import Axis, Mode, SweepSpec
from repro.sim.branch.predictors import PREDICTORS
from repro.sim.config import MachineConfig

#: One no-DVI timing cell per (registered predictor, workload).
SPEC = SweepSpec(
    name="ablation-predictor",
    kind="timed",
    workloads="workloads",
    modes=(Mode("No DVI", DVIConfig.none()),),
    axes=(Axis("predictor", values=lambda: tuple(PREDICTORS.names())),),
    machine=lambda point: MachineConfig.micro97().with_predictor(
        point["predictor"]
    ),
)


@dataclass
class PredictorRow:
    workload: str
    predictor: str
    ipc: float
    mispredict_pct: float


@dataclass
class PredictorAblationResult:
    predictors: List[str]
    rows: List[PredictorRow]

    def by_cell(self) -> Dict[tuple, PredictorRow]:
        return {(row.workload, row.predictor): row for row in self.rows}

    def average_ipc(self, predictor: str) -> float:
        rows = [row for row in self.rows if row.predictor == predictor]
        return sum(row.ipc for row in rows) / len(rows)

    def best(self) -> str:
        """The registered predictor with the highest suite-average IPC."""
        return max(self.predictors, key=self.average_ipc)

    def format_table(self) -> str:
        table = format_table(
            ["Benchmark", "Predictor", "IPC", "Mispredict %"],
            [
                [row.workload, row.predictor, row.ipc, row.mispredict_pct]
                for row in self.rows
            ],
            title="Predictor ablation: IPC by registered branch predictor",
        )
        averages = ", ".join(
            f"{name} {self.average_ipc(name):.3f}" for name in self.predictors
        )
        return table + f"\nSuite-average IPC: {averages}"


def jobs(profile: ExperimentProfile):
    """The spec's cells (kept as the uniform per-experiment entry point)."""
    return SPEC.jobs(profile)


def run(
    profile: ExperimentProfile, context: ExperimentContext = None
) -> PredictorAblationResult:
    """Time every workload under every registered predictor."""
    context = context or ExperimentContext(profile)
    SPEC.execute(profile, context)
    (mode,) = SPEC.modes
    rows: List[PredictorRow] = []
    predictors: List[str] = []
    for point in SPEC.points(profile):
        predictors.append(point["predictor"])
        for workload in SPEC.resolve_workloads(profile):
            stats = SPEC.result(context, mode, workload, point)
            rows.append(
                PredictorRow(
                    workload=workload,
                    predictor=point["predictor"],
                    ipc=stats.ipc,
                    mispredict_pct=100.0 * stats.mispredict_rate,
                )
            )
    return PredictorAblationResult(predictors=predictors, rows=rows)
