"""Figure 9: dynamic saves and restores eliminated.

For the six save/restore-heavy workloads, the fraction of dynamic work the
LVM (saves only) and LVM-Stack (saves + restores) schemes eliminate,
expressed three ways exactly as the paper charts them: as a percentage of
(a) total callee saves+restores, (b) total memory references, and (c) total
instructions.  Paper averages for the LVM-Stack scheme: 46.5% / 11.1% /
4.8%, with perl leading at 74.6% of its saves+restores.

These fractions are "a property of the program and the amount of available
DVI ... independent of the processor configuration" (section 5.3), so the
experiment needs only functional runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dvi.config import DVIConfig, SRScheme
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table
from repro.experiments.sweep import Mode, SweepSpec

#: The two hardware schemes Figure 9 compares, in chart order.
SCHEMES = ((SRScheme.LVM, "LVM"), (SRScheme.LVM_STACK, "LVM-Stack"))

#: One E-DVI functional cell per (scheme, save/restore-heavy workload).
SPEC = SweepSpec(
    name="fig9",
    kind="functional",
    workloads="sr_workloads",
    modes=tuple(
        Mode(label, DVIConfig.full(scheme), edvi_binary=True)
        for scheme, label in SCHEMES
    ),
)


@dataclass
class EliminationRow:
    workload: str
    scheme: str  # "LVM" or "LVM-Stack"
    saves_restores: int
    eliminated: int
    pct_of_saves_restores: float
    pct_of_mem_refs: float
    pct_of_insts: float


@dataclass
class Fig9Result:
    rows: List[EliminationRow]

    def rows_for(self, scheme: str) -> List[EliminationRow]:
        return [row for row in self.rows if row.scheme == scheme]

    def average(self, scheme: str, metric: str) -> float:
        rows = self.rows_for(scheme)
        return sum(getattr(row, metric) for row in rows) / len(rows)

    def by_workload(self, scheme: str) -> Dict[str, EliminationRow]:
        return {row.workload: row for row in self.rows_for(scheme)}

    def format_table(self) -> str:
        table = format_table(
            ["Benchmark", "Scheme", "% of saves+restores", "% of mem refs",
             "% of insts"],
            [
                [r.workload, r.scheme, r.pct_of_saves_restores,
                 r.pct_of_mem_refs, r.pct_of_insts]
                for r in self.rows
            ],
            title="Figure 9: Dynamic saves and restores eliminated",
        )
        summary = (
            f"\nLVM-Stack averages: "
            f"{self.average('LVM-Stack', 'pct_of_saves_restores'):.1f}% of "
            f"saves+restores, "
            f"{self.average('LVM-Stack', 'pct_of_mem_refs'):.1f}% of memory "
            f"references, "
            f"{self.average('LVM-Stack', 'pct_of_insts'):.1f}% of instructions"
        )
        return table + summary


def jobs(profile: ExperimentProfile):
    """The spec's cells (kept as the uniform per-experiment entry point)."""
    return SPEC.jobs(profile)


def run(profile: ExperimentProfile, context: ExperimentContext = None) -> Fig9Result:
    """Measure elimination under both hardware schemes."""
    context = context or ExperimentContext(profile)
    SPEC.execute(profile, context)
    rows: List[EliminationRow] = []
    for mode in SPEC.modes:
        label = mode.label
        for workload in SPEC.resolve_workloads(profile):
            stats = SPEC.result(context, mode, workload).stats
            eliminated = stats.saves_restores_eliminated
            rows.append(
                EliminationRow(
                    workload=workload,
                    scheme=label,
                    saves_restores=stats.saves_restores,
                    eliminated=eliminated,
                    pct_of_saves_restores=(
                        100.0 * eliminated / stats.saves_restores
                        if stats.saves_restores else 0.0
                    ),
                    pct_of_mem_refs=(
                        100.0 * eliminated / stats.mem_refs
                        if stats.mem_refs else 0.0
                    ),
                    pct_of_insts=(
                        100.0 * eliminated / stats.program_insts
                        if stats.program_insts else 0.0
                    ),
                )
            )
    return Fig9Result(rows=rows)
