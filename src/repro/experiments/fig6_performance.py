"""Figure 6: overall performance (IPC / register-file cycle time) vs. size.

Divides the Figure 5 IPC curves by the CACTI-style access-time model and
normalizes to the no-DVI peak.  The paper's result: the performance-optimal
file shrinks from 64 to 50 registers (a 22% reduction) and peak performance
improves by 1.1%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.fig5_regfile_ipc import (
    Fig5Result,
    jobs as fig5_jobs,
    run as run_fig5,
)
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table
from repro.timing.regfile import RegFileTimingModel
from repro.timing.system import PerformanceCurves, performance_curves

_REFERENCE = "No DVI"
_OPTIMIZED = "E-DVI and I-DVI"


def jobs(profile: ExperimentProfile):
    """Figure 6 simulates nothing new: its cells are exactly Figure 5's.

    The IPC data comes from the same :func:`~repro.experiments.runner.
    regfile_modes` x size x workload sweep; this figure only composes it
    with the analytic register-file timing model.
    """
    return fig5_jobs(profile)


@dataclass
class Fig6Result:
    curves: PerformanceCurves
    improvement: float       # fractional peak-to-peak gain of full DVI
    size_reduction: float    # fractional optimal-size reduction
    reference_peak_size: int
    optimized_peak_size: int

    def format_table(self) -> str:
        labels = list(self.curves.curves)
        rows = [
            [size] + [self.curves.curves[label][i] for label in labels]
            for i, size in enumerate(self.curves.sizes)
        ]
        table = format_table(
            ["Registers"] + labels,
            rows,
            title="Figure 6: Relative performance vs. register file size",
        )
        summary = (
            f"\nPeak design points: {_REFERENCE} at "
            f"{self.reference_peak_size} registers, {_OPTIMIZED} at "
            f"{self.optimized_peak_size} registers "
            f"({self.size_reduction:.0%} size reduction); "
            f"peak performance improvement {self.improvement:+.1%}"
        )
        return table + summary


def run(
    profile: ExperimentProfile,
    context: ExperimentContext = None,
    *,
    fig5: Optional[Fig5Result] = None,
    model: RegFileTimingModel = RegFileTimingModel(),
) -> Fig6Result:
    """Compose Figure 5 IPC with the register-file timing model."""
    context = context or ExperimentContext(profile)
    fig5 = fig5 or run_fig5(profile, context)
    curves = performance_curves(
        fig5.sizes,
        {label: series for label, series in fig5.curves.items()},
        reference_label=_REFERENCE,
        issue_width=4,
        model=model,
    )
    return Fig6Result(
        curves=curves,
        improvement=curves.improvement(_OPTIMIZED),
        size_reduction=curves.size_reduction(_OPTIMIZED),
        reference_peak_size=curves.peaks[_REFERENCE].registers,
        optimized_peak_size=curves.peaks[_OPTIMIZED].registers,
    )
