"""Figure 11: cache bandwidth sensitivity of save/restore elimination.

LVM-Stack speedup over baseline for gcc-like and ijpeg-like across cache
port counts (1, 2, 3) and issue widths (4-way, 8-way).  Paper shape: the
optimization matters more the fewer ports the machine has (eliminated
saves/restores compete for data bandwidth), and widening issue raises the
bandwidth demand again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.dvi.config import DVIConfig, SRScheme
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table
from repro.experiments.sweep import Axis, Mode, SweepSpec
from repro.sim.config import MachineConfig

#: The two benchmarks the paper charts.
FIG11_WORKLOADS = ("gcc_like", "ijpeg_like")
PORT_COUNTS = (1, 2, 3)
ISSUE_WIDTHS = (4, 8)

#: Baseline + LVM-Stack timing cells over (workload x width x ports).
SPEC = SweepSpec(
    name="fig11",
    kind="timed",
    workloads=FIG11_WORKLOADS,
    modes=(
        Mode("base", DVIConfig.none()),
        Mode("LVM-Stack", DVIConfig.full(SRScheme.LVM_STACK), edvi_binary=True),
    ),
    axes=(
        Axis("width", values=ISSUE_WIDTHS),
        Axis("ports", values=PORT_COUNTS),
    ),
    machine=lambda point: MachineConfig.micro97_unconstrained()
    .with_ports_and_width(point["ports"], point["width"]),
)


@dataclass
class SensitivityPoint:
    workload: str
    issue_width: int
    cache_ports: int
    base_ipc: float
    dvi_ipc: float

    @property
    def speedup(self) -> float:
        return 100.0 * (self.dvi_ipc / self.base_ipc - 1.0)


@dataclass
class Fig11Result:
    points: List[SensitivityPoint]

    def lookup(self, workload: str, width: int, ports: int) -> SensitivityPoint:
        for point in self.points:
            if (point.workload, point.issue_width, point.cache_ports) == (
                workload, width, ports,
            ):
                return point
        raise KeyError((workload, width, ports))

    def format_table(self) -> str:
        return format_table(
            ["Benchmark", "Issue", "Ports", "Base IPC", "DVI IPC", "Speedup %"],
            [
                [p.workload, p.issue_width, p.cache_ports,
                 p.base_ipc, p.dvi_ipc, p.speedup]
                for p in self.points
            ],
            title="Figure 11: Cache bandwidth sensitivity (LVM-Stack speedup)",
        )


def jobs(profile: ExperimentProfile):
    """The spec's cells (kept as the uniform per-experiment entry point)."""
    return SPEC.jobs(profile)


def run(profile: ExperimentProfile, context: ExperimentContext = None) -> Fig11Result:
    """Sweep ports x width for the two charted benchmarks."""
    context = context or ExperimentContext(profile)
    SPEC.execute(profile, context)
    base_mode, dvi_mode = SPEC.modes
    points: List[SensitivityPoint] = []
    for workload in SPEC.resolve_workloads(profile):
        for point in SPEC.points(profile):
            points.append(
                SensitivityPoint(
                    workload=workload,
                    issue_width=point["width"],
                    cache_ports=point["ports"],
                    base_ipc=SPEC.result(context, base_mode, workload, point).ipc,
                    dvi_ipc=SPEC.result(context, dvi_mode, workload, point).ipc,
                )
            )
    return Fig11Result(points=points)
