"""Figure 11: cache bandwidth sensitivity of save/restore elimination.

LVM-Stack speedup over baseline for gcc-like and ijpeg-like across cache
port counts (1, 2, 3) and issue widths (4-way, 8-way).  Paper shape: the
optimization matters more the fewer ports the machine has (eliminated
saves/restores compete for data bandwidth), and widening issue raises the
bandwidth demand again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dvi.config import DVIConfig, SRScheme
from repro.experiments.parallel import Job, execute
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table
from repro.sim.config import MachineConfig

#: The two benchmarks the paper charts.
FIG11_WORKLOADS = ("gcc_like", "ijpeg_like")
PORT_COUNTS = (1, 2, 3)
ISSUE_WIDTHS = (4, 8)


@dataclass
class SensitivityPoint:
    workload: str
    issue_width: int
    cache_ports: int
    base_ipc: float
    dvi_ipc: float

    @property
    def speedup(self) -> float:
        return 100.0 * (self.dvi_ipc / self.base_ipc - 1.0)


@dataclass
class Fig11Result:
    points: List[SensitivityPoint]

    def lookup(self, workload: str, width: int, ports: int) -> SensitivityPoint:
        for point in self.points:
            if (point.workload, point.issue_width, point.cache_ports) == (
                workload, width, ports,
            ):
                return point
        raise KeyError((workload, width, ports))

    def format_table(self) -> str:
        return format_table(
            ["Benchmark", "Issue", "Ports", "Base IPC", "DVI IPC", "Speedup %"],
            [
                [p.workload, p.issue_width, p.cache_ports,
                 p.base_ipc, p.dvi_ipc, p.speedup]
                for p in self.points
            ],
            title="Figure 11: Cache bandwidth sensitivity (LVM-Stack speedup)",
        )


def jobs(profile: ExperimentProfile):
    """Baseline + LVM-Stack timing cells over (workload x width x ports)."""
    base_machine = MachineConfig.micro97_unconstrained()
    plan = []
    for workload in FIG11_WORKLOADS:
        for width in ISSUE_WIDTHS:
            for ports in PORT_COUNTS:
                config = base_machine.with_ports_and_width(ports, width)
                plan.append(Job(kind="timed", workload=workload,
                                dvi=DVIConfig.none(), edvi_binary=False,
                                machine=config))
                plan.append(Job(kind="timed", workload=workload,
                                dvi=DVIConfig.full(SRScheme.LVM_STACK),
                                edvi_binary=True, machine=config))
    return plan


def run(profile: ExperimentProfile, context: ExperimentContext = None) -> Fig11Result:
    """Sweep ports x width for the two charted benchmarks."""
    context = context or ExperimentContext(profile)
    execute(jobs(profile), context)
    base_machine = MachineConfig.micro97_unconstrained()
    points: List[SensitivityPoint] = []
    for workload in FIG11_WORKLOADS:
        for width in ISSUE_WIDTHS:
            for ports in PORT_COUNTS:
                config = base_machine.with_ports_and_width(ports, width)
                base = context.timed(
                    workload, DVIConfig.none(), config, edvi_binary=False
                )
                dvi = context.timed(
                    workload, DVIConfig.full(SRScheme.LVM_STACK), config,
                    edvi_binary=True,
                )
                points.append(
                    SensitivityPoint(
                        workload=workload,
                        issue_width=width,
                        cache_ports=ports,
                        base_ipc=base.ipc,
                        dvi_ipc=dvi.ipc,
                    )
                )
    return Fig11Result(points=points)
