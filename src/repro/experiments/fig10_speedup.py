"""Figure 10: IPC speedups from save/restore elimination.

For each save/restore-heavy workload, the IPC gain of the LVM scheme
(saves only) and the LVM-Stack scheme (saves and restores) over the no-DVI
baseline on the Figure 2 machine.  Paper shape: gcc, perl and li gain the
most, perl leading at 4.8%, and save elimination alone accounts for more
than half of the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dvi.config import DVIConfig, SRScheme
from repro.experiments.parallel import Job, execute
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table
from repro.sim.config import MachineConfig

#: (dvi config, uses E-DVI binary) for the three bars of each workload.
MODES = (
    (DVIConfig.none(), False),
    (DVIConfig.full(SRScheme.LVM), True),
    (DVIConfig.full(SRScheme.LVM_STACK), True),
)


@dataclass
class SpeedupRow:
    workload: str
    base_ipc: float
    lvm_ipc: float
    lvm_stack_ipc: float

    @property
    def lvm_speedup(self) -> float:
        """Percent IPC gain of the saves-only scheme."""
        return 100.0 * (self.lvm_ipc / self.base_ipc - 1.0)

    @property
    def lvm_stack_speedup(self) -> float:
        """Percent IPC gain of the saves+restores scheme."""
        return 100.0 * (self.lvm_stack_ipc / self.base_ipc - 1.0)


@dataclass
class Fig10Result:
    rows: List[SpeedupRow]

    def by_workload(self) -> Dict[str, SpeedupRow]:
        return {row.workload: row for row in self.rows}

    def best(self) -> SpeedupRow:
        return max(self.rows, key=lambda row: row.lvm_stack_speedup)

    def format_table(self) -> str:
        return format_table(
            ["Benchmark", "Base IPC", "LVM speedup %", "LVM-Stack speedup %"],
            [
                [r.workload, r.base_ipc, r.lvm_speedup, r.lvm_stack_speedup]
                for r in self.rows
            ],
            title="Figure 10: IPC speedups from dead save/restore elimination",
        )


def jobs(profile: ExperimentProfile, *, config: MachineConfig = None):
    """Baseline/LVM/LVM-Stack timing cells for each save/restore workload."""
    config = config or MachineConfig.micro97_unconstrained()
    return [
        Job(kind="timed", workload=workload, dvi=dvi, edvi_binary=edvi_binary,
            machine=config)
        for workload in profile.sr_workloads
        for dvi, edvi_binary in MODES
    ]


def run(
    profile: ExperimentProfile,
    context: ExperimentContext = None,
    *,
    config: MachineConfig = None,
) -> Fig10Result:
    """Time each workload under baseline, LVM, and LVM-Stack."""
    context = context or ExperimentContext(profile)
    config = config or MachineConfig.micro97_unconstrained()
    execute(jobs(profile, config=config), context)
    rows: List[SpeedupRow] = []
    for workload in profile.sr_workloads:
        base = context.timed(
            workload, DVIConfig.none(), config, edvi_binary=False
        )
        lvm = context.timed(
            workload, DVIConfig.full(SRScheme.LVM), config, edvi_binary=True
        )
        lvm_stack = context.timed(
            workload, DVIConfig.full(SRScheme.LVM_STACK), config, edvi_binary=True
        )
        rows.append(
            SpeedupRow(
                workload=workload,
                base_ipc=base.ipc,
                lvm_ipc=lvm.ipc,
                lvm_stack_ipc=lvm_stack.ipc,
            )
        )
    return Fig10Result(rows=rows)
