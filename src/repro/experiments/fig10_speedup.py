"""Figure 10: IPC speedups from save/restore elimination.

For each save/restore-heavy workload, the IPC gain of the LVM scheme
(saves only) and the LVM-Stack scheme (saves and restores) over the no-DVI
baseline on the Figure 2 machine.  Paper shape: gcc, perl and li gain the
most, perl leading at 4.8%, and save elimination alone accounts for more
than half of the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dvi.config import DVIConfig, SRScheme
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table
from repro.experiments.sweep import Mode, SweepSpec
from repro.sim.config import MachineConfig

#: The three bars of each workload, on the rename-unconstrained machine.
MODES = (
    Mode("No DVI", DVIConfig.none()),
    Mode("LVM", DVIConfig.full(SRScheme.LVM), edvi_binary=True),
    Mode("LVM-Stack", DVIConfig.full(SRScheme.LVM_STACK), edvi_binary=True),
)


def spec_for(config: MachineConfig = None) -> SweepSpec:
    """The Figure 10 sweep, optionally on an overridden machine."""
    return SweepSpec(
        name="fig10",
        kind="timed",
        workloads="sr_workloads",
        modes=MODES,
        machine=config or MachineConfig.micro97_unconstrained(),
    )


SPEC = spec_for()


@dataclass
class SpeedupRow:
    workload: str
    base_ipc: float
    lvm_ipc: float
    lvm_stack_ipc: float

    @property
    def lvm_speedup(self) -> float:
        """Percent IPC gain of the saves-only scheme."""
        return 100.0 * (self.lvm_ipc / self.base_ipc - 1.0)

    @property
    def lvm_stack_speedup(self) -> float:
        """Percent IPC gain of the saves+restores scheme."""
        return 100.0 * (self.lvm_stack_ipc / self.base_ipc - 1.0)


@dataclass
class Fig10Result:
    rows: List[SpeedupRow]

    def by_workload(self) -> Dict[str, SpeedupRow]:
        return {row.workload: row for row in self.rows}

    def best(self) -> SpeedupRow:
        return max(self.rows, key=lambda row: row.lvm_stack_speedup)

    def format_table(self) -> str:
        return format_table(
            ["Benchmark", "Base IPC", "LVM speedup %", "LVM-Stack speedup %"],
            [
                [r.workload, r.base_ipc, r.lvm_speedup, r.lvm_stack_speedup]
                for r in self.rows
            ],
            title="Figure 10: IPC speedups from dead save/restore elimination",
        )


def jobs(profile: ExperimentProfile, *, config: MachineConfig = None):
    """The spec's cells (kept as the uniform per-experiment entry point)."""
    return spec_for(config).jobs(profile)


def run(
    profile: ExperimentProfile,
    context: ExperimentContext = None,
    *,
    config: MachineConfig = None,
) -> Fig10Result:
    """Time each workload under baseline, LVM, and LVM-Stack."""
    context = context or ExperimentContext(profile)
    spec = spec_for(config)
    spec.execute(profile, context)
    base_mode, lvm_mode, stack_mode = spec.modes
    rows: List[SpeedupRow] = []
    for workload in spec.resolve_workloads(profile):
        rows.append(
            SpeedupRow(
                workload=workload,
                base_ipc=spec.result(context, base_mode, workload).ipc,
                lvm_ipc=spec.result(context, lvm_mode, workload).ipc,
                lvm_stack_ipc=spec.result(context, stack_mode, workload).ipc,
            )
        )
    return Fig10Result(rows=rows)
