"""Experiment harnesses, one per table/figure of the paper's evaluation."""

from repro.experiments.runner import (
    ExperimentContext,
    ExperimentProfile,
    format_table,
    regfile_modes,
)

__all__ = [
    "ExperimentContext",
    "ExperimentProfile",
    "format_table",
    "regfile_modes",
]
