"""Experiment harnesses, one per table/figure of the paper's evaluation.

:data:`EXPERIMENTS` is the experiment directory: id -> (module,
description) for every figure/ablation the CLI's ``run-all`` covers.  It
lives here (not in ``__main__``) so the service layer can resolve
figure-job requests without importing the CLI.
"""

from repro.experiments import (
    ablation_lvmstack_depth,
    ablation_predictor,
    fig3_characterization,
    fig5_regfile_ipc,
    fig6_performance,
    fig9_eliminated,
    fig10_speedup,
    fig11_sensitivity,
    fig12_context_switch,
    fig13_edvi_overhead,
)
from repro.experiments.runner import (
    ExperimentContext,
    ExperimentProfile,
    format_table,
    regfile_modes,
)

#: Experiment id -> (module, human description), in run-all order.
#: Every module exposes ``run(profile, context)`` and ``jobs(profile)``.
EXPERIMENTS = {
    "fig3": (fig3_characterization, "benchmark characterization"),
    "fig5": (fig5_regfile_ipc, "IPC vs. register file size"),
    "fig6": (fig6_performance, "performance vs. register file size"),
    "fig9": (fig9_eliminated, "saves/restores eliminated"),
    "fig10": (fig10_speedup, "IPC speedups"),
    "fig11": (fig11_sensitivity, "cache bandwidth sensitivity"),
    "fig12": (fig12_context_switch, "context-switch elimination"),
    "fig13": (fig13_edvi_overhead, "E-DVI overhead"),
    "ablation": (ablation_lvmstack_depth, "LVM-Stack depth ablation"),
    "predictor": (ablation_predictor, "branch predictor ablation"),
}

__all__ = [
    "EXPERIMENTS",
    "ExperimentContext",
    "ExperimentProfile",
    "format_table",
    "regfile_modes",
]
