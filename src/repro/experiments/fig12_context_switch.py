"""Figure 12: context-switch saves and restores eliminated.

Two measurements, per workload:

* **histogram method** (the paper's): sample the number of live
  architectural registers after every instruction and report the average;
  the reduction vs. saving everything is the fraction of context-switch
  saves+restores a live-aware switch routine skips.  Paper averages:
  I-DVI only 42%, E-DVI + I-DVI 51%.
* **scheduler method** (executable extension): actually run the workloads
  preemptively multiplexed by :mod:`repro.threads` and count the saves and
  restores the switch routine executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.dvi.config import DVIConfig, SRScheme
from repro.experiments.runner import ExperimentContext, ExperimentProfile, format_table
from repro.experiments.sweep import Mode, SweepSpec
from repro.threads.scheduler import RoundRobinScheduler

#: Figure 12's benchmark set (ijpeg, gcc, perl, vortex, compress, go —
#: li is not charted in the paper's figure).
FIG12_ORDER = [
    "ijpeg_like", "gcc_like", "perl_like", "vortex_like",
    "compress_like", "go_like",
]

#: Preemption quantum (instructions) of the scheduler measurement.
QUANTUM = 997

def _histogram_workloads(profile: ExperimentProfile) -> List[str]:
    """The charted workloads present in the profile (paper order)."""
    chosen = [w for w in FIG12_ORDER if w in set(profile.workloads)]
    return chosen or list(profile.workloads)


def _mix(profile: ExperimentProfile) -> List[str]:
    """The multiprogrammed mix: charted workloads padded to three threads."""
    mix = _histogram_workloads(profile)
    for extra in profile.sr_workloads:
        if len(mix) >= 3:
            break
        if extra not in mix:
            mix.append(extra)
    return mix[:3]


#: Live-register histogram cells: the two DVI settings the paper charts,
#: sampled over the charted workloads.
HIST_SPEC = SweepSpec(
    name="fig12-histogram",
    kind="functional",
    workloads=_histogram_workloads,
    modes=(
        Mode("I-DVI",
             DVIConfig(use_idvi=True, use_edvi=False, scheme=SRScheme.LVM_STACK),
             live_hist=True),
        Mode("E-DVI and I-DVI", DVIConfig.full(SRScheme.LVM_STACK),
             edvi_binary=True, live_hist=True),
    ),
)

#: The solo-exit and binary cells the preemptive scheduler run needs.
MIX_SPEC = SweepSpec(
    name="fig12-mix",
    kind="functional",
    workloads=_mix,
    modes=(Mode("solo", DVIConfig.none()),),
    include_binary=True,
)


@dataclass
class ContextSwitchRow:
    workload: str
    saveable_regs: int
    avg_live_idvi: float
    avg_live_full: float

    @property
    def pct_eliminated_idvi(self) -> float:
        return 100.0 * (1.0 - self.avg_live_idvi / self.saveable_regs)

    @property
    def pct_eliminated_full(self) -> float:
        return 100.0 * (1.0 - self.avg_live_full / self.saveable_regs)


@dataclass
class SchedulerMeasurement:
    dvi_label: str
    switches: int
    pct_eliminated: float
    all_correct: bool


@dataclass
class Fig12Result:
    rows: List[ContextSwitchRow]
    scheduler: List[SchedulerMeasurement]

    def average(self, metric: str) -> float:
        return sum(getattr(row, metric) for row in self.rows) / len(self.rows)

    def by_workload(self) -> Dict[str, ContextSwitchRow]:
        return {row.workload: row for row in self.rows}

    def format_table(self) -> str:
        table = format_table(
            ["Benchmark", "I-DVI elim %", "E+I-DVI elim %"],
            [
                [r.workload, r.pct_eliminated_idvi, r.pct_eliminated_full]
                for r in self.rows
            ],
            title="Figure 12: Context-switch saves/restores eliminated "
                  "(live-register histogram)",
        )
        summary = (
            f"\nAverages: I-DVI {self.average('pct_eliminated_idvi'):.1f}%, "
            f"E-DVI and I-DVI {self.average('pct_eliminated_full'):.1f}%"
        )
        sched_lines = [
            f"  {m.dvi_label}: {m.pct_eliminated:.1f}% eliminated over "
            f"{m.switches} preemptive switches "
            f"({'all threads correct' if m.all_correct else 'MISMATCH'})"
            for m in self.scheduler
        ]
        return table + summary + "\nPreemptive scheduler measurement:\n" + "\n".join(
            sched_lines
        )


def jobs(profile: ExperimentProfile):
    """Histogram cells + the solo-exit and binary cells the scheduler needs.

    The preemptive-scheduler measurement itself multiplexes threads on one
    simulated machine and is inherently serial, so it is not a cell; it is
    cached whole through ``context.artifact`` instead.
    """
    return HIST_SPEC.jobs(profile) + MIX_SPEC.jobs(profile)


def _scheduler_measurement(
    context: ExperimentContext,
    mix: List[str],
    label: str,
    dvi: DVIConfig,
    edvi_binary: bool,
) -> SchedulerMeasurement:
    """One cached preemptive-scheduler run of the mix under ``dvi``."""
    def compute() -> SchedulerMeasurement:
        solo_exits = {
            w: context.functional(
                w, DVIConfig.none(), edvi_binary=False
            ).stats.exit_value
            for w in mix
        }
        programs = [context.binary(w, edvi=edvi_binary) for w in mix]
        result = RoundRobinScheduler(programs, dvi, quantum=QUANTUM).run()
        correct = all(
            thread.exit_value == solo_exits[thread.name]
            for thread in result.threads
        )
        return SchedulerMeasurement(
            dvi_label=label,
            switches=result.switch_stats.switches,
            pct_eliminated=result.switch_stats.pct_eliminated,
            all_correct=correct,
        )

    return context.artifact(
        "fig12_scheduler", (tuple(mix), dvi, edvi_binary, QUANTUM), compute
    )


def run(profile: ExperimentProfile, context: ExperimentContext = None) -> Fig12Result:
    """Run both the histogram and scheduler measurements."""
    context = context or ExperimentContext(profile)
    HIST_SPEC.execute(profile, context)
    MIX_SPEC.execute(profile, context)

    idvi_mode, full_mode = HIST_SPEC.modes
    rows: List[ContextSwitchRow] = []
    for workload in HIST_SPEC.resolve_workloads(profile):
        idvi = HIST_SPEC.result(context, idvi_mode, workload).stats
        full = HIST_SPEC.result(context, full_mode, workload).stats
        saveable = bin(DVIConfig.none().abi.saveable_mask()).count("1")
        rows.append(
            ContextSwitchRow(
                workload=workload,
                saveable_regs=saveable,
                avg_live_idvi=idvi.average_live(),
                avg_live_full=full.average_live(),
            )
        )

    # The multiprogrammed mix needs at least two threads to switch between.
    mix = _mix(profile)
    scheduler_rows = [
        _scheduler_measurement(context, mix, label, dvi, edvi_binary)
        for label, dvi, edvi_binary in (
            ("I-DVI", DVIConfig.idvi_only(), False),
            ("E-DVI and I-DVI", DVIConfig.full(SRScheme.LVM_STACK), True),
        )
    ]
    return Fig12Result(rows=rows, scheduler=scheduler_rows)
