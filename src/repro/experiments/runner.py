"""Shared experiment infrastructure: profiles, artifact caches, tables.

Every experiment module exposes ``run(profile) -> <Fig*Result>`` plus a
``jobs(profile)`` enumerator of the independent simulation cells the
figure sweeps over (see :mod:`repro.experiments.parallel`); the result
objects carry raw rows plus a ``format_table()`` that prints the same rows
or series the paper's figure/table reports.

Profiles size the experiments: ``full()`` approximates the paper's sweep
densities (scaled-down instruction counts — the substitution DESIGN.md
documents), ``quick()`` is a fast configuration used by the pytest-benchmark
harness and CI, and ``tiny()`` is the smallest sweep that still exhibits
every qualitative effect (used by the test suite and smoke runs).

:class:`ExperimentContext` layers two caches under every experiment:
an in-process memo (dictionaries keyed by value, not identity) and an
optional :class:`~repro.experiments.cache.ArtifactCache` that persists
binaries, traces, functional results, and timing stats across processes
and across invocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.dvi.config import DVIConfig, SRScheme
from repro.experiments.cache import ArtifactCache, fingerprint
from repro.program.program import Program
from repro.rewrite.edvi import insert_edvi
from repro.sim.config import MachineConfig
from repro.sim.functional import FunctionalResult, run_program
from repro.sim.ooo.core import simulate
from repro.sim.ooo.stats import PipelineStats
from repro.sim.trace import TRACE_FORMAT, Trace
from repro.workloads.suite import ALL_ORDER, SAVE_RESTORE_ORDER, get_program


@dataclass(frozen=True)
class ExperimentProfile:
    """Sizing knobs shared by all experiments."""

    name: str
    #: Workload scale factor (multiplies dynamic instruction counts).
    scale: int = 1
    #: Register file sizes for the Figure 5/6 sweep.
    regfile_sizes: Tuple[int, ...] = tuple(range(34, 99, 4))
    #: Workloads used where the paper uses the full suite.
    workloads: Tuple[str, ...] = tuple(ALL_ORDER)
    #: Workloads used where the paper uses the save/restore-heavy six.
    sr_workloads: Tuple[str, ...] = tuple(SAVE_RESTORE_ORDER)

    @classmethod
    def full(cls) -> "ExperimentProfile":
        """The paper-shaped sweep (all sizes, all workloads)."""
        return cls(name="full")

    @classmethod
    def quick(cls) -> "ExperimentProfile":
        """A reduced sweep for benchmarks and CI."""
        return cls(
            name="quick",
            regfile_sizes=(34, 38, 42, 50, 58, 64, 80, 96),
            workloads=("compress_like", "li_like", "perl_like", "gcc_like"),
            sr_workloads=("li_like", "gcc_like", "perl_like", "vortex_like"),
        )

    @classmethod
    def tiny(cls) -> "ExperimentProfile":
        """The smallest sweep that still shows every qualitative effect."""
        return cls(
            name="tiny",
            regfile_sizes=(34, 42, 50, 64, 96),
            workloads=("li_like", "perl_like"),
            sr_workloads=("li_like", "perl_like"),
        )

    @classmethod
    def names(cls) -> Tuple[str, ...]:
        """The selectable profile names, smallest first."""
        return ("tiny", "quick", "full")

    @classmethod
    def by_name(cls, name: str) -> "ExperimentProfile":
        """The named stock profile; ``ValueError`` lists valid names.

        The CLI, the service request schema, and the benchmarks all
        resolve profile strings through this one lookup.
        """
        if name not in cls.names():
            raise ValueError(
                f"unknown profile {name!r}; valid profiles: "
                + ", ".join(cls.names())
            )
        return getattr(cls, name)()


class ExperimentContext:
    """Caches simulation artifacts across experiments.

    Two layers: per-process dictionaries (always on), and an optional
    on-disk :class:`~repro.experiments.cache.ArtifactCache` shared by
    every process and every invocation that points at the same directory.
    ``jobs`` is the parallelism knob the
    :func:`repro.experiments.parallel.execute` scheduler honors when an
    experiment hands it a job list.
    """

    def __init__(
        self,
        profile: ExperimentProfile,
        *,
        cache: Optional[ArtifactCache] = None,
        jobs: int = 1,
    ) -> None:
        self.profile = profile
        self.cache = cache
        self.jobs = max(1, jobs)
        self._binaries: Dict[Tuple[str, bool], Program] = {}
        self._traces: Dict[Tuple[str, bool, DVIConfig], Trace] = {}
        self._functional: Dict[tuple, FunctionalResult] = {}
        self._timed: Dict[str, PipelineStats] = {}
        self._artifacts: Dict[Tuple[str, str], Any] = {}

    # ------------------------------------------------------------------
    # Disk-cache key tuples (value-canonicalized by ArtifactCache).
    # ------------------------------------------------------------------

    def _binary_key(self, workload: str) -> tuple:
        return (workload, self.profile.scale)

    def _trace_key(self, workload: str, dvi: DVIConfig, edvi_binary: bool) -> tuple:
        # TRACE_FORMAT makes artifacts of different trace storage formats
        # (pre-columnar vs columnar) distinct cache cells even if the code
        # version were ever held fixed across the change.
        return (workload, self.profile.scale, edvi_binary, dvi, TRACE_FORMAT)

    def _functional_key(
        self, workload: str, dvi: DVIConfig, edvi_binary: bool, live_hist: bool
    ) -> tuple:
        return (workload, self.profile.scale, edvi_binary, dvi, live_hist)

    def _timed_key(
        self, workload: str, dvi: DVIConfig, config: MachineConfig, edvi_binary: bool
    ) -> tuple:
        return (workload, self.profile.scale, edvi_binary, dvi, config)

    # ------------------------------------------------------------------

    def binary(self, workload: str, *, edvi: bool) -> Program:
        """The workload's binary, with or without E-DVI annotations.

        Per section 3, baselines always run the annotation-free binary; the
        DVI configurations run the rewritten one.  A miss builds and caches
        *both* variants at once — the E-DVI rewrite starts from the plain
        binary anyway, so the pair is one unit of work and is stored as a
        single ``(plain, annotated)`` artifact on disk.
        """
        key = (workload, edvi)
        if key not in self._binaries:
            pair = None
            if self.cache is not None:
                hit, value = self.cache.lookup("binary", self._binary_key(workload))
                if hit:
                    pair = value
            if pair is None:
                plain = get_program(workload, self.profile.scale)
                pair = (plain, insert_edvi(plain).program)
                if self.cache is not None:
                    self.cache.store("binary", self._binary_key(workload), pair)
            self._binaries[(workload, False)] = pair[0]
            self._binaries[(workload, True)] = pair[1]
        return self._binaries[key]

    def trace(self, workload: str, dvi: DVIConfig, *, edvi_binary: bool) -> Trace:
        """A dynamic trace of the workload under a DVI configuration."""
        key = (workload, edvi_binary, dvi)
        if key not in self._traces:
            trace = None
            if self.cache is not None:
                hit, value = self.cache.lookup(
                    "trace", self._trace_key(workload, dvi, edvi_binary)
                )
                if hit:
                    trace = value
            if trace is None:
                program = self.binary(workload, edvi=edvi_binary)
                result = run_program(program, dvi, collect_trace=True)
                if not result.stats.completed:
                    raise RuntimeError(f"workload {workload} did not complete")
                assert result.trace is not None
                trace = result.trace
                if self.cache is not None:
                    self.cache.store(
                        "trace", self._trace_key(workload, dvi, edvi_binary), trace
                    )
            self._traces[key] = trace
        return self._traces[key]

    def functional(
        self,
        workload: str,
        dvi: DVIConfig,
        *,
        edvi_binary: bool,
        live_hist: bool = False,
    ) -> FunctionalResult:
        """A trace-free functional run (for figures 3, 9, 12)."""
        key = (workload, edvi_binary, dvi, live_hist)
        if key not in self._functional:
            result = None
            if self.cache is not None:
                hit, value = self.cache.lookup(
                    "functional",
                    self._functional_key(workload, dvi, edvi_binary, live_hist),
                )
                if hit:
                    result = value
            if result is None:
                program = self.binary(workload, edvi=edvi_binary)
                result = run_program(
                    program, dvi, collect_trace=False, collect_live_hist=live_hist
                )
                if self.cache is not None:
                    self.cache.store(
                        "functional",
                        self._functional_key(workload, dvi, edvi_binary, live_hist),
                        result,
                    )
            self._functional[key] = result
        return self._functional[key]

    def timed(
        self,
        workload: str,
        dvi: DVIConfig,
        config: MachineConfig,
        *,
        edvi_binary: bool,
    ) -> PipelineStats:
        """One out-of-order timing run (memoized; machine config in the key)."""
        memo_key = fingerprint(self._timed_key(workload, dvi, config, edvi_binary))
        if memo_key not in self._timed:
            stats = None
            if self.cache is not None:
                hit, value = self.cache.lookup(
                    "timed", self._timed_key(workload, dvi, config, edvi_binary)
                )
                if hit:
                    stats = value
            if stats is None:
                trace = self.trace(workload, dvi, edvi_binary=edvi_binary)
                stats = simulate(config, trace)
                if self.cache is not None:
                    self.cache.store(
                        "timed",
                        self._timed_key(workload, dvi, config, edvi_binary),
                        stats,
                    )
            self._timed[memo_key] = stats
        return self._timed[memo_key]

    def with_fresh_timing(self) -> "ExperimentContext":
        """A view of this context whose timing memo starts empty.

        Binaries, traces, and functional results are shared (by reference)
        with this context; timing simulations and experiment-specific
        artifacts are not.  The benchmark harness measures figure runs
        through such views so that timing work — the quantity being
        benchmarked — is re-executed rather than replayed from the memo,
        matching what the harness measured before ``timed()`` was
        memoized.
        """
        view = ExperimentContext(self.profile, cache=self.cache, jobs=self.jobs)
        view._binaries = self._binaries
        view._traces = self._traces
        view._functional = self._functional
        return view

    def artifact(self, kind: str, key: tuple, compute: Callable[[], Any]) -> Any:
        """Read-through memoization for experiment-specific artifacts.

        Used by measurements that are not one of the four standard cell
        kinds — e.g. Figure 12's preemptive-scheduler run.  ``key`` must be
        canonicalizable by :func:`repro.experiments.cache.canonical`; the
        profile scale is appended automatically.
        """
        full_key = key + (self.profile.scale,)
        memo_key = (kind, fingerprint(full_key))
        if memo_key not in self._artifacts:
            value = None
            hit = False
            if self.cache is not None:
                hit, value = self.cache.lookup(kind, full_key)
            if not hit:
                value = compute()
                if self.cache is not None:
                    self.cache.store(kind, full_key, value)
            self._artifacts[memo_key] = value
        return self._artifacts[memo_key]


# ----------------------------------------------------------------------
# DVI configuration triple of Figure 5 (register-file experiments isolate
# register reclamation: no save/restore elimination scheme is active).
# ----------------------------------------------------------------------

def regfile_modes() -> List[Tuple[str, DVIConfig, bool]]:
    """(label, dvi config, uses E-DVI binary) for the Figure 5 curves."""
    return [
        ("No DVI", DVIConfig.none(), False),
        ("I-DVI", DVIConfig.idvi_only(), False),
        ("E-DVI and I-DVI",
         DVIConfig(use_idvi=True, use_edvi=True, scheme=SRScheme.NONE), True),
    ]


# ----------------------------------------------------------------------
# Table rendering.
# ----------------------------------------------------------------------

def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Plain-text table with right-aligned numeric columns."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rendered))
        if rendered else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
