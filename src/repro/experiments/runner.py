"""Shared experiment infrastructure: profiles, binary/trace caches, tables.

Every experiment module exposes ``run(profile) -> <Fig*Result>``; the result
objects carry raw rows plus a ``format_table()`` that prints the same rows
or series the paper's figure/table reports.

Profiles size the experiments: ``full()`` approximates the paper's sweep
densities (scaled-down instruction counts — the substitution DESIGN.md
documents), ``quick()`` is a fast configuration used by the pytest-benchmark
harness and CI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dvi.config import DVIConfig, SRScheme
from repro.program.program import Program
from repro.rewrite.edvi import insert_edvi
from repro.sim.config import MachineConfig
from repro.sim.functional import FunctionalResult, run_program
from repro.sim.ooo.core import simulate
from repro.sim.ooo.stats import PipelineStats
from repro.sim.trace import Trace
from repro.workloads.suite import ALL_ORDER, SAVE_RESTORE_ORDER, get_program


@dataclass(frozen=True)
class ExperimentProfile:
    """Sizing knobs shared by all experiments."""

    name: str
    #: Workload scale factor (multiplies dynamic instruction counts).
    scale: int = 1
    #: Register file sizes for the Figure 5/6 sweep.
    regfile_sizes: Tuple[int, ...] = tuple(range(34, 99, 4))
    #: Workloads used where the paper uses the full suite.
    workloads: Tuple[str, ...] = tuple(ALL_ORDER)
    #: Workloads used where the paper uses the save/restore-heavy six.
    sr_workloads: Tuple[str, ...] = tuple(SAVE_RESTORE_ORDER)

    @classmethod
    def full(cls) -> "ExperimentProfile":
        """The paper-shaped sweep (all sizes, all workloads)."""
        return cls(name="full")

    @classmethod
    def quick(cls) -> "ExperimentProfile":
        """A reduced sweep for benchmarks and CI."""
        return cls(
            name="quick",
            regfile_sizes=(34, 38, 42, 50, 58, 64, 80, 96),
            workloads=("compress_like", "li_like", "perl_like", "gcc_like"),
            sr_workloads=("li_like", "gcc_like", "perl_like", "vortex_like"),
        )


class ExperimentContext:
    """Caches binaries and traces across experiments within one process."""

    def __init__(self, profile: ExperimentProfile) -> None:
        self.profile = profile
        self._binaries: Dict[Tuple[str, bool], Program] = {}
        self._traces: Dict[Tuple[str, bool, DVIConfig], Trace] = {}
        self._functional: Dict[tuple, FunctionalResult] = {}

    # ------------------------------------------------------------------

    def binary(self, workload: str, *, edvi: bool) -> Program:
        """The workload's binary, with or without E-DVI annotations.

        Per section 3, baselines always run the annotation-free binary; the
        DVI configurations run the rewritten one.
        """
        key = (workload, edvi)
        if key not in self._binaries:
            plain = get_program(workload, self.profile.scale)
            self._binaries[(workload, False)] = plain
            self._binaries[(workload, True)] = insert_edvi(plain).program
        return self._binaries[key]

    def trace(self, workload: str, dvi: DVIConfig, *, edvi_binary: bool) -> Trace:
        """A dynamic trace of the workload under a DVI configuration."""
        key = (workload, edvi_binary, dvi)
        if key not in self._traces:
            program = self.binary(workload, edvi=edvi_binary)
            result = run_program(program, dvi, collect_trace=True)
            if not result.stats.completed:
                raise RuntimeError(f"workload {workload} did not complete")
            assert result.trace is not None
            self._traces[key] = result.trace
        return self._traces[key]

    def functional(
        self,
        workload: str,
        dvi: DVIConfig,
        *,
        edvi_binary: bool,
        live_hist: bool = False,
    ) -> FunctionalResult:
        """A trace-free functional run (for figures 3, 9, 12)."""
        key = (workload, edvi_binary, dvi, live_hist)
        if key not in self._functional:
            program = self.binary(workload, edvi=edvi_binary)
            self._functional[key] = run_program(
                program, dvi, collect_trace=False, collect_live_hist=live_hist
            )
        return self._functional[key]

    def timed(
        self,
        workload: str,
        dvi: DVIConfig,
        config: MachineConfig,
        *,
        edvi_binary: bool,
    ) -> PipelineStats:
        """One out-of-order timing run."""
        trace = self.trace(workload, dvi, edvi_binary=edvi_binary)
        return simulate(config, trace)


# ----------------------------------------------------------------------
# DVI configuration triple of Figure 5 (register-file experiments isolate
# register reclamation: no save/restore elimination scheme is active).
# ----------------------------------------------------------------------

def regfile_modes() -> List[Tuple[str, DVIConfig, bool]]:
    """(label, dvi config, uses E-DVI binary) for the Figure 5 curves."""
    return [
        ("No DVI", DVIConfig.none(), False),
        ("I-DVI", DVIConfig.idvi_only(), False),
        ("E-DVI and I-DVI",
         DVIConfig(use_idvi=True, use_edvi=True, scheme=SRScheme.NONE), True),
    ]


# ----------------------------------------------------------------------
# Table rendering.
# ----------------------------------------------------------------------

def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Plain-text table with right-aligned numeric columns."""
    rendered = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rendered))
        if rendered else len(headers[col])
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 100 else f"{value:,.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
