"""Trace-driven out-of-order superscalar timing model.

Replays a :class:`~repro.sim.trace.Trace` through a four-stage resource
pipeline — fetch, dispatch (decode+rename), issue, commit — modelled after
SimpleScalar's ``sim-outorder`` with MIPS R10000-style renaming, which is
the paper's simulation vehicle (section 3).

Stage behaviour per cycle, in simulated order:

1. **Commit** retires up to ``commit_width`` completed instructions from
   the head of the window, freeing previous physical mappings and any
   DVI-pending physical registers attached to the retiring instruction.
2. **Issue** selects up to ``issue_width`` ready instructions oldest-first,
   subject to functional-unit and cache-port availability.  Loads and
   stores access the D-cache here; a mispredicted control transfer
   schedules the fetch redirect for its completion cycle.
3. **Dispatch** renames and inserts up to ``decode_width`` instructions
   into the window.  E-DVI ``kill`` annotations and LVM-eliminated
   saves/restores are *dropped here*: they consumed fetch/decode bandwidth
   but no window slot, no rename, no functional unit, and no cache port —
   exactly the paper's "fetched and decoded ... but not dispatched".
   Kills unmap their registers immediately and their physical registers
   are freed when the most recent dispatched instruction commits (the
   in-order-equivalent of "when the kill commits").
4. **Fetch** brings up to ``fetch_width`` trace records into the fetch
   queue, stopping at taken control transfers, I-cache misses, and
   unresolved mispredictions.

Wrong-path instructions are not simulated; the timing cost of a
misprediction is the fetch gap until the branch resolves plus the
configured redirect penalty, the standard trace-driven approximation.

Implementation notes (the perf-critical part):

The stages are inlined into one :meth:`OutOfOrderCore.run` loop that
reads the trace's **columnar** storage directly — the fetch queue holds
plain row indices, per-row facts come from flat ``array`` columns, and
per-pc static facts (opcode, class, destination, packed sources) from the
trace's side-tables, all as ints.  In-flight window entries are small
lists (see the ``E_*`` index constants) rather than objects; un-issued
entries are additionally kept in an age-ordered ``pending`` list so the
issue stage never rescans already-issued window slots.  Rename
allocate/source-resolution are inlined over the renamer's map/free-list
(the rare kill/call/return unmap path still goes through
:meth:`~repro.sim.ooo.renamer.Renamer.unmap`), and every loop-invariant
bound method and config limit is hoisted to a local.  All counters are
folded back into the renamer/stats objects when the loop exits, so the
externally observable results are identical to the per-stage-method
formulation this replaced.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.isa.opcodes import NUM_OP_CLASSES, OpClass, Opcode
from repro.sim.branch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.sim.branch.predictors import build_predictor
from repro.sim.cache.hierarchy import MemoryHierarchy
from repro.sim.config import MachineConfig
from repro.sim.ooo.renamer import NEVER, Renamer
from repro.sim.ooo.stats import PipelineStats
from repro.sim.trace import (
    FLAG_ELIMINATED,
    FLAG_FREES,
    FLAG_PROGRAM,
    FLAG_TAKEN,
    Trace,
)

# Window-entry list layout (lists beat objects in the per-cycle loops).
# ``complete`` doubles as the issued flag: NEVER means not yet issued.
E_COMPLETE = 0    # cycle at which the result is available (NEVER: unissued)
E_SRC1 = 1        # first source physical register, or -1 (ready)
E_SRC2 = 2        # second source physical register, or -1 (ready)
E_DST_PHYS = 3    # destination physical register, or -1
E_PREV_PHYS = 4   # previous mapping to free at commit, or -1
E_FREES = 5       # physical registers to free at commit (None if none)
E_BLOCKS = 6      # bool: fetch stalls until this entry issues (mispredict)
E_CLS = 7         # OpClass int code
E_ADDR = 8        # memory byte address, or -1

_CLS_IMUL = int(OpClass.IMUL)
_CLS_IDIV = int(OpClass.IDIV)
_CLS_LOAD = int(OpClass.LOAD)
_CLS_STORE = int(OpClass.STORE)
_CLS_BRANCH = int(OpClass.BRANCH)
_CLS_JUMP = int(OpClass.JUMP)
_OP_J = int(Opcode.J)
_OP_JAL = int(Opcode.JAL)
_OP_JALR = int(Opcode.JALR)


class OutOfOrderCore:
    """One timing simulation of one trace on one machine configuration."""

    def __init__(self, config: MachineConfig, trace: Trace) -> None:
        self.config = config
        self.trace = trace
        self.stats = PipelineStats()
        self.renamer = Renamer(config.phys_regs)
        self.hierarchy = MemoryHierarchy(config.hierarchy)
        self.predictor = build_predictor(config)
        self.btb = BranchTargetBuffer(config.btb_sets, config.btb_assoc)
        self.ras = ReturnAddressStack(config.ras_depth)

        #: In-flight entries, oldest first (see the ``E_*`` layout).
        self._window: Deque[list] = deque()
        #: The fetch queue.  Fetch delivers trace rows strictly in order
        #: and dispatch consumes them in order, so the queue is always the
        #: contiguous index range ``[_dispatch_pos, _fetch_pos)`` — two
        #: ints instead of a deque.
        self._dispatch_pos = 0
        #: Dispatched-but-unissued entries, oldest first.
        self._pending: List[list] = []
        self._fetch_pos = 0
        self._cycle = 0
        self._fetch_blocked_until = 0
        #: Per-cache-port busy-until cycle.  A port is held for the full
        #: duration of an L1 miss (one outstanding miss per port -- the
        #: limited non-blocking behaviour of mid-90s data caches), which is
        #: what makes data bandwidth a contended resource and gives
        #: save/restore elimination its bandwidth-relief benefit (section
        #: 5.3's sensitivity analysis).
        self._port_busy_until: List[int] = [0] * config.cache_ports
        #: Trace index of a fetched-but-unresolved mispredicted control
        #: transfer; fetch stalls while this is set.
        self._unresolved_mispredict: Optional[int] = None
        self._last_fetch_line = -1
        self._latency = config.latencies

    # ------------------------------------------------------------------

    def run(self, *, check_invariants: bool = False) -> PipelineStats:
        """Simulate to completion and return the statistics."""
        trace = self.trace
        (
            pcs, addrs, next_pcs, free_masks, flags,
            s_op, s_cls, s_dst, s_srcs,
        ) = trace.hot_columns()
        replay = trace.replay_rows()
        total = len(pcs)

        # Static distance from each pc to its next control transfer
        # (0 at branches/jumps).  Fetch uses it to consume straight-line
        # runs in bulk: every non-control instruction falls through to
        # pc+1, so the rows of a run are consecutive and only its line
        # crossings and terminating control transfer need per-row work.
        n_static = len(s_cls)
        ctrl_dist = [0] * (n_static + 1)
        for static_pc in range(n_static - 1, -1, -1):
            code = s_cls[static_pc]
            if code != _CLS_BRANCH and code != _CLS_JUMP:
                ctrl_dist[static_pc] = ctrl_dist[static_pc + 1] + 1

        config = self.config
        commit_width = config.commit_width
        issue_width = config.issue_width
        decode_width = config.decode_width
        fetch_width = config.fetch_width
        window_size = config.window_size
        fetch_capacity = config.fetch_queue
        total_alus = config.int_alus
        total_muldivs = config.int_muldiv
        mispredict_penalty = config.mispredict_penalty
        l1_latency = config.hierarchy.l1_latency
        latency_of = [
            self._latency[OpClass(code)] for code in range(NUM_OP_CLASSES)
        ]
        store_latency = latency_of[_CLS_STORE]

        renamer = self.renamer
        arch_map = renamer.map
        ready_cycle = renamer.ready_cycle
        free_list = renamer.free_list
        free_pop = free_list.popleft
        free_append = free_list.append
        unmap = renamer.unmap

        hierarchy = self.hierarchy
        # The L1 hit paths are inlined below (one dict probe per access);
        # only L1 misses call into the L2.  Hit/miss/writeback counts are
        # kept in locals and folded into the Cache objects after the loop.
        l1d = hierarchy.l1d
        l1d_sets = l1d._sets
        l1d_shift = l1d._set_shift
        l1d_set_mask = l1d._set_mask
        l1d_assoc = l1d.geometry.assoc
        l1i = hierarchy.l1i
        l1i_sets = l1i._sets
        l1i_set_mask = l1i._set_mask
        l1i_assoc = l1i.geometry.assoc
        l2_access = hierarchy.l2.access
        l1_l2_latency = l1_latency + config.hierarchy.l2_latency
        l1_l2_mem_latency = l1_l2_latency + config.hierarchy.memory_latency
        line_shift = l1i._set_shift
        l1d_accesses = l1d_misses = l1d_writebacks = 0
        l1i_accesses = l1i_misses = l1i_writebacks = 0
        last_d_line = -1
        last_d_set: dict = {}
        last_d_dirty = False
        predict_and_update = self.predictor.predict_and_update
        btb_lookup = self.btb.lookup
        btb_insert = self.btb.insert
        ras_push = self.ras.push
        ras_pop = self.ras.pop

        ports = self._port_busy_until
        n_ports = len(ports)
        window = self._window
        window_append = window.append
        window_popleft = window.popleft
        pending = self._pending

        # Local aliases of the module-level constants (LOAD_FAST beats
        # LOAD_GLOBAL in the per-instruction loops below).
        NEVER_ = NEVER
        E_COMPLETE_ = E_COMPLETE
        E_SRC1_ = E_SRC1
        E_SRC2_ = E_SRC2
        E_DST_PHYS_ = E_DST_PHYS
        E_PREV_PHYS_ = E_PREV_PHYS
        E_FREES_ = E_FREES
        E_BLOCKS_ = E_BLOCKS
        E_CLS_ = E_CLS
        E_ADDR_ = E_ADDR
        CLS_IMUL = _CLS_IMUL
        CLS_IDIV = _CLS_IDIV
        CLS_LOAD = _CLS_LOAD
        CLS_STORE = _CLS_STORE
        CLS_BRANCH = _CLS_BRANCH
        CLS_JUMP = _CLS_JUMP
        OP_J = _OP_J
        OP_JAL = _OP_JAL
        OP_JALR = _OP_JALR
        F_FREES = FLAG_FREES
        F_TAKEN = FLAG_TAKEN
        # Droppable rows (kills / eliminated saves+restores) are exactly
        # those whose flags are not plain-program:
        F_DROP_MASK = FLAG_ELIMINATED | FLAG_PROGRAM
        F_PROGRAM = FLAG_PROGRAM

        dispatch_pos = self._dispatch_pos
        fetch_pos = self._fetch_pos
        cycle = self._cycle
        fetch_blocked_until = self._fetch_blocked_until
        # -1 = no unresolved mispredict (int sentinel keeps the hot
        # comparisons int-typed; the attribute keeps its None convention).
        unresolved = self._unresolved_mispredict
        if unresolved is None:
            unresolved = -1
        last_line = self._last_fetch_line

        free_len = len(free_list)
        win_len = len(window)

        # Counters, folded back into renamer/stats after the loop.
        committed = 0
        dispatched = 0
        eliminated = 0
        rename_stalls = 0
        window_stalls = 0
        control_insts = 0
        mispredicts = 0
        unmapped_reads = renamer.unmapped_reads
        allocations = renamer.allocations
        min_free = renamer.min_free

        while fetch_pos < total or dispatch_pos < fetch_pos or window:
            acted = False

            # ---- stage 1: commit -------------------------------------
            budget = commit_width
            while budget and window:
                entry = window[0]
                if entry[E_COMPLETE_] > cycle:  # NEVER while unissued
                    break
                window_popleft()
                win_len -= 1
                prev = entry[E_PREV_PHYS_]
                if prev >= 0:
                    free_append(prev)
                    free_len += 1
                frees = entry[E_FREES_]
                if frees:
                    for phys in frees:
                        free_append(phys)
                    free_len += len(frees)
                    renamer.pending_free -= len(frees)
                budget -= 1
                committed += 1
            if budget != commit_width:
                acted = True

            # ---- stage 2: issue + execute ----------------------------
            if pending:
                alus = total_alus
                muldivs = total_muldivs
                issued = 0
                kept: List[list] = []
                kept_append = kept.append
                scan = iter(pending)
                for entry in scan:
                    phys = entry[E_SRC1_]
                    if phys >= 0 and ready_cycle[phys] > cycle:
                        kept_append(entry)
                        continue
                    phys = entry[E_SRC2_]
                    if phys >= 0 and ready_cycle[phys] > cycle:
                        kept_append(entry)
                        continue
                    cls = entry[E_CLS_]
                    if cls == CLS_LOAD or cls == CLS_STORE:
                        if ports[0] <= cycle:
                            port = 0
                        else:
                            port = -1
                            port_index = 1
                            while port_index < n_ports:
                                if ports[port_index] <= cycle:
                                    port = port_index
                                    break
                                port_index += 1
                            if port < 0:
                                kept_append(entry)
                                continue
                        # D-cache access, L1 inlined (see Cache.access).
                        is_write = cls == CLS_STORE
                        line = entry[E_ADDR_] >> l1d_shift
                        l1d_accesses += 1
                        if line == last_d_line:
                            # Same line as the previous data access: it is
                            # already MRU, so the LRU reorder is a no-op.
                            if is_write and not last_d_dirty:
                                last_d_set[line] = True
                                last_d_dirty = True
                            latency = l1_latency
                        else:
                            cache_set = l1d_sets[line & l1d_set_mask]
                            if line in cache_set:
                                dirty = cache_set.pop(line) or is_write
                                cache_set[line] = dirty
                                latency = l1_latency
                            else:
                                l1d_misses += 1
                                if len(cache_set) >= l1d_assoc:
                                    victim = next(iter(cache_set))
                                    if cache_set.pop(victim):
                                        l1d_writebacks += 1
                                dirty = is_write
                                cache_set[line] = dirty
                                latency = (
                                    l1_l2_latency
                                    if l2_access(entry[E_ADDR_], write=is_write)
                                    else l1_l2_mem_latency
                                )
                            last_d_line = line
                            last_d_set = cache_set
                            last_d_dirty = dirty
                        if latency > l1_latency:
                            ports[port] = cycle + latency  # held until the fill
                        else:
                            ports[port] = cycle + 1
                        if is_write:
                            latency = store_latency
                    elif cls == CLS_IMUL or cls == CLS_IDIV:
                        if muldivs <= 0:
                            kept_append(entry)
                            continue
                        muldivs -= 1
                        latency = latency_of[cls]
                    else:
                        if alus <= 0:
                            kept_append(entry)
                            continue
                        alus -= 1
                        latency = latency_of[cls]
                    complete = cycle + latency
                    entry[E_COMPLETE_] = complete
                    dst_phys = entry[E_DST_PHYS_]
                    if dst_phys >= 0:
                        ready_cycle[dst_phys] = complete
                    if entry[E_BLOCKS_]:
                        fetch_blocked_until = complete + mispredict_penalty
                        unresolved = -1
                    issued += 1
                    if issued >= issue_width:
                        kept.extend(scan)  # C-speed drain of the rest
                        break
                pending = kept
                if issued:
                    acted = True

            # ---- stage 3: dispatch (decode + rename) -----------------
            n_dispatched = 0
            while dispatch_pos < fetch_pos:
                row = dispatch_pos
                pc, fl, dst, packed, cls, addr = replay[row]
                if fl & F_DROP_MASK != F_PROGRAM:  # eliminated, or a kill
                    # Decoded, not dispatched.  Unmapping happens now
                    # (decode); the freed physical registers ride with the
                    # youngest in-flight instruction and return to the free
                    # list when it commits, i.e. when this annotation would
                    # have committed.
                    dispatch_pos += 1
                    if fl & F_FREES:
                        freed = unmap(free_masks[row])
                        if freed:
                            if window:
                                tail = window[-1]
                                if tail[E_FREES_] is None:
                                    tail[E_FREES_] = freed
                                else:
                                    tail[E_FREES_].extend(freed)
                            else:
                                # Nothing in flight: the kill commits now.
                                for phys in freed:
                                    free_append(phys)
                                free_len += len(freed)
                                renamer.pending_free -= len(freed)
                    if fl & F_PROGRAM:  # an eliminated program inst (not a kill)
                        eliminated += 1
                    acted = True
                    continue
                if n_dispatched >= decode_width:
                    break
                if win_len >= window_size:
                    window_stalls += 1
                    break
                if dst >= 0 and not free_len:
                    rename_stalls += 1
                    break
                dispatch_pos += 1
                # Sources resolve through the map table before the
                # destination renames (an instruction never depends on
                # itself).  Unmapped sources (-1) are ready immediately.
                if packed:
                    src1 = arch_map[(packed & 63) - 1]
                    if src1 < 0:
                        unmapped_reads += 1
                    second = packed >> 6
                    if second:
                        src2 = arch_map[second - 1]
                        if src2 < 0:
                            unmapped_reads += 1
                    else:
                        src2 = -1
                else:
                    src1 = -1
                    src2 = -1
                if fl & F_FREES:
                    # I-DVI at calls/returns: unmap now, free at this commit.
                    frees = unmap(free_masks[row]) or None
                else:
                    frees = None
                if dst >= 0:
                    # renamer.allocate, inlined.
                    dst_phys = free_pop()
                    prev_phys = arch_map[dst]
                    arch_map[dst] = dst_phys
                    ready_cycle[dst_phys] = NEVER_
                    allocations += 1
                    free_len -= 1
                    if free_len < min_free:
                        min_free = free_len
                else:
                    dst_phys = -1
                    prev_phys = -1
                entry = [
                    NEVER_, src1, src2, dst_phys, prev_phys,
                    frees, unresolved == row, cls, addr,
                ]
                window_append(entry)
                win_len += 1
                pending.append(entry)
                n_dispatched += 1
                dispatched += 1
            if n_dispatched:
                acted = True

            # ---- stage 4: fetch --------------------------------------
            if cycle >= fetch_blocked_until and unresolved < 0:
                room = fetch_capacity - (fetch_pos - dispatch_pos)
                if room > fetch_width:
                    room = fetch_width
                stop = fetch_pos + room
                if stop > total:
                    stop = total
                fetch_start = fetch_pos
                while fetch_pos < stop:
                    pc = pcs[fetch_pos]
                    # Byte-address form: (pc << 2) >> shift equals the
                    # word-folded pc >> (shift - 2) for line sizes >= one
                    # word and stays correct for the sub-word lines
                    # CacheGeometry permits (where the folded shift would
                    # be negative).
                    line = (pc << 2) >> line_shift
                    if line != last_line:
                        # I-cache access, L1 inlined (see Cache.access).
                        last_line = line
                        cache_set = l1i_sets[line & l1i_set_mask]
                        l1i_accesses += 1
                        if line in cache_set:
                            cache_set[line] = cache_set.pop(line)
                        else:
                            l1i_misses += 1
                            if len(cache_set) >= l1i_assoc:
                                victim = next(iter(cache_set))
                                if cache_set.pop(victim):
                                    l1i_writebacks += 1
                            cache_set[line] = False
                            # Miss: the line arrives later; resume there.
                            fetch_blocked_until = cycle + (
                                l1_l2_latency
                                if l2_access(pc * 4)
                                else l1_l2_mem_latency
                            )
                            acted = True  # the I-cache state advanced
                            break
                    span = ctrl_dist[pc]
                    if span:
                        # Straight-line run: the next ``span`` rows fall
                        # through consecutive pcs, so only this line's
                        # slice of the run needs any bookkeeping at all —
                        # consume it in one step, stopping at the line
                        # crossing (re-probed above) or the fetch budget.
                        if line_shift >= 2:
                            to_line = (
                                ((line + 1) << line_shift) >> 2
                            ) - pc
                            if to_line < span:
                                span = to_line
                        else:
                            span = 1  # sub-word lines: every pc crosses
                        room = stop - fetch_pos
                        if room < span:
                            span = room
                        fetch_pos += span
                        continue
                    # Control transfer: train the predictors (inline of
                    # _predict).
                    row = fetch_pos
                    fetch_pos += 1
                    control_insts += 1
                    taken = flags[row] & F_TAKEN
                    next_pc = next_pcs[row]
                    if s_cls[pc] == CLS_BRANCH:
                        mispredicted = not predict_and_update(pc, taken)
                        if taken:
                            if (
                                not mispredicted
                                and btb_lookup(pc) != next_pc
                            ):
                                mispredicted = True
                            btb_insert(pc, next_pc)
                    else:
                        op = s_op[pc]
                        if op == OP_J:
                            mispredicted = False
                        elif op == OP_JAL:
                            ras_push(pc + 1)
                            mispredicted = False
                        elif op == OP_JALR:
                            ras_push(pc + 1)
                            predicted = btb_lookup(pc)
                            btb_insert(pc, next_pc)
                            mispredicted = predicted != next_pc
                        else:
                            # jr: predict through the return stack.
                            mispredicted = ras_pop() != next_pc
                    if mispredicted:
                        mispredicts += 1
                        unresolved = row
                        break
                    if taken:
                        break  # fetch discontinuity
                if fetch_pos != fetch_start:
                    acted = True

            if acted:
                cycle += 1
            else:
                # ---- idle-cycle fast-forward -------------------------
                # No stage changed any state this cycle, so none can act
                # before the earliest *scheduled* event: the window head
                # completing, the fetch redirect/I-miss fill arriving, or
                # a pending entry becoming operand-ready (plus a cache
                # port for memory ops).  Jumping the cycle counter to
                # that event is exact — the intermediate cycles would
                # replay this one verbatim — provided the per-cycle
                # dispatch stall counters account for the skipped
                # cycles below.
                target = NEVER_
                if window:
                    head_complete = window[0][E_COMPLETE_]
                    if head_complete < target:  # NEVER while unissued
                        target = head_complete
                if (
                    unresolved < 0
                    and fetch_pos < total
                    and cycle < fetch_blocked_until < target
                    and fetch_pos - dispatch_pos < fetch_capacity
                ):
                    target = fetch_blocked_until
                for entry in pending:
                    at = cycle + 1
                    phys = entry[E_SRC1_]
                    if phys >= 0 and ready_cycle[phys] > at:
                        at = ready_cycle[phys]
                    phys = entry[E_SRC2_]
                    if phys >= 0 and ready_cycle[phys] > at:
                        at = ready_cycle[phys]
                    if at >= target:
                        continue
                    cls = entry[E_CLS_]
                    if cls == CLS_LOAD or cls == CLS_STORE:
                        earliest_port = ports[0]
                        for port_index in range(1, n_ports):
                            if ports[port_index] < earliest_port:
                                earliest_port = ports[port_index]
                        if earliest_port > at:
                            at = earliest_port
                    if at < target:
                        target = at
                if cycle + 1 < target < NEVER_:
                    skipped = target - cycle - 1
                    if dispatch_pos < fetch_pos:
                        # Dispatch was (and stays) blocked during every
                        # skipped cycle; mirror its per-cycle counter.
                        if win_len >= window_size:
                            window_stalls += skipped
                        else:
                            rename_stalls += skipped
                    cycle = target
                else:
                    cycle += 1
            if check_invariants:
                in_flight = sum(
                    1 for entry in window if entry[E_PREV_PHYS_] >= 0
                )
                renamer.check_conservation(in_flight)

        # ---- fold the loop-local state back -------------------------
        self._pending = pending
        self._dispatch_pos = dispatch_pos
        self._fetch_pos = fetch_pos
        self._cycle = cycle
        self._fetch_blocked_until = fetch_blocked_until
        self._unresolved_mispredict = unresolved if unresolved >= 0 else None
        self._last_fetch_line = last_line
        renamer.unmapped_reads = unmapped_reads
        renamer.allocations = allocations
        renamer.min_free = min_free
        l1d.accesses += l1d_accesses
        l1d.misses += l1d_misses
        l1d.writebacks += l1d_writebacks
        l1i.accesses += l1i_accesses
        l1i.misses += l1i_misses
        l1i.writebacks += l1i_writebacks

        stats = self.stats
        stats.cycles = cycle
        program_insts = trace.program_insts
        stats.program_insts = program_insts
        stats.annotation_insts = total - program_insts
        stats.committed = committed
        stats.dispatched = dispatched
        stats.eliminated = eliminated
        stats.rename_stall_cycles = rename_stalls
        stats.window_full_stall_cycles = window_stalls
        stats.control_insts = control_insts
        stats.mispredicts = mispredicts
        stats.dcache_accesses = hierarchy.l1d.accesses
        stats.dcache_misses = hierarchy.l1d.misses
        stats.icache_accesses = hierarchy.l1i.accesses
        stats.icache_misses = hierarchy.l1i.misses
        stats.unmapped_reads = renamer.unmapped_reads
        stats.dvi_unmaps = renamer.dvi_unmaps
        stats.min_free_phys = renamer.min_free
        return stats


def simulate(
    config: MachineConfig, trace: Trace, *, check_invariants: bool = False
) -> PipelineStats:
    """Convenience wrapper: run one trace through one configuration."""
    return OutOfOrderCore(config, trace).run(check_invariants=check_invariants)
