"""Trace-driven out-of-order superscalar timing model.

Replays a :class:`~repro.sim.trace.Trace` through a four-stage resource
pipeline — fetch, dispatch (decode+rename), issue, commit — modelled after
SimpleScalar's ``sim-outorder`` with MIPS R10000-style renaming, which is
the paper's simulation vehicle (section 3).

Stage behaviour per cycle, in simulated order:

1. **Commit** retires up to ``commit_width`` completed instructions from
   the head of the window, freeing previous physical mappings and any
   DVI-pending physical registers attached to the retiring instruction.
2. **Issue** selects up to ``issue_width`` ready instructions oldest-first,
   subject to functional-unit and cache-port availability.  Loads and
   stores access the D-cache here; a mispredicted control transfer
   schedules the fetch redirect for its completion cycle.
3. **Dispatch** renames and inserts up to ``decode_width`` instructions
   into the window.  E-DVI ``kill`` annotations and LVM-eliminated
   saves/restores are *dropped here*: they consumed fetch/decode bandwidth
   but no window slot, no rename, no functional unit, and no cache port —
   exactly the paper's "fetched and decoded ... but not dispatched".
   Kills unmap their registers immediately and their physical registers
   are freed when the most recent dispatched instruction commits (the
   in-order-equivalent of "when the kill commits").
4. **Fetch** brings up to ``fetch_width`` trace records into the fetch
   queue, stopping at taken control transfers, I-cache misses, and
   unresolved mispredictions.

Wrong-path instructions are not simulated; the timing cost of a
misprediction is the fetch gap until the branch resolves plus the
configured redirect penalty, the standard trace-driven approximation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.isa.opcodes import OpClass, Opcode
from repro.sim.branch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.sim.branch.predictors import CombiningPredictor
from repro.sim.cache.hierarchy import MemoryHierarchy
from repro.sim.config import MachineConfig
from repro.sim.ooo.renamer import NEVER, Renamer
from repro.sim.ooo.stats import PipelineStats
from repro.sim.trace import Trace, TraceRecord


def _free_port(ports, cycle):
    """Index of a cache port free at ``cycle``, or -1."""
    for index, busy_until in enumerate(ports):
        if busy_until <= cycle:
            return index
    return -1


class _Entry:
    """A dispatched, in-flight instruction (window/ROB entry)."""

    __slots__ = (
        "rec", "dst_phys", "prev_phys", "src_phys",
        "issued", "complete_cycle", "frees", "blocks_fetch",
    )

    def __init__(self, rec: TraceRecord) -> None:
        self.rec = rec
        self.dst_phys = -1
        self.prev_phys = -1
        self.src_phys: List[int] = []
        self.issued = False
        self.complete_cycle = NEVER
        self.frees: List[int] = []
        self.blocks_fetch = False


class OutOfOrderCore:
    """One timing simulation of one trace on one machine configuration."""

    def __init__(self, config: MachineConfig, trace: Trace) -> None:
        self.config = config
        self.trace = trace
        self.stats = PipelineStats()
        self.renamer = Renamer(config.phys_regs)
        self.hierarchy = MemoryHierarchy(config.hierarchy)
        self.predictor = CombiningPredictor(
            config.bimodal_entries,
            config.gshare_entries,
            config.history_bits,
            config.chooser_entries,
        )
        self.btb = BranchTargetBuffer(config.btb_sets, config.btb_assoc)
        self.ras = ReturnAddressStack(config.ras_depth)

        self._window: Deque[_Entry] = deque()
        self._fetch_queue: Deque[TraceRecord] = deque()
        self._fetch_pos = 0
        self._cycle = 0
        self._fetch_blocked_until = 0
        #: Per-cache-port busy-until cycle.  A port is held for the full
        #: duration of an L1 miss (one outstanding miss per port -- the
        #: limited non-blocking behaviour of mid-90s data caches), which is
        #: what makes data bandwidth a contended resource and gives
        #: save/restore elimination its bandwidth-relief benefit (section
        #: 5.3's sensitivity analysis).
        self._port_busy_until: List[int] = [0] * config.cache_ports
        #: Sequence number of a fetched-but-unresolved mispredicted control
        #: transfer; fetch stalls while this is set.
        self._unresolved_mispredict: Optional[int] = None
        self._last_fetch_line = -1
        self._latency = config.latencies

    # ------------------------------------------------------------------

    def run(self, *, check_invariants: bool = False) -> PipelineStats:
        """Simulate to completion and return the statistics."""
        records = self.trace.records
        total = len(records)
        config = self.config
        stats = self.stats

        while (
            self._fetch_pos < total
            or self._fetch_queue
            or self._window
        ):
            self._commit(config.commit_width)
            self._issue(config.issue_width)
            self._dispatch(config.decode_width)
            self._fetch(config.fetch_width)
            self._cycle += 1
            if check_invariants:
                in_flight = sum(
                    1 for entry in self._window if entry.prev_phys >= 0
                )
                self.renamer.check_conservation(in_flight)

        stats.cycles = self._cycle
        stats.program_insts = sum(1 for r in records if r.is_program)
        stats.annotation_insts = total - stats.program_insts
        stats.dcache_accesses = self.hierarchy.l1d.accesses
        stats.dcache_misses = self.hierarchy.l1d.misses
        stats.icache_accesses = self.hierarchy.l1i.accesses
        stats.icache_misses = self.hierarchy.l1i.misses
        stats.unmapped_reads = self.renamer.unmapped_reads
        stats.dvi_unmaps = self.renamer.dvi_unmaps
        stats.min_free_phys = self.renamer.min_free
        return stats

    # ------------------------------------------------------------------
    # Stage 1: commit.
    # ------------------------------------------------------------------

    def _commit(self, width: int) -> None:
        window = self._window
        cycle = self._cycle
        renamer = self.renamer
        committed = 0
        while committed < width and window:
            entry = window[0]
            if not entry.issued or entry.complete_cycle > cycle:
                break
            window.popleft()
            if entry.prev_phys >= 0:
                renamer.release(entry.prev_phys)
            for phys in entry.frees:
                renamer.release(phys, pending=True)
            committed += 1
            self.stats.committed += 1

    # ------------------------------------------------------------------
    # Stage 2: issue + execute.
    # ------------------------------------------------------------------

    def _issue(self, width: int) -> None:
        cycle = self._cycle
        ready_cycle = self.renamer.ready_cycle
        alus = self.config.int_alus
        muldivs = self.config.int_muldiv
        ports = self._port_busy_until
        l1_latency = self.config.hierarchy.l1_latency
        issued = 0
        for entry in self._window:
            if issued >= width:
                break
            if entry.issued:
                continue
            operands_ready = True
            for phys in entry.src_phys:
                if ready_cycle[phys] > cycle:
                    operands_ready = False
                    break
            if not operands_ready:
                continue
            rec = entry.rec
            cls = rec.cls
            if cls is OpClass.LOAD or cls is OpClass.STORE:
                port = _free_port(ports, cycle)
                if port < 0:
                    continue
                latency = self.hierarchy.access_data(
                    rec.addr, write=cls is OpClass.STORE
                )
                if latency > l1_latency:
                    ports[port] = cycle + latency  # held until the fill
                else:
                    ports[port] = cycle + 1
                if cls is OpClass.STORE:
                    latency = self._latency[OpClass.STORE]
            elif cls is OpClass.IMUL or cls is OpClass.IDIV:
                if muldivs <= 0:
                    continue
                muldivs -= 1
                latency = self._latency[cls]
            else:
                if alus <= 0:
                    continue
                alus -= 1
                latency = self._latency[cls]
            entry.issued = True
            entry.complete_cycle = cycle + latency
            if entry.dst_phys >= 0:
                ready_cycle[entry.dst_phys] = entry.complete_cycle
            if entry.blocks_fetch:
                self._fetch_blocked_until = (
                    entry.complete_cycle + self.config.mispredict_penalty
                )
                self._unresolved_mispredict = None
            issued += 1

    # ------------------------------------------------------------------
    # Stage 3: dispatch (decode + rename).
    # ------------------------------------------------------------------

    def _dispatch(self, width: int) -> None:
        queue = self._fetch_queue
        window = self._window
        renamer = self.renamer
        window_size = self.config.window_size
        dispatched = 0
        while queue:
            rec = queue[0]
            if rec.op is Opcode.KILL or rec.eliminated:
                # Decoded, not dispatched.  Unmapping happens now (decode);
                # the freed physical registers ride with the youngest
                # in-flight instruction and return to the free list when it
                # commits, i.e. when this annotation would have committed.
                queue.popleft()
                if rec.free_mask:
                    freed = renamer.unmap(rec.free_mask)
                    if freed:
                        self._attach_frees(freed)
                self.stats.eliminated += 0 if rec.op is Opcode.KILL else 1
                continue
            if dispatched >= width:
                break
            if len(window) >= window_size:
                self.stats.window_full_stall_cycles += 1
                break
            if rec.dst >= 0 and not renamer.can_allocate():
                self.stats.rename_stall_cycles += 1
                break
            queue.popleft()
            entry = _Entry(rec)
            # Sources resolve through the map table before the destination
            # renames (an instruction never depends on itself).
            entry.src_phys = [
                phys
                for phys in (renamer.source(src) for src in rec.srcs)
                if phys >= 0
            ]
            if rec.free_mask:
                # I-DVI at calls/returns: unmap now, free at this commit.
                entry.frees = renamer.unmap(rec.free_mask)
            if rec.dst >= 0:
                entry.dst_phys, entry.prev_phys = renamer.allocate(rec.dst)
            if self._unresolved_mispredict == rec.seq:
                entry.blocks_fetch = True
            window.append(entry)
            dispatched += 1
            self.stats.dispatched += 1

    def _attach_frees(self, freed: List[int]) -> None:
        """Attach kill-freed registers to the youngest in-flight entry."""
        if self._window:
            self._window[-1].frees.extend(freed)
        else:
            # Nothing in flight: the kill commits immediately.
            for phys in freed:
                self.renamer.release(phys, pending=True)

    # ------------------------------------------------------------------
    # Stage 4: fetch.
    # ------------------------------------------------------------------

    def _fetch(self, width: int) -> None:
        cycle = self._cycle
        if cycle < self._fetch_blocked_until:
            return
        if self._unresolved_mispredict is not None:
            return
        records = self.trace.records
        total = len(records)
        queue = self._fetch_queue
        capacity = self.config.fetch_queue
        hierarchy = self.hierarchy
        l1_latency = self.config.hierarchy.l1_latency
        fetched = 0
        while fetched < width and len(queue) < capacity and self._fetch_pos < total:
            rec = records[self._fetch_pos]
            byte_pc = rec.pc * 4
            line = hierarchy.l1i.line_of(byte_pc)
            if line != self._last_fetch_line:
                latency = hierarchy.access_inst(byte_pc)
                self._last_fetch_line = line
                if latency > l1_latency:
                    # Miss: the line arrives later; resume fetching there.
                    self._fetch_blocked_until = cycle + latency
                    break
            self._fetch_pos += 1
            queue.append(rec)
            fetched += 1
            if rec.is_control:
                mispredicted = self._predict(rec)
                if mispredicted:
                    self.stats.mispredicts += 1
                    self._unresolved_mispredict = rec.seq
                    break
                if rec.taken:
                    break  # fetch discontinuity

    def _predict(self, rec: TraceRecord) -> bool:
        """Train the predictors; returns True on misprediction."""
        self.stats.control_insts += 1
        op = rec.op
        pc = rec.pc
        if rec.is_branch:
            direction_correct = self.predictor.predict_and_update(pc, rec.taken)
            mispredicted = not direction_correct
            if rec.taken:
                if not mispredicted and self.btb.lookup(pc) != rec.next_pc:
                    mispredicted = True
                self.btb.insert(pc, rec.next_pc)
            return mispredicted
        if op is Opcode.J:
            return False
        if op is Opcode.JAL:
            self.ras.push(pc + 1)
            return False
        if op is Opcode.JALR:
            self.ras.push(pc + 1)
            predicted = self.btb.lookup(pc)
            self.btb.insert(pc, rec.next_pc)
            return predicted != rec.next_pc
        # jr: predict through the return address stack.
        predicted_return = self.ras.pop()
        return predicted_return != rec.next_pc


def simulate(
    config: MachineConfig, trace: Trace, *, check_invariants: bool = False
) -> PipelineStats:
    """Convenience wrapper: run one trace through one configuration."""
    return OutOfOrderCore(config, trace).run(check_invariants=check_invariants)
