"""Statistics produced by a timing-simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class PipelineStats:
    """Counters and derived metrics for one out-of-order run.

    ``ipc`` follows the paper's convention: *original program instructions*
    per cycle.  Eliminated saves/restores count as completed program work;
    ``kill`` annotations never count (they are cycle overhead only).
    """

    cycles: int = 0
    program_insts: int = 0
    annotation_insts: int = 0
    dispatched: int = 0
    committed: int = 0
    eliminated: int = 0
    # Stall accounting (cycles in which dispatch was blocked by ...).
    rename_stall_cycles: int = 0
    window_full_stall_cycles: int = 0
    # Branch prediction.
    control_insts: int = 0
    mispredicts: int = 0
    # Memory.
    dcache_accesses: int = 0
    dcache_misses: int = 0
    icache_accesses: int = 0
    icache_misses: int = 0
    # Renaming.
    unmapped_reads: int = 0
    dvi_unmaps: int = 0
    min_free_phys: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.program_insts / self.cycles if self.cycles else 0.0

    @property
    def fetch_ipc(self) -> float:
        """All fetched instructions (annotations included) per cycle."""
        total = self.program_insts + self.annotation_insts
        return total / self.cycles if self.cycles else 0.0

    @property
    def mispredict_rate(self) -> float:
        return self.mispredicts / self.control_insts if self.control_insts else 0.0

    def summary(self) -> str:
        return (
            f"{self.program_insts} insts in {self.cycles} cycles "
            f"(IPC {self.ipc:.3f}); {self.eliminated} eliminated, "
            f"{self.mispredicts} mispredicts, "
            f"{self.rename_stall_cycles} rename-stall cycles"
        )
