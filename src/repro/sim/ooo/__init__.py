"""Out-of-order core: renamer, pipeline model, statistics."""

from repro.sim.ooo.core import OutOfOrderCore, simulate
from repro.sim.ooo.renamer import Renamer
from repro.sim.ooo.stats import PipelineStats

__all__ = ["OutOfOrderCore", "PipelineStats", "Renamer", "simulate"]
