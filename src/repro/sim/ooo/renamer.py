"""MIPS R10000-style register renaming with DVI-driven early reclamation.

The renamer owns the architectural-to-physical map table and the free list.
Standard operation:

* renaming a destination allocates a physical register from the free list
  and remembers the previous mapping, which is freed when the renaming
  instruction *commits* (the R10000 discipline);
* sources resolve through the map table to physical registers whose
  readiness the core tracks by completion cycle.

DVI extends this (section 4.1, Figure 4): when a ``kill`` (or an implicit
kill at a call/return) is decoded, the mappings of the killed registers are
*unmapped immediately* — the architectural name is bound to no physical
register — and the physical registers are returned to the free list when
the killing instruction commits (freeing is unrecoverable, so it must be
non-speculative; in this trace-driven model every decoded instruction
commits, so decode-time unmapping is exact).

A read of an unmapped register returns an undefined value and is *ready
immediately*; by the DVI correctness contract such reads only ever occur
for provably dead values (e.g. a not-eliminated save of a killed register),
where "any value ... results in correct execution" (section 7).

Conservation invariant: every physical register is at all times exactly one
of {mapped, on the free list, pending-free (held by an in-flight
instruction)}.  :meth:`check_conservation` asserts it and the property
tests hammer it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.errors import SimulationError
from repro.isa import registers as regs

#: Sentinel readiness cycle for a physical register still being computed.
NEVER = 1 << 60

#: Kill-mask -> architectural register tuple, memoized across all renamers
#: (the I-DVI call/return masks recur millions of times per sweep).
_MASK_REGS: Dict[int, Tuple[int, ...]] = {}


def _regs_of_mask(mask: int) -> Tuple[int, ...]:
    found = _MASK_REGS.get(mask)
    if found is None:
        found = tuple(
            arch for arch in range(1, regs.NUM_REGS) if mask >> arch & 1
        )
        _MASK_REGS[mask] = found
    return found


class Renamer:
    """Map table + free list + physical-register ready times."""

    def __init__(self, phys_regs: int) -> None:
        if phys_regs < regs.NUM_REGS:
            raise SimulationError(
                f"{phys_regs} physical registers cannot back "
                f"{regs.NUM_REGS - 1} renamable architectural registers"
            )
        self.phys_regs = phys_regs
        #: Architectural -> physical; r0 is never mapped; -1 = unmapped.
        self.map: List[int] = [-1] * regs.NUM_REGS
        #: Cycle at which each physical register's value is available.
        self.ready_cycle: List[int] = [0] * phys_regs
        # Machine startup: every architectural register holds a value, so
        # r1-r31 are mapped and ready; the rest of the file is free.
        for arch in range(1, regs.NUM_REGS):
            self.map[arch] = arch - 1
        self.free_list: Deque[int] = deque(range(regs.NUM_REGS - 1, phys_regs))
        #: Physical registers handed out for freeing at a future commit.
        self.pending_free = 0
        # Statistics.
        self.allocations = 0
        self.unmapped_reads = 0
        self.dvi_unmaps = 0
        self.min_free = len(self.free_list)

    # ------------------------------------------------------------------

    @property
    def free_count(self) -> int:
        return len(self.free_list)

    @property
    def mapped_count(self) -> int:
        return sum(1 for p in self.map if p >= 0)

    def can_allocate(self) -> bool:
        return bool(self.free_list)

    def allocate(self, arch: int) -> Tuple[int, int]:
        """Rename a destination; returns ``(new_phys, prev_phys)``.

        ``prev_phys`` (possibly -1) must be freed when the renaming
        instruction commits.
        """
        if arch == regs.ZERO:
            raise SimulationError("r0 is not renamed")
        if not self.free_list:
            raise SimulationError("rename with empty free list")
        phys = self.free_list.popleft()
        prev = self.map[arch]
        self.map[arch] = phys
        self.ready_cycle[phys] = NEVER
        self.allocations += 1
        if len(self.free_list) < self.min_free:
            self.min_free = len(self.free_list)
        return phys, prev

    def source(self, arch: int) -> int:
        """Physical register of a source, or -1 for r0 / unmapped (ready)."""
        if arch == regs.ZERO:
            return -1
        phys = self.map[arch]
        if phys < 0:
            self.unmapped_reads += 1
        return phys

    def unmap(self, mask: int) -> List[int]:
        """DVI kill: unbind the named registers *now* (decode time).

        Returns the physical registers to free at the killer's commit.
        """
        freed: List[int] = []
        arch_map = self.map
        for arch in _regs_of_mask(mask):
            phys = arch_map[arch]
            if phys >= 0:
                arch_map[arch] = -1
                freed.append(phys)
        count = len(freed)
        if count:
            self.dvi_unmaps += count
            self.pending_free += count
        return freed

    def mark_ready(self, phys: int, cycle: int) -> None:
        """The producing instruction will complete at ``cycle``."""
        self.ready_cycle[phys] = cycle

    def release(self, phys: int, *, pending: bool = False) -> None:
        """Return a physical register to the free list (at commit)."""
        if not 0 <= phys < self.phys_regs:
            raise SimulationError(f"bad physical register {phys}")
        self.free_list.append(phys)
        if pending:
            self.pending_free -= 1

    # ------------------------------------------------------------------

    def check_conservation(self, in_flight_prevs: int) -> None:
        """Assert the conservation invariant.

        ``in_flight_prevs`` counts previous mappings held by in-flight
        (dispatched, uncommitted) instructions awaiting commit-time free.
        """
        total = (
            self.mapped_count
            + len(self.free_list)
            + self.pending_free
            + in_flight_prevs
        )
        if total != self.phys_regs:
            raise SimulationError(
                f"physical register conservation violated: "
                f"{self.mapped_count} mapped + {len(self.free_list)} free + "
                f"{self.pending_free} pending + {in_flight_prevs} in-flight "
                f"= {total} != {self.phys_regs}"
            )
