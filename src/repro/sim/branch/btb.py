"""Branch target buffer and return address stack.

The BTB supplies targets for taken branches and indirect jumps at fetch
time; the RAS predicts return targets for ``jr ra``.  Both are standard
structures; the Figure 2 machine lists a BTB alongside its combining
predictor.
"""

from __future__ import annotations

from typing import List, Optional


class BranchTargetBuffer:
    """A set-associative tagged target buffer.

    ``lookup`` returns the cached target for a PC (or ``None``), ``insert``
    installs/refreshes one with LRU replacement within the set.
    """

    def __init__(self, sets: int = 512, assoc: int = 4) -> None:
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(f"BTB sets must be a power of two, got {sets}")
        if assoc <= 0:
            raise ValueError("BTB associativity must be positive")
        self.sets = sets
        self.assoc = assoc
        # Each set: list of (pc, target), most recently used last.
        self._sets: List[List[tuple]] = [[] for _ in range(sets)]
        self.lookups = 0
        self.hits = 0

    def _set_of(self, pc: int) -> List[tuple]:
        return self._sets[pc & (self.sets - 1)]

    def lookup(self, pc: int) -> Optional[int]:
        self.lookups += 1
        entries = self._set_of(pc)
        for position, (tag, target) in enumerate(entries):
            if tag == pc:
                entries.append(entries.pop(position))  # LRU refresh
                self.hits += 1
                return target
        return None

    def insert(self, pc: int, target: int) -> None:
        entries = self._set_of(pc)
        for position, (tag, _) in enumerate(entries):
            if tag == pc:
                entries.pop(position)
                break
        entries.append((pc, target))
        if len(entries) > self.assoc:
            entries.pop(0)

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ReturnAddressStack:
    """A bounded return-address predictor stack.

    Pushed on calls, popped on returns; overflow discards the oldest entry
    (standard hardware behaviour), underflow predicts nothing.
    """

    def __init__(self, depth: int = 32) -> None:
        if depth < 1:
            raise ValueError("RAS depth must be >= 1")
        self.depth = depth
        self._stack: List[int] = []

    def push(self, return_pc: int) -> None:
        self._stack.append(return_pc)
        if len(self._stack) > self.depth:
            del self._stack[0]

    def pop(self) -> Optional[int]:
        if self._stack:
            return self._stack.pop()
        return None

    def __len__(self) -> int:
        return len(self._stack)
