"""Branch prediction: direction predictors, BTB, RAS, and the registry."""

from repro.sim.branch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.sim.branch.predictors import (
    PREDICTORS,
    BimodalPredictor,
    CombiningPredictor,
    GsharePredictor,
    LocalTwoLevelPredictor,
    PredictorSpec,
    SaturatingCounterTable,
    StaticTakenPredictor,
    build_predictor,
)

__all__ = [
    "PREDICTORS",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "CombiningPredictor",
    "GsharePredictor",
    "LocalTwoLevelPredictor",
    "PredictorSpec",
    "ReturnAddressStack",
    "SaturatingCounterTable",
    "StaticTakenPredictor",
    "build_predictor",
]
