"""Branch prediction: direction predictors, BTB, and RAS."""

from repro.sim.branch.btb import BranchTargetBuffer, ReturnAddressStack
from repro.sim.branch.predictors import (
    BimodalPredictor,
    CombiningPredictor,
    GsharePredictor,
    SaturatingCounterTable,
)

__all__ = [
    "BimodalPredictor",
    "BranchTargetBuffer",
    "CombiningPredictor",
    "GsharePredictor",
    "ReturnAddressStack",
    "SaturatingCounterTable",
]
