"""Branch direction predictors and the ``PREDICTORS`` registry.

The paper's machine (Figure 2) uses a "16-bit history, combinational
gshare/bimod" predictor — SimpleScalar's ``comb`` predictor: a bimodal
table, a gshare table indexed by the PC xor a 16-bit global history, and a
chooser (meta) table of 2-bit counters that learns, per branch, which
component to trust.

Every predictor is a pluggable component: it exposes
``predict_and_update(pc, taken) -> bool`` (the timing core's single
per-branch call; the return value is prediction *correctness*) plus
``lookups``/``hits``/``accuracy`` counters, and registers a
:class:`PredictorSpec` in :data:`PREDICTORS` under the name a
:class:`~repro.sim.config.MachineConfig` selects via ``predictor_spec``.
Beyond the Figure 2 trio (``bimodal``, ``gshare``, ``comb``) the registry
carries a per-branch two-level ``local`` predictor and a stateless
``static-taken`` baseline.

All tables hold 2-bit saturating counters (0-3; >=2 predicts taken).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List

from repro.registry import Registry

if TYPE_CHECKING:  # import cycle: config selects predictors by name only
    from repro.sim.config import MachineConfig


class SaturatingCounterTable:
    """A table of 2-bit saturating counters."""

    def __init__(self, size: int, initial: int = 1) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError(f"table size must be a power of two, got {size}")
        if not 0 <= initial <= 3:
            raise ValueError(f"counter value out of range: {initial}")
        self.size = size
        self._mask = size - 1
        self._table: List[int] = [initial] * size

    def counter(self, index: int) -> int:
        return self._table[index & self._mask]

    def predict(self, index: int) -> bool:
        return self._table[index & self._mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        index &= self._mask
        value = self._table[index]
        if taken:
            if value < 3:
                self._table[index] = value + 1
        elif value > 0:
            self._table[index] = value - 1


class _AccuracyMixin:
    """The ``lookups``/``hits``/``accuracy`` surface every predictor shares."""

    lookups: int
    hits: int

    @property
    def accuracy(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def _score(self, correct: bool) -> bool:
        self.lookups += 1
        if correct:
            self.hits += 1
        return correct


class BimodalPredictor(_AccuracyMixin):
    """PC-indexed 2-bit counter predictor."""

    def __init__(self, size: int = 4096) -> None:
        self.table = SaturatingCounterTable(size)
        self.lookups = 0
        self.hits = 0

    def predict(self, pc: int) -> bool:
        return self.table.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(pc, taken)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, train, and return whether the prediction was correct."""
        prediction = self.table.predict(pc)
        self.table.update(pc, taken)
        return self._score(prediction == taken)


class GsharePredictor(_AccuracyMixin):
    """Global-history predictor: counters indexed by ``pc xor history``."""

    def __init__(self, size: int = 65536, history_bits: int = 16) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.table = SaturatingCounterTable(size)
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self.history = 0
        self.lookups = 0
        self.hits = 0

    def _index(self, pc: int) -> int:
        return pc ^ self.history

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)
        self.history = ((self.history << 1) | (1 if taken else 0)) & self._history_mask

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, train (counters + history), and return correctness."""
        prediction = self.predict(pc)
        self.update(pc, taken)
        return self._score(prediction == taken)


class LocalTwoLevelPredictor(_AccuracyMixin):
    """Per-branch two-level predictor (Yeh/Patt PAg).

    A PC-indexed table of per-branch history shift registers selects into
    a shared pattern table of 2-bit counters, so each branch is predicted
    from *its own* recent pattern rather than the global interleaving —
    the complement of gshare's global history.
    """

    def __init__(self, history_entries: int = 1024,
                 history_bits: int = 10) -> None:
        if history_entries <= 0 or history_entries & (history_entries - 1):
            raise ValueError(
                f"history_entries must be a power of two, got {history_entries}"
            )
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.history_bits = history_bits
        self._histories: List[int] = [0] * history_entries
        self._history_index_mask = history_entries - 1
        self._history_mask = (1 << history_bits) - 1
        self.pattern = SaturatingCounterTable(1 << history_bits)
        self.lookups = 0
        self.hits = 0

    def predict(self, pc: int) -> bool:
        return self.pattern.predict(self._histories[pc & self._history_index_mask])

    def update(self, pc: int, taken: bool) -> None:
        slot = pc & self._history_index_mask
        history = self._histories[slot]
        self.pattern.update(history, taken)
        self._histories[slot] = (
            (history << 1) | (1 if taken else 0)
        ) & self._history_mask

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict from the branch's local pattern, train, return correctness."""
        prediction = self.predict(pc)
        self.update(pc, taken)
        return self._score(prediction == taken)


class StaticTakenPredictor(_AccuracyMixin):
    """Stateless always-taken baseline (the pre-dynamic-prediction floor)."""

    def __init__(self) -> None:
        self.lookups = 0
        self.hits = 0

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        pass

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        return self._score(taken)


class CombiningPredictor(_AccuracyMixin):
    """McFarling-style combining (tournament) predictor.

    The chooser counter moves toward the component that was correct when
    they disagree.  This is the Figure 2 configuration's predictor.
    """

    def __init__(
        self,
        bimodal_size: int = 4096,
        gshare_size: int = 65536,
        history_bits: int = 16,
        chooser_size: int = 4096,
    ) -> None:
        self.bimodal = BimodalPredictor(bimodal_size)
        self.gshare = GsharePredictor(gshare_size, history_bits)
        self.chooser = SaturatingCounterTable(chooser_size)
        self.lookups = 0
        self.hits = 0
        # Flat views of the component tables: predict_and_update runs once
        # per fetched branch and is rewritten table-direct so the timing
        # core pays one method call per branch instead of seven.
        self._bim_table = self.bimodal.table._table
        self._bim_mask = self.bimodal.table._mask
        self._gsh_table = self.gshare.table._table
        self._gsh_mask = self.gshare.table._mask
        self._cho_table = self.chooser._table
        self._cho_mask = self.chooser._mask
        self._history_mask = self.gshare._history_mask

    def predict(self, pc: int) -> bool:
        if self.chooser.predict(pc):  # >=2 -> trust gshare
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, train all components, and return prediction correctness.

        Behaviourally identical to the component-object formulation
        (predict all, chooser trains on disagreement toward the component
        matching the outcome, both components train, history shifts); the
        tables are just accessed directly.
        """
        gshare = self.gshare
        bim_table = self._bim_table
        gsh_table = self._gsh_table
        cho_table = self._cho_table
        bim_index = pc & self._bim_mask
        gsh_index = (pc ^ gshare.history) & self._gsh_mask
        cho_index = pc & self._cho_mask
        bimodal_guess = bim_table[bim_index] >= 2
        gshare_guess = gsh_table[gsh_index] >= 2
        prediction = gshare_guess if cho_table[cho_index] >= 2 else bimodal_guess
        if bimodal_guess != gshare_guess:
            value = cho_table[cho_index]
            if gshare_guess == taken:
                if value < 3:
                    cho_table[cho_index] = value + 1
            elif value > 0:
                cho_table[cho_index] = value - 1
        value = bim_table[bim_index]
        if taken:
            if value < 3:
                bim_table[bim_index] = value + 1
        elif value > 0:
            bim_table[bim_index] = value - 1
        value = gsh_table[gsh_index]
        if taken:
            if value < 3:
                gsh_table[gsh_index] = value + 1
        elif value > 0:
            gsh_table[gsh_index] = value - 1
        gshare.history = (
            (gshare.history << 1) | (1 if taken else 0)
        ) & self._history_mask
        return self._score(prediction == taken)


# ----------------------------------------------------------------------
# The predictor registry.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PredictorSpec:
    """A named, machine-configurable branch predictor family.

    ``build`` instantiates a fresh predictor for one timing simulation,
    sized from the :class:`~repro.sim.config.MachineConfig` fields;
    ``summarize`` renders the Figure 2-style one-line description the
    ``machine`` CLI table and ``list --predictors`` print.
    """

    name: str
    description: str
    build: Callable[["MachineConfig"], object]
    summarize: Callable[["MachineConfig"], str]


#: Name -> :class:`PredictorSpec`; ``MachineConfig.predictor_spec`` values
#: resolve here.
PREDICTORS: Registry[PredictorSpec] = Registry("predictor")

PREDICTORS.register("comb", PredictorSpec(
    name="comb",
    description="combining gshare/bimodal tournament (the Figure 2 default)",
    build=lambda config: CombiningPredictor(
        config.bimodal_entries,
        config.gshare_entries,
        config.history_bits,
        config.chooser_entries,
    ),
    summarize=lambda config: (
        f"{config.history_bits}-bit history, BTB, combining gshare/bimod"
    ),
))

PREDICTORS.register("bimodal", PredictorSpec(
    name="bimodal",
    description="PC-indexed 2-bit saturating counters",
    build=lambda config: BimodalPredictor(config.bimodal_entries),
    summarize=lambda config: (
        f"bimodal, {config.bimodal_entries} x 2-bit counters, BTB"
    ),
))

PREDICTORS.register("gshare", PredictorSpec(
    name="gshare",
    description="global-history xor-indexed 2-bit counters",
    build=lambda config: GsharePredictor(
        config.gshare_entries, config.history_bits
    ),
    summarize=lambda config: (
        f"gshare, {config.history_bits}-bit global history, BTB"
    ),
))

PREDICTORS.register("local", PredictorSpec(
    name="local",
    description="per-branch two-level (PAg) local-history predictor",
    build=lambda config: LocalTwoLevelPredictor(
        config.local_entries, config.local_history_bits
    ),
    summarize=lambda config: (
        f"local two-level, {config.local_entries} x "
        f"{config.local_history_bits}-bit histories, BTB"
    ),
))

PREDICTORS.register("static-taken", PredictorSpec(
    name="static-taken",
    description="always-taken static baseline (no dynamic state)",
    build=lambda config: StaticTakenPredictor(),
    summarize=lambda config: "static always-taken, BTB",
))


def build_predictor(config: "MachineConfig"):
    """Instantiate the predictor ``config.predictor_spec`` names."""
    return PREDICTORS.get(config.predictor_spec).build(config)
