"""Branch direction predictors: bimodal, gshare, and the combining predictor.

The paper's machine (Figure 2) uses a "16-bit history, combinational
gshare/bimod" predictor — SimpleScalar's ``comb`` predictor: a bimodal
table, a gshare table indexed by the PC xor a 16-bit global history, and a
chooser (meta) table of 2-bit counters that learns, per branch, which
component to trust.

All tables hold 2-bit saturating counters (0-3; >=2 predicts taken).
"""

from __future__ import annotations

from typing import List


class SaturatingCounterTable:
    """A table of 2-bit saturating counters."""

    def __init__(self, size: int, initial: int = 1) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError(f"table size must be a power of two, got {size}")
        if not 0 <= initial <= 3:
            raise ValueError(f"counter value out of range: {initial}")
        self.size = size
        self._mask = size - 1
        self._table: List[int] = [initial] * size

    def counter(self, index: int) -> int:
        return self._table[index & self._mask]

    def predict(self, index: int) -> bool:
        return self._table[index & self._mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        index &= self._mask
        value = self._table[index]
        if taken:
            if value < 3:
                self._table[index] = value + 1
        elif value > 0:
            self._table[index] = value - 1


class BimodalPredictor:
    """PC-indexed 2-bit counter predictor."""

    def __init__(self, size: int = 4096) -> None:
        self.table = SaturatingCounterTable(size)

    def predict(self, pc: int) -> bool:
        return self.table.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(pc, taken)


class GsharePredictor:
    """Global-history predictor: counters indexed by ``pc xor history``."""

    def __init__(self, size: int = 65536, history_bits: int = 16) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.table = SaturatingCounterTable(size)
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self.history = 0

    def _index(self, pc: int) -> int:
        return pc ^ self.history

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)
        self.history = ((self.history << 1) | (1 if taken else 0)) & self._history_mask


class CombiningPredictor:
    """McFarling-style combining (tournament) predictor.

    The chooser counter moves toward the component that was correct when
    they disagree.  This is the Figure 2 configuration's predictor.
    """

    def __init__(
        self,
        bimodal_size: int = 4096,
        gshare_size: int = 65536,
        history_bits: int = 16,
        chooser_size: int = 4096,
    ) -> None:
        self.bimodal = BimodalPredictor(bimodal_size)
        self.gshare = GsharePredictor(gshare_size, history_bits)
        self.chooser = SaturatingCounterTable(chooser_size)
        self.lookups = 0
        self.hits = 0

    def predict(self, pc: int) -> bool:
        if self.chooser.predict(pc):  # >=2 -> trust gshare
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, train all components, and return prediction correctness."""
        bimodal_guess = self.bimodal.predict(pc)
        gshare_guess = self.gshare.predict(pc)
        prediction = gshare_guess if self.chooser.predict(pc) else bimodal_guess
        if bimodal_guess != gshare_guess:
            self.chooser.update(pc, gshare_guess == taken)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, taken)
        self.lookups += 1
        correct = prediction == taken
        if correct:
            self.hits += 1
        return correct

    @property
    def accuracy(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
