"""Branch direction predictors: bimodal, gshare, and the combining predictor.

The paper's machine (Figure 2) uses a "16-bit history, combinational
gshare/bimod" predictor — SimpleScalar's ``comb`` predictor: a bimodal
table, a gshare table indexed by the PC xor a 16-bit global history, and a
chooser (meta) table of 2-bit counters that learns, per branch, which
component to trust.

All tables hold 2-bit saturating counters (0-3; >=2 predicts taken).
"""

from __future__ import annotations

from typing import List


class SaturatingCounterTable:
    """A table of 2-bit saturating counters."""

    def __init__(self, size: int, initial: int = 1) -> None:
        if size <= 0 or size & (size - 1):
            raise ValueError(f"table size must be a power of two, got {size}")
        if not 0 <= initial <= 3:
            raise ValueError(f"counter value out of range: {initial}")
        self.size = size
        self._mask = size - 1
        self._table: List[int] = [initial] * size

    def counter(self, index: int) -> int:
        return self._table[index & self._mask]

    def predict(self, index: int) -> bool:
        return self._table[index & self._mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        index &= self._mask
        value = self._table[index]
        if taken:
            if value < 3:
                self._table[index] = value + 1
        elif value > 0:
            self._table[index] = value - 1


class BimodalPredictor:
    """PC-indexed 2-bit counter predictor."""

    def __init__(self, size: int = 4096) -> None:
        self.table = SaturatingCounterTable(size)

    def predict(self, pc: int) -> bool:
        return self.table.predict(pc)

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(pc, taken)


class GsharePredictor:
    """Global-history predictor: counters indexed by ``pc xor history``."""

    def __init__(self, size: int = 65536, history_bits: int = 16) -> None:
        if history_bits <= 0:
            raise ValueError("history_bits must be positive")
        self.table = SaturatingCounterTable(size)
        self.history_bits = history_bits
        self._history_mask = (1 << history_bits) - 1
        self.history = 0

    def _index(self, pc: int) -> int:
        return pc ^ self.history

    def predict(self, pc: int) -> bool:
        return self.table.predict(self._index(pc))

    def update(self, pc: int, taken: bool) -> None:
        self.table.update(self._index(pc), taken)
        self.history = ((self.history << 1) | (1 if taken else 0)) & self._history_mask


class CombiningPredictor:
    """McFarling-style combining (tournament) predictor.

    The chooser counter moves toward the component that was correct when
    they disagree.  This is the Figure 2 configuration's predictor.
    """

    def __init__(
        self,
        bimodal_size: int = 4096,
        gshare_size: int = 65536,
        history_bits: int = 16,
        chooser_size: int = 4096,
    ) -> None:
        self.bimodal = BimodalPredictor(bimodal_size)
        self.gshare = GsharePredictor(gshare_size, history_bits)
        self.chooser = SaturatingCounterTable(chooser_size)
        self.lookups = 0
        self.hits = 0
        # Flat views of the component tables: predict_and_update runs once
        # per fetched branch and is rewritten table-direct so the timing
        # core pays one method call per branch instead of seven.
        self._bim_table = self.bimodal.table._table
        self._bim_mask = self.bimodal.table._mask
        self._gsh_table = self.gshare.table._table
        self._gsh_mask = self.gshare.table._mask
        self._cho_table = self.chooser._table
        self._cho_mask = self.chooser._mask
        self._history_mask = self.gshare._history_mask

    def predict(self, pc: int) -> bool:
        if self.chooser.predict(pc):  # >=2 -> trust gshare
            return self.gshare.predict(pc)
        return self.bimodal.predict(pc)

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict, train all components, and return prediction correctness.

        Behaviourally identical to the component-object formulation
        (predict all, chooser trains on disagreement toward the component
        matching the outcome, both components train, history shifts); the
        tables are just accessed directly.
        """
        gshare = self.gshare
        bim_table = self._bim_table
        gsh_table = self._gsh_table
        cho_table = self._cho_table
        bim_index = pc & self._bim_mask
        gsh_index = (pc ^ gshare.history) & self._gsh_mask
        cho_index = pc & self._cho_mask
        bimodal_guess = bim_table[bim_index] >= 2
        gshare_guess = gsh_table[gsh_index] >= 2
        prediction = gshare_guess if cho_table[cho_index] >= 2 else bimodal_guess
        if bimodal_guess != gshare_guess:
            value = cho_table[cho_index]
            if gshare_guess == taken:
                if value < 3:
                    cho_table[cho_index] = value + 1
            elif value > 0:
                cho_table[cho_index] = value - 1
        value = bim_table[bim_index]
        if taken:
            if value < 3:
                bim_table[bim_index] = value + 1
        elif value > 0:
            bim_table[bim_index] = value - 1
        value = gsh_table[gsh_index]
        if taken:
            if value < 3:
                gsh_table[gsh_index] = value + 1
        elif value > 0:
            gsh_table[gsh_index] = value - 1
        gshare.history = (
            (gshare.history << 1) | (1 if taken else 0)
        ) & self._history_mask
        self.lookups += 1
        correct = prediction == taken
        if correct:
            self.hits += 1
        return correct

    @property
    def accuracy(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
