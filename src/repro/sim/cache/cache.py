"""Set-associative cache with LRU replacement.

Models hit/miss behaviour and latency only — this is a timing simulator,
so no data is stored.  Writes allocate (SimpleScalar's default for its
write-back caches); dirty-eviction write-back traffic is counted but adds
no latency (the paper's configuration gives fixed L1/L2/memory latencies).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape parameters of one cache level."""

    name: str
    size_bytes: int
    assoc: int
    line_bytes: int
    hit_latency: int

    def __post_init__(self) -> None:
        if self.line_bytes <= 0 or self.line_bytes & (self.line_bytes - 1):
            raise ValueError(f"line size must be a power of two: {self.line_bytes}")
        if self.size_bytes % (self.line_bytes * self.assoc):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"assoc*line ({self.assoc}*{self.line_bytes})"
            )
        sets = self.size_bytes // (self.line_bytes * self.assoc)
        if sets & (sets - 1):
            raise ValueError(f"{self.name}: set count {sets} not a power of two")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.assoc)


class Cache:
    """One cache level."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._set_shift = geometry.line_bytes.bit_length() - 1
        self._set_mask = geometry.num_sets - 1
        # Per set: tag -> dirty flag; insertion order is LRU order (oldest
        # first) because dict preserves insertion order and hits re-insert.
        self._sets: List[Dict[int, bool]] = [dict() for _ in range(geometry.num_sets)]
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0

    def line_of(self, addr: int) -> int:
        """The line-granular address (used to coalesce sequential fetches)."""
        return addr >> self._set_shift

    def access(self, addr: int, *, write: bool = False) -> bool:
        """Access ``addr``; returns True on hit.  Misses allocate."""
        self.accesses += 1
        line = addr >> self._set_shift
        cache_set = self._sets[line & self._set_mask]
        tag = line
        if tag in cache_set:
            dirty = cache_set.pop(tag)
            cache_set[tag] = dirty or write
            return True
        self.misses += 1
        if len(cache_set) >= self.geometry.assoc:
            victim_tag = next(iter(cache_set))
            if cache_set.pop(victim_tag):
                self.writebacks += 1
        cache_set[tag] = write
        return False

    def contains(self, addr: int) -> bool:
        """Non-updating lookup (for tests)."""
        line = addr >> self._set_shift
        return line in self._sets[line & self._set_mask]

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0
        self.writebacks = 0
