"""Two-level cache hierarchy matching the Figure 2 machine.

Split 64KB/4-way L1 I and D caches (1-cycle), a unified 512KB/4-way L2
(8-cycle), and a flat main memory latency behind it.  ``access`` returns
the total latency of a reference entering at L1.

Named hierarchy presets register :class:`HierarchySpec` entries in
:data:`HIERARCHIES`; a :class:`~repro.sim.config.MachineConfig` selects
one by name via ``hierarchy_spec`` (the ``micro97`` preset is the
Figure 2 default), and the CLI's ``list --hierarchies`` / ``sweep
--axis hierarchy`` enumerate them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.registry import Registry
from repro.sim.cache.cache import Cache, CacheGeometry


@dataclass(frozen=True)
class HierarchyConfig:
    """Parameters of the memory hierarchy."""

    l1i_size: int = 64 * 1024
    l1i_assoc: int = 4
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 4
    line_bytes: int = 32
    l1_latency: int = 1
    l2_size: int = 512 * 1024
    l2_assoc: int = 4
    l2_latency: int = 8
    memory_latency: int = 40


# ----------------------------------------------------------------------
# The hierarchy-preset registry.
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class HierarchySpec:
    """A named cache-hierarchy preset."""

    name: str
    description: str
    build: Callable[[], HierarchyConfig]


#: Name -> :class:`HierarchySpec`; ``MachineConfig.hierarchy_spec``
#: values resolve here.
HIERARCHIES: Registry[HierarchySpec] = Registry("hierarchy")

HIERARCHIES.register("micro97", HierarchySpec(
    name="micro97",
    description="Figure 2: 64KB/4-way split L1s, 512KB/4-way L2 (8 cyc), "
                "40-cycle memory",
    build=HierarchyConfig,
))

HIERARCHIES.register("compact", HierarchySpec(
    name="compact",
    description="embedded-class: 16KB/2-way split L1s, 128KB/4-way L2, "
                "60-cycle memory",
    build=lambda: HierarchyConfig(
        l1i_size=16 * 1024, l1i_assoc=2,
        l1d_size=16 * 1024, l1d_assoc=2,
        l2_size=128 * 1024, l2_assoc=4,
        memory_latency=60,
    ),
))

HIERARCHIES.register("deep", HierarchySpec(
    name="deep",
    description="server-class: 128KB/8-way split L1s, 2MB/8-way L2 "
                "(12 cyc), 80-cycle memory",
    build=lambda: HierarchyConfig(
        l1i_size=128 * 1024, l1i_assoc=8,
        l1d_size=128 * 1024, l1d_assoc=8,
        l2_size=2 * 1024 * 1024, l2_assoc=8, l2_latency=12,
        memory_latency=80,
    ),
))

HIERARCHIES.register("slow-memory", HierarchySpec(
    name="slow-memory",
    description="Figure 2 caches in front of 120-cycle memory "
                "(bandwidth-starved sensitivity point)",
    build=lambda: replace(HierarchyConfig(), memory_latency=120),
))


def build_hierarchy_config(name: str) -> HierarchyConfig:
    """The :class:`HierarchyConfig` the named preset describes."""
    return HIERARCHIES.get(name).build()


class MemoryHierarchy:
    """Split L1s over a unified L2 over main memory."""

    def __init__(self, config: HierarchyConfig = HierarchyConfig()) -> None:
        self.config = config
        self.l1i = Cache(
            CacheGeometry("L1I", config.l1i_size, config.l1i_assoc,
                          config.line_bytes, config.l1_latency)
        )
        self.l1d = Cache(
            CacheGeometry("L1D", config.l1d_size, config.l1d_assoc,
                          config.line_bytes, config.l1_latency)
        )
        self.l2 = Cache(
            CacheGeometry("L2", config.l2_size, config.l2_assoc,
                          config.line_bytes, config.l2_latency)
        )

    def access_data(self, addr: int, *, write: bool = False) -> int:
        """Latency of a data reference at byte address ``addr``."""
        latency = self.config.l1_latency
        if self.l1d.access(addr, write=write):
            return latency
        latency += self.config.l2_latency
        if self.l2.access(addr, write=write):
            return latency
        return latency + self.config.memory_latency

    def access_inst(self, addr: int) -> int:
        """Latency of an instruction fetch at byte address ``addr``."""
        latency = self.config.l1_latency
        if self.l1i.access(addr):
            return latency
        latency += self.config.l2_latency
        if self.l2.access(addr):
            return latency
        return latency + self.config.memory_latency
