"""Two-level cache hierarchy matching the Figure 2 machine.

Split 64KB/4-way L1 I and D caches (1-cycle), a unified 512KB/4-way L2
(8-cycle), and a flat main memory latency behind it.  ``access`` returns
the total latency of a reference entering at L1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.cache.cache import Cache, CacheGeometry


@dataclass(frozen=True)
class HierarchyConfig:
    """Parameters of the memory hierarchy."""

    l1i_size: int = 64 * 1024
    l1i_assoc: int = 4
    l1d_size: int = 64 * 1024
    l1d_assoc: int = 4
    line_bytes: int = 32
    l1_latency: int = 1
    l2_size: int = 512 * 1024
    l2_assoc: int = 4
    l2_latency: int = 8
    memory_latency: int = 40


class MemoryHierarchy:
    """Split L1s over a unified L2 over main memory."""

    def __init__(self, config: HierarchyConfig = HierarchyConfig()) -> None:
        self.config = config
        self.l1i = Cache(
            CacheGeometry("L1I", config.l1i_size, config.l1i_assoc,
                          config.line_bytes, config.l1_latency)
        )
        self.l1d = Cache(
            CacheGeometry("L1D", config.l1d_size, config.l1d_assoc,
                          config.line_bytes, config.l1_latency)
        )
        self.l2 = Cache(
            CacheGeometry("L2", config.l2_size, config.l2_assoc,
                          config.line_bytes, config.l2_latency)
        )

    def access_data(self, addr: int, *, write: bool = False) -> int:
        """Latency of a data reference at byte address ``addr``."""
        latency = self.config.l1_latency
        if self.l1d.access(addr, write=write):
            return latency
        latency += self.config.l2_latency
        if self.l2.access(addr, write=write):
            return latency
        return latency + self.config.memory_latency

    def access_inst(self, addr: int) -> int:
        """Latency of an instruction fetch at byte address ``addr``."""
        latency = self.config.l1_latency
        if self.l1i.access(addr):
            return latency
        latency += self.config.l2_latency
        if self.l2.access(addr):
            return latency
        return latency + self.config.memory_latency
