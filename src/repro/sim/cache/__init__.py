"""Cache models: set-associative caches and the two-level hierarchy."""

from repro.sim.cache.cache import Cache, CacheGeometry
from repro.sim.cache.hierarchy import HierarchyConfig, MemoryHierarchy

__all__ = ["Cache", "CacheGeometry", "HierarchyConfig", "MemoryHierarchy"]
