"""Machine configuration — Figure 2 of the paper.

``MachineConfig.micro97()`` reproduces the evaluated machine: a 4-way
superscalar with a 64-entry instruction window, 4 integer units (2 capable
of multiply/divide), 2 fully-independent cache ports, 64KB 4-way L1s,
a 512KB 4-way L2, and a 16-bit-history combining gshare/bimodal predictor
with a BTB.  The physical register file size is the Figure 5/6 sweep
variable; the paper's "current processors" ship 64-80, and 64 is the
no-DVI performance peak, so 64 is the default.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.isa.opcodes import DEFAULT_LATENCY, OpClass
from repro.sim.branch.predictors import PREDICTORS
from repro.sim.cache.hierarchy import (
    HIERARCHIES,
    HierarchyConfig,
    build_hierarchy_config,
)

#: Minimum physical registers: one per renamable architectural register
#: (r1-r31) plus one free register so rename can always eventually proceed.
MIN_PHYS_REGS = 32


@dataclass(frozen=True)
class MachineConfig:
    """Out-of-order core parameters.

    ``fetch_width`` defaults to twice the issue width: the fetch unit reads
    ahead into the 16-entry fetch queue to ride out taken-branch
    discontinuities.  The synthetic workloads have shorter basic blocks
    than compiled SPEC95 code, and without fetch-ahead the in-order fetch
    stage becomes the sole bottleneck and masks every bandwidth effect the
    paper studies (DESIGN.md documents this calibration).
    """

    fetch_width: int = 8
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    window_size: int = 64
    fetch_queue: int = 16
    int_alus: int = 4
    int_muldiv: int = 2
    cache_ports: int = 2
    phys_regs: int = 64
    mispredict_penalty: int = 3
    hierarchy: HierarchyConfig = field(default_factory=HierarchyConfig)
    latencies: Dict[OpClass, int] = field(
        default_factory=lambda: dict(DEFAULT_LATENCY)
    )
    # Branch prediction (Figure 2: 16-bit history gshare/bimod + BTB).
    bimodal_entries: int = 4096
    gshare_entries: int = 65536
    history_bits: int = 16
    chooser_entries: int = 4096
    btb_sets: int = 512
    btb_assoc: int = 4
    ras_depth: int = 32
    # Sizing of the registered ``local`` two-level predictor.
    local_entries: int = 1024
    local_history_bits: int = 10
    # Registered component selections (see repro.registry): the direction
    # predictor the timing core instantiates, and the name of the
    # hierarchy preset ``hierarchy`` was derived from.  ``hierarchy``
    # stays the source of truth for cache parameters (per-figure knobs
    # like ``with_icache`` still tweak it field-wise); the spec names ride
    # along so cache keys and reports carry the scenario identity.
    predictor_spec: str = "comb"
    hierarchy_spec: str = "micro97"

    def __post_init__(self) -> None:
        if self.phys_regs < MIN_PHYS_REGS:
            raise ValueError(
                f"at least {MIN_PHYS_REGS} physical registers are required "
                f"to avoid rename deadlock, got {self.phys_regs}"
            )
        for name in ("fetch_width", "decode_width", "issue_width",
                     "commit_width", "window_size", "fetch_queue",
                     "int_alus", "int_muldiv", "cache_ports"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        # Resolve the spec names now so a typo fails at configuration
        # time (with the registry's valid-name list), not mid-simulation.
        PREDICTORS.get(self.predictor_spec)
        HIERARCHIES.get(self.hierarchy_spec)

    @classmethod
    def micro97(cls) -> "MachineConfig":
        """The paper's evaluated configuration (Figure 2)."""
        return cls()

    @classmethod
    def micro97_unconstrained(cls) -> "MachineConfig":
        """Figure 2 with renaming guaranteed stall-free.

        Section 4.2: "Current processors are designed with sufficient
        registers ... such that program IPCs are not constrained by
        register renaming resources."  31 architectural mappings + one
        destination per window entry + 1 means 96 registers can never
        stall a 64-entry window, which is what the save/restore
        experiments (Figures 10, 11, 13) assume.
        """
        config = cls()
        return config.with_phys_regs(31 + config.window_size + 1)

    def with_phys_regs(self, count: int) -> "MachineConfig":
        """The Figure 5/6 sweep knob."""
        return replace(self, phys_regs=count)

    def with_ports_and_width(self, ports: int, width: int) -> "MachineConfig":
        """The Figure 11 sensitivity knobs (cache ports x issue width)."""
        return replace(
            self,
            cache_ports=ports,
            fetch_width=2 * width,
            decode_width=width,
            issue_width=width,
            commit_width=width,
            int_alus=max(self.int_alus, width),
            window_size=self.window_size * (2 if width > 4 else 1),
            # A wider machine needs a bigger rename pool to stay
            # window-limited rather than register-limited.
            phys_regs=max(self.phys_regs, MIN_PHYS_REGS + 2 * self.window_size
                          * (2 if width > 4 else 1)),
        )

    def with_icache(self, size_bytes: int) -> "MachineConfig":
        """The Figure 13 I-cache knob."""
        return replace(self, hierarchy=replace(self.hierarchy, l1i_size=size_bytes))

    def with_predictor(self, name: str) -> "MachineConfig":
        """Select a registered branch predictor (the ``predictor`` axis)."""
        PREDICTORS.get(name)
        return replace(self, predictor_spec=name)

    def with_hierarchy(self, name: str) -> "MachineConfig":
        """Adopt a registered hierarchy preset (the ``hierarchy`` axis)."""
        return replace(
            self, hierarchy=build_hierarchy_config(name), hierarchy_spec=name
        )

    def describe(self) -> str:
        """Figure 2-style parameter table."""
        h = self.hierarchy
        rows = [
            ("Issue Width", str(self.issue_width)),
            ("Inst. Window", str(self.window_size)),
            ("Func. Units",
             f"{self.int_alus} int ({self.int_muldiv} mul/div)"),
            ("Cache Ports", f"{self.cache_ports} (fully independent)"),
            ("L1 D-Cache",
             f"{h.l1d_size // 1024}KB, {h.l1d_assoc}-way, "
             f"{h.l1_latency} cycle latency"),
            ("L1 I-Cache",
             f"{h.l1i_size // 1024}KB, {h.l1i_assoc}-way, "
             f"{h.l1_latency} cycle latency"),
            ("L2 Cache",
             f"{h.l2_size // 1024}KB, {h.l2_assoc}-way, "
             f"{h.l2_latency} cycle latency"),
            ("Branch Predictor",
             PREDICTORS.get(self.predictor_spec).summarize(self)),
            ("Physical Registers", str(self.phys_regs)),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)
