"""Functional (architectural) emulator and trace generator.

Executes a linked program instruction by instruction, driving a
:class:`~repro.dvi.engine.DVIEngine` in program order, and optionally
records a :class:`~repro.sim.trace.Trace` for the timing model, a
live-register histogram for the context-switch experiment, and a DVI
correctness check (the "poison" verifier).

Architectural conventions:

* registers hold 32-bit values (stored unsigned; signed ops reinterpret),
* memory is a sparse word-addressed store, little-endian for byte ops,
* ``sp`` starts at :data:`~repro.program.program.STACK_TOP`, and ``ra``
  starts at a sentinel return address so a top-level ``return`` ends the
  run just like ``halt``,
* the program's exit value is whatever ``v0`` holds at the end.

Save/restore elimination is performed *architecturally*: an eliminated
``live_sw`` writes nothing to memory and an eliminated ``live_lw`` loads
nothing, so a run under an aggressive DVI configuration genuinely executes
differently from the baseline — the observational-equivalence tests
(identical data segment and exit value) are therefore a real check of the
paper's correctness argument, not a tautology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dvi.config import DVIConfig
from repro.dvi.engine import DVIEngine
from repro.errors import DVIViolationError, SimulationError
from repro.isa import registers as regs
from repro.isa.abi import DEFAULT_ABI
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_CLASS, OpClass, Opcode
from repro.program.program import STACK_TOP, Program
from repro.sim.trace import Trace, TraceRecord

_MASK32 = 0xFFFF_FFFF
_SIGN32 = 0x8000_0000


def _s32(value: int) -> int:
    """Signed reinterpretation of an unsigned 32-bit value."""
    return value - 0x1_0000_0000 if value & _SIGN32 else value


@dataclass
class FunctionalStats:
    """Dynamic statistics of one functional run.

    ``program_insts`` counts original program instructions (saves/restores
    included whether or not they were eliminated; ``kill`` annotations
    excluded), matching the paper's reporting conventions.
    """

    program_insts: int = 0
    kill_insts: int = 0
    calls: int = 0
    returns: int = 0
    branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    saves: int = 0
    restores: int = 0
    saves_eliminated: int = 0
    restores_eliminated: int = 0
    #: Histogram of live saveable registers, sampled after each instruction.
    live_hist: Dict[int, int] = field(default_factory=dict)
    exit_value: int = 0
    completed: bool = False

    @property
    def mem_refs(self) -> int:
        """All program memory references, eliminated ones included."""
        return self.loads + self.stores

    @property
    def saves_restores(self) -> int:
        return self.saves + self.restores

    @property
    def saves_restores_eliminated(self) -> int:
        return self.saves_eliminated + self.restores_eliminated

    @property
    def pct_calls(self) -> float:
        return 100.0 * self.calls / self.program_insts if self.program_insts else 0.0

    @property
    def pct_mem(self) -> float:
        return 100.0 * self.mem_refs / self.program_insts if self.program_insts else 0.0

    @property
    def pct_saves_restores(self) -> float:
        if not self.program_insts:
            return 0.0
        return 100.0 * self.saves_restores / self.program_insts

    def average_live(self) -> float:
        """Mean of the live-register histogram (Figure 12's statistic)."""
        total = sum(self.live_hist.values())
        if not total:
            return 0.0
        return sum(count * n for n, count in self.live_hist.items()) / total


@dataclass
class FunctionalResult:
    """Everything a functional run produces."""

    stats: FunctionalStats
    trace: Optional[Trace]
    registers: List[int]
    memory: Dict[int, int]

    def data_segment(self, base: int, limit: int) -> Dict[int, int]:
        """Memory words in ``[base, limit)`` — the observable output."""
        return {
            addr: value
            for addr, value in self.memory.items()
            if base <= addr < limit
        }


class _Decoded:
    """Pre-decoded static instruction (hoists per-step work out of the loop)."""

    __slots__ = (
        "inst", "op", "cls", "dst", "srcs", "use_check_mask",
        "rd", "rs1", "rs2", "imm", "target", "kill_mask",
    )

    def __init__(self, inst: Instruction) -> None:
        self.inst = inst
        self.op = inst.op
        self.cls = OP_CLASS[inst.op]
        defs = inst.defs()
        self.dst = defs[0] if defs else -1
        self.srcs = inst.uses()
        # Poison verification exempts the data register of a live-store:
        # saving a dead value is explicitly permitted (its bits are
        # irrelevant), and the LVM squashes exactly those saves.
        check = inst.use_mask()
        if inst.op is Opcode.LIVE_SW:
            check &= ~(1 << inst.rs2)
        self.use_check_mask = check
        self.rd = inst.rd
        self.rs1 = inst.rs1
        self.rs2 = inst.rs2
        self.imm = inst.imm
        self.target = inst.target if isinstance(inst.target, int) else -1
        self.kill_mask = inst.kill_mask


class FunctionalSimulator:
    """Architectural emulator for one program under one DVI configuration."""

    def __init__(
        self,
        program: Program,
        dvi: Optional[DVIConfig] = None,
        *,
        max_steps: int = 5_000_000,
        collect_trace: bool = True,
        collect_live_hist: bool = False,
        verify_dvi: bool = False,
    ) -> None:
        program.require_linked()
        self.program = program
        self.dvi_config = dvi if dvi is not None else DVIConfig.none()
        self.engine = DVIEngine(self.dvi_config)
        self.max_steps = max_steps
        self.collect_trace = collect_trace
        self.collect_live_hist = collect_live_hist
        self.verify_dvi = verify_dvi

        self._decoded = [_Decoded(inst) for inst in program.insts]
        self._sentinel = len(program.insts)

        self.regs: List[int] = [0] * regs.NUM_REGS
        self.regs[regs.SP] = STACK_TOP
        self.regs[regs.GP] = 0x0010_0000
        self.regs[regs.RA] = self._sentinel * 4
        self.mem: Dict[int, int] = {
            addr >> 2: value & _MASK32 for addr, value in program.data.items()
        }
        self.pc = program.entry_index
        self._poison = 0  # registers currently asserted dead (verify mode)
        self._saveable = self.dvi_config.abi.saveable_mask()
        self.stats = FunctionalStats()
        self.halted = False
        self._records: List[TraceRecord] = []
        self._seq = 0

    # ------------------------------------------------------------------

    def execute(self, budget: int) -> bool:
        """Run up to ``budget`` further instructions from the current state.

        Returns True while the program can still make progress, False once
        it has halted (or returned from the top level).  This is the
        resumable core that the thread scheduler time-slices; :meth:`run`
        drives it once to completion.
        """
        if self.halted:
            return False
        stats = self.stats
        records = self._records
        engine = self.engine
        decoded = self._decoded
        reg_file = self.regs
        mem = self.mem
        sentinel = self._sentinel
        abi = self.dvi_config.abi
        collect_trace = self.collect_trace
        collect_hist = self.collect_live_hist
        verify = self.verify_dvi
        hist = stats.live_hist

        pc = self.pc
        seq = self._seq
        end_seq = seq + budget
        completed = False

        while seq < end_seq:
            if pc == sentinel:
                completed = True
                break
            if not 0 <= pc < sentinel:
                raise SimulationError(f"pc out of range: {pc}")
            d = decoded[pc]
            op = d.op

            if verify and self._poison & d.use_check_mask:
                bad = self._poison & d.use_check_mask
                reg = bad.bit_length() - 1
                raise DVIViolationError(pc, reg, f"op {op.name}")

            next_pc = pc + 1
            addr = -1
            taken = False
            free_mask = 0
            eliminated = False
            is_program = True
            dst = d.dst

            # --- execute -------------------------------------------------
            if op is Opcode.ADDI:
                reg_file[d.rd] = (reg_file[d.rs1] + d.imm) & _MASK32
            elif op is Opcode.ADD:
                reg_file[d.rd] = (reg_file[d.rs1] + reg_file[d.rs2]) & _MASK32
            elif op is Opcode.LW:
                addr = (reg_file[d.rs1] + d.imm) & _MASK32
                if addr & 3:
                    raise SimulationError(f"unaligned lw at pc={pc}: {addr:#x}")
                reg_file[d.rd] = mem.get(addr >> 2, 0)
                stats.loads += 1
            elif op is Opcode.SW:
                addr = (reg_file[d.rs1] + d.imm) & _MASK32
                if addr & 3:
                    raise SimulationError(f"unaligned sw at pc={pc}: {addr:#x}")
                mem[addr >> 2] = reg_file[d.rs2]
                stats.stores += 1
            elif op is Opcode.LIVE_LW:
                addr = (reg_file[d.rs1] + d.imm) & _MASK32
                if addr & 3:
                    raise SimulationError(f"unaligned live_lw at pc={pc}: {addr:#x}")
                stats.loads += 1
                stats.restores += 1
                eliminated = engine.on_restore(d.rd)
                if eliminated:
                    stats.restores_eliminated += 1
                    dst = -1  # not dispatched: no rename, no definition
                else:
                    reg_file[d.rd] = mem.get(addr >> 2, 0)
            elif op is Opcode.LIVE_SW:
                addr = (reg_file[d.rs1] + d.imm) & _MASK32
                if addr & 3:
                    raise SimulationError(f"unaligned live_sw at pc={pc}: {addr:#x}")
                stats.stores += 1
                stats.saves += 1
                eliminated = engine.on_save(d.rs2)
                if eliminated:
                    stats.saves_eliminated += 1
                else:
                    mem[addr >> 2] = reg_file[d.rs2]
            elif op is Opcode.BEQ:
                taken = reg_file[d.rs1] == reg_file[d.rs2]
                stats.branches += 1
                if taken:
                    next_pc = d.target
            elif op is Opcode.BNE:
                taken = reg_file[d.rs1] != reg_file[d.rs2]
                stats.branches += 1
                if taken:
                    next_pc = d.target
            elif op is Opcode.BLT:
                taken = _s32(reg_file[d.rs1]) < _s32(reg_file[d.rs2])
                stats.branches += 1
                if taken:
                    next_pc = d.target
            elif op is Opcode.BGE:
                taken = _s32(reg_file[d.rs1]) >= _s32(reg_file[d.rs2])
                stats.branches += 1
                if taken:
                    next_pc = d.target
            elif op is Opcode.BLEZ:
                taken = _s32(reg_file[d.rs1]) <= 0
                stats.branches += 1
                if taken:
                    next_pc = d.target
            elif op is Opcode.BGTZ:
                taken = _s32(reg_file[d.rs1]) > 0
                stats.branches += 1
                if taken:
                    next_pc = d.target
            elif op is Opcode.SUB:
                reg_file[d.rd] = (reg_file[d.rs1] - reg_file[d.rs2]) & _MASK32
            elif op is Opcode.MUL:
                reg_file[d.rd] = (
                    _s32(reg_file[d.rs1]) * _s32(reg_file[d.rs2])
                ) & _MASK32
            elif op is Opcode.DIV:
                a, b = _s32(reg_file[d.rs1]), _s32(reg_file[d.rs2])
                if b == 0:
                    quotient = 0
                else:
                    quotient = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        quotient = -quotient
                reg_file[d.rd] = quotient & _MASK32
            elif op is Opcode.REM:
                a, b = _s32(reg_file[d.rs1]), _s32(reg_file[d.rs2])
                if b == 0:
                    remainder = a
                else:
                    quotient = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        quotient = -quotient
                    remainder = a - quotient * b
                reg_file[d.rd] = remainder & _MASK32
            elif op is Opcode.AND:
                reg_file[d.rd] = reg_file[d.rs1] & reg_file[d.rs2]
            elif op is Opcode.OR:
                reg_file[d.rd] = reg_file[d.rs1] | reg_file[d.rs2]
            elif op is Opcode.XOR:
                reg_file[d.rd] = reg_file[d.rs1] ^ reg_file[d.rs2]
            elif op is Opcode.NOR:
                reg_file[d.rd] = ~(reg_file[d.rs1] | reg_file[d.rs2]) & _MASK32
            elif op is Opcode.SLL:
                reg_file[d.rd] = (reg_file[d.rs1] << (reg_file[d.rs2] & 31)) & _MASK32
            elif op is Opcode.SRL:
                reg_file[d.rd] = reg_file[d.rs1] >> (reg_file[d.rs2] & 31)
            elif op is Opcode.SRA:
                reg_file[d.rd] = (_s32(reg_file[d.rs1]) >> (reg_file[d.rs2] & 31)) & _MASK32
            elif op is Opcode.SLT:
                reg_file[d.rd] = 1 if _s32(reg_file[d.rs1]) < _s32(reg_file[d.rs2]) else 0
            elif op is Opcode.SLTU:
                reg_file[d.rd] = 1 if reg_file[d.rs1] < reg_file[d.rs2] else 0
            elif op is Opcode.ANDI:
                reg_file[d.rd] = reg_file[d.rs1] & (d.imm & 0xFFFF)
            elif op is Opcode.ORI:
                reg_file[d.rd] = reg_file[d.rs1] | (d.imm & 0xFFFF)
            elif op is Opcode.XORI:
                reg_file[d.rd] = reg_file[d.rs1] ^ (d.imm & 0xFFFF)
            elif op is Opcode.SLLI:
                reg_file[d.rd] = (reg_file[d.rs1] << (d.imm & 31)) & _MASK32
            elif op is Opcode.SRLI:
                reg_file[d.rd] = reg_file[d.rs1] >> (d.imm & 31)
            elif op is Opcode.SRAI:
                reg_file[d.rd] = (_s32(reg_file[d.rs1]) >> (d.imm & 31)) & _MASK32
            elif op is Opcode.SLTI:
                reg_file[d.rd] = 1 if _s32(reg_file[d.rs1]) < d.imm else 0
            elif op is Opcode.LUI:
                reg_file[d.rd] = (d.imm << 16) & _MASK32
            elif op is Opcode.LB:
                addr = (reg_file[d.rs1] + d.imm) & _MASK32
                word = mem.get(addr >> 2, 0)
                byte = (word >> (8 * (addr & 3))) & 0xFF
                reg_file[d.rd] = (byte - 0x100 if byte & 0x80 else byte) & _MASK32
                stats.loads += 1
            elif op is Opcode.SB:
                addr = (reg_file[d.rs1] + d.imm) & _MASK32
                shift = 8 * (addr & 3)
                word = mem.get(addr >> 2, 0)
                mem[addr >> 2] = (word & ~(0xFF << shift)) | (
                    (reg_file[d.rs2] & 0xFF) << shift
                )
                stats.stores += 1
            elif op is Opcode.J:
                taken = True
                next_pc = d.target
            elif op is Opcode.JAL:
                taken = True
                reg_file[regs.RA] = (pc + 1) * 4
                next_pc = d.target
                stats.calls += 1
                free_mask = engine.on_call()
            elif op is Opcode.JALR:
                taken = True
                callee = reg_file[d.rs1]
                if callee & 3:
                    raise SimulationError(f"unaligned jalr target: {callee:#x}")
                reg_file[d.rd] = (pc + 1) * 4
                next_pc = callee >> 2
                stats.calls += 1
                free_mask = engine.on_call()
            elif op is Opcode.JR:
                taken = True
                dest = reg_file[d.rs1]
                if dest & 3:
                    raise SimulationError(f"unaligned jr target: {dest:#x}")
                next_pc = dest >> 2
                if d.rs1 == regs.RA:
                    stats.returns += 1
                    free_mask = engine.on_return()
            elif op is Opcode.KILL:
                free_mask = engine.on_kill(d.kill_mask)
                is_program = False
                stats.kill_insts += 1
                if verify:
                    self._poison |= d.kill_mask
            elif op is Opcode.NOP:
                pass
            elif op is Opcode.HALT:
                next_pc = -1
            elif op is Opcode.LVM_SAVE:
                addr = (reg_file[d.rs1] + d.imm) & _MASK32
                mem[addr >> 2] = engine.save_lvm()
            elif op is Opcode.LVM_LOAD:
                addr = (reg_file[d.rs1] + d.imm) & _MASK32
                engine.load_lvm(mem.get(addr >> 2, 0))
            else:  # pragma: no cover - the opcode set is closed
                raise SimulationError(f"unimplemented opcode {op.name}")

            reg_file[regs.ZERO] = 0

            # --- DVI bookkeeping ------------------------------------------
            if dst >= 0:
                engine.on_def(dst)
                if verify:
                    self._poison &= ~(1 << dst)
            if verify and free_mask:
                self._poison |= free_mask
            if verify and op is Opcode.JAL or verify and op is Opcode.JALR:
                self._poison |= abi.idvi_call_mask()
            if verify and op is Opcode.JR and d.rs1 == regs.RA:
                self._poison |= abi.idvi_return_mask()

            if is_program:
                stats.program_insts += 1
            if collect_trace:
                records.append(
                    TraceRecord(
                        seq, pc, op, d.cls, dst, d.srcs, addr,
                        taken, next_pc, free_mask, eliminated, is_program,
                    )
                )
            if collect_hist:
                count = bin(engine.lvm.mask & self._saveable).count("1")
                hist[count] = hist.get(count, 0) + 1

            seq += 1
            if next_pc < 0:
                completed = True
                break
            pc = next_pc

        self.pc = pc
        self._seq = seq
        if completed:
            self.halted = True
            stats.completed = True
            stats.exit_value = reg_file[regs.V0]
        return not self.halted

    def run(self) -> FunctionalResult:
        """Execute until halt / top-level return / step budget."""
        self.execute(self.max_steps - self._seq)
        return self.result()

    def result(self) -> FunctionalResult:
        """Package the current architectural state and statistics."""
        trace = None
        if self.collect_trace:
            trace = Trace(
                program_name=self.program.name,
                dvi=self.dvi_config,
                records=self._records,
                completed=self.halted,
            )
        return FunctionalResult(
            stats=self.stats,
            trace=trace,
            registers=list(self.regs),
            memory=dict(self.mem),
        )


def run_program(
    program: Program,
    dvi: Optional[DVIConfig] = None,
    *,
    max_steps: int = 5_000_000,
    collect_trace: bool = True,
    collect_live_hist: bool = False,
    verify_dvi: bool = False,
) -> FunctionalResult:
    """Convenience wrapper: build a simulator and run it once."""
    sim = FunctionalSimulator(
        program,
        dvi,
        max_steps=max_steps,
        collect_trace=collect_trace,
        collect_live_hist=collect_live_hist,
        verify_dvi=verify_dvi,
    )
    return sim.run()
