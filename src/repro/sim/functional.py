"""Functional (architectural) emulator and trace generator.

Executes a linked program instruction by instruction, driving a
:class:`~repro.dvi.engine.DVIEngine` in program order, and optionally
records a :class:`~repro.sim.trace.Trace` for the timing model, a
live-register histogram for the context-switch experiment, and a DVI
correctness check (the "poison" verifier).

Architectural conventions:

* registers hold 32-bit values (stored unsigned; signed ops reinterpret),
* memory is a sparse word-addressed store, little-endian for byte ops,
* ``sp`` starts at :data:`~repro.program.program.STACK_TOP`, and ``ra``
  starts at a sentinel return address so a top-level ``return`` ends the
  run just like ``halt``,
* the program's exit value is whatever ``v0`` holds at the end.

Save/restore elimination is performed *architecturally*: an eliminated
``live_sw`` writes nothing to memory and an eliminated ``live_lw`` loads
nothing, so a run under an aggressive DVI configuration genuinely executes
differently from the baseline — the observational-equivalence tests
(identical data segment and exit value) are therefore a real check of the
paper's correctness argument, not a tautology.

Execution engine
----------------

The hot path uses **decode-time specialization** (threaded-code style):
:meth:`FunctionalSimulator._specialize` builds, once per program, a table
of per-instruction closures with every static operand — immediates,
register indices, shift amounts, branch targets, even the pre-masked
``lui`` value and the pre-built fall-through result tuple — bound at
decode time.  The inner loop then does no opcode dispatch at all: it
calls ``handlers[pc]()``, bumps a per-pc execution counter, appends the
dynamic facts to the columnar trace, and folds the destination's
liveness bit into the LVM.  Dynamic statistics are reconstructed from
the per-pc counters (every category of interest — loads, calls,
branches, saves — is a static property of the instruction), so the loop
maintains no per-category counters.

Each handler returns ``(next_pc, addr, flags, free_mask)`` with
``flags`` using the :mod:`repro.sim.trace` bit encoding; non-memory,
non-control handlers return one pre-built constant tuple, branch
handlers pick between two.

On top of the per-pc closures, :mod:`repro.sim.compile` fuses each
basic block into one exec-compiled "superinstruction" function; the
inner loop dispatches block-at-a-time where a compiled block starts at
the current pc and fits in the remaining step budget, and falls back to
the per-pc closures everywhere else (control transfers, block-interior
entry pcs after computed jumps, budget slivers).  Superblocks preserve
the trace columns, counters, and architectural effects bit-for-bit;
``superblocks=False`` (or the ``REPRO_SUPERBLOCKS=0`` environment
escape hatch) pins the engine to pure per-pc dispatch.

One slow-path feature delegates to the retained reference interpreter
(:mod:`repro.sim.reference`): ``verify_dvi``, whose per-step poison
checks would burden every handler.  (``collect_live_hist`` stays on the
fast path: the LVM is sampled inline after each step's liveness
update, which also pins it to per-pc dispatch.)  The differential fuzz
tests run both engines over the same programs and assert identical
results.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.dvi.config import DVIConfig, SRScheme
from repro.dvi.engine import DVIEngine
from repro.errors import SimulationError
from repro.isa import registers as regs
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_CLASS_CODE, Opcode
from repro.program.program import STACK_TOP, Program
from repro.sim.compile import compile_program, superblocks_enabled
from repro.sim.reference import decode_reference, execute_reference
from repro.sim.trace import (
    FLAG_ELIMINATED,
    FLAG_FREES,
    FLAG_PROGRAM,
    FLAG_TAKEN,
    Trace,
    TraceRecord,
    pack_srcs,
)

_MASK32 = 0xFFFF_FFFF
_SIGN32 = 0x8000_0000

#: Pre-composed handler result flags.
_F_PLAIN = FLAG_PROGRAM
_F_TAKEN = FLAG_PROGRAM | FLAG_TAKEN
_F_ELIM = FLAG_PROGRAM | FLAG_ELIMINATED


def _s32(value: int) -> int:
    """Signed reinterpretation of an unsigned 32-bit value."""
    return value - 0x1_0000_0000 if value & _SIGN32 else value


@dataclass
class FunctionalStats:
    """Dynamic statistics of one functional run.

    ``program_insts`` counts original program instructions (saves/restores
    included whether or not they were eliminated; ``kill`` annotations
    excluded), matching the paper's reporting conventions.
    """

    program_insts: int = 0
    kill_insts: int = 0
    calls: int = 0
    returns: int = 0
    branches: int = 0
    taken_branches: int = 0
    loads: int = 0
    stores: int = 0
    saves: int = 0
    restores: int = 0
    saves_eliminated: int = 0
    restores_eliminated: int = 0
    #: Histogram of live saveable registers, sampled after each instruction.
    live_hist: Dict[int, int] = field(default_factory=dict)
    exit_value: int = 0
    completed: bool = False

    @property
    def mem_refs(self) -> int:
        """All program memory references, eliminated ones included."""
        return self.loads + self.stores

    @property
    def saves_restores(self) -> int:
        return self.saves + self.restores

    @property
    def saves_restores_eliminated(self) -> int:
        return self.saves_eliminated + self.restores_eliminated

    @property
    def pct_calls(self) -> float:
        return 100.0 * self.calls / self.program_insts if self.program_insts else 0.0

    @property
    def pct_mem(self) -> float:
        return 100.0 * self.mem_refs / self.program_insts if self.program_insts else 0.0

    @property
    def pct_saves_restores(self) -> float:
        if not self.program_insts:
            return 0.0
        return 100.0 * self.saves_restores / self.program_insts

    def average_live(self) -> float:
        """Mean of the live-register histogram (Figure 12's statistic)."""
        total = sum(self.live_hist.values())
        if not total:
            return 0.0
        return sum(count * n for n, count in self.live_hist.items()) / total


@dataclass
class FunctionalResult:
    """Everything a functional run produces."""

    stats: FunctionalStats
    trace: Optional[Trace]
    registers: List[int]
    memory: Dict[int, int]

    def data_segment(self, base: int, limit: int) -> Dict[int, int]:
        """Memory words in ``[base, limit)`` — the observable output."""
        return {
            addr: value
            for addr, value in self.memory.items()
            if base <= addr < limit
        }


# ----------------------------------------------------------------------
# Handler factories.  One small closure per static instruction; every
# static operand is bound at decode time.  ``R`` is the register file,
# ``mem`` the sparse word store — both mutated in place for the lifetime
# of the simulator, so binding the objects themselves is safe.
# ----------------------------------------------------------------------

_Handler = Callable[[], Tuple[int, int, int, int]]


def _build_handler(
    inst: Instruction, pc: int, R: List[int], mem: Dict[int, int],
    engine: DVIEngine,
) -> _Handler:
    op = inst.op
    rd = inst.rd
    rs1 = inst.rs1
    rs2 = inst.rs2
    imm = inst.imm
    pc1 = pc + 1
    ret = (pc1, -1, _F_PLAIN, 0)  # the fall-through result, pre-built

    # --- register-register ALU ---------------------------------------
    if op == Opcode.ADD:
        if not rd:
            return lambda: ret
        def run():
            R[rd] = (R[rs1] + R[rs2]) & _MASK32
            return ret
        return run
    if op == Opcode.SUB:
        if not rd:
            return lambda: ret
        def run():
            R[rd] = (R[rs1] - R[rs2]) & _MASK32
            return ret
        return run
    if op == Opcode.MUL:
        if not rd:
            return lambda: ret
        def run():
            a = R[rs1]
            b = R[rs2]
            if a & _SIGN32:
                a -= 0x1_0000_0000
            if b & _SIGN32:
                b -= 0x1_0000_0000
            R[rd] = (a * b) & _MASK32
            return ret
        return run
    if op == Opcode.DIV:
        if not rd:
            return lambda: ret
        def run():
            a = R[rs1]
            b = R[rs2]
            if a & _SIGN32:
                a -= 0x1_0000_0000
            if b & _SIGN32:
                b -= 0x1_0000_0000
            if b == 0:
                quotient = 0
            else:
                quotient = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    quotient = -quotient
            R[rd] = quotient & _MASK32
            return ret
        return run
    if op == Opcode.REM:
        if not rd:
            return lambda: ret
        def run():
            a = R[rs1]
            b = R[rs2]
            if a & _SIGN32:
                a -= 0x1_0000_0000
            if b & _SIGN32:
                b -= 0x1_0000_0000
            if b == 0:
                remainder = a
            else:
                quotient = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    quotient = -quotient
                remainder = a - quotient * b
            R[rd] = remainder & _MASK32
            return ret
        return run
    if op == Opcode.AND:
        if not rd:
            return lambda: ret
        def run():
            R[rd] = R[rs1] & R[rs2]
            return ret
        return run
    if op == Opcode.OR:
        if not rd:
            return lambda: ret
        def run():
            R[rd] = R[rs1] | R[rs2]
            return ret
        return run
    if op == Opcode.XOR:
        if not rd:
            return lambda: ret
        def run():
            R[rd] = R[rs1] ^ R[rs2]
            return ret
        return run
    if op == Opcode.NOR:
        if not rd:
            return lambda: ret
        def run():
            R[rd] = ~(R[rs1] | R[rs2]) & _MASK32
            return ret
        return run
    if op == Opcode.SLL:
        if not rd:
            return lambda: ret
        def run():
            R[rd] = (R[rs1] << (R[rs2] & 31)) & _MASK32
            return ret
        return run
    if op == Opcode.SRL:
        if not rd:
            return lambda: ret
        def run():
            R[rd] = R[rs1] >> (R[rs2] & 31)
            return ret
        return run
    if op == Opcode.SRA:
        if not rd:
            return lambda: ret
        def run():
            v = R[rs1]
            if v & _SIGN32:
                v -= 0x1_0000_0000
            R[rd] = (v >> (R[rs2] & 31)) & _MASK32
            return ret
        return run
    if op == Opcode.SLT:
        if not rd:
            return lambda: ret
        def run():
            a = R[rs1]
            b = R[rs2]
            if a & _SIGN32:
                a -= 0x1_0000_0000
            if b & _SIGN32:
                b -= 0x1_0000_0000
            R[rd] = 1 if a < b else 0
            return ret
        return run
    if op == Opcode.SLTU:
        if not rd:
            return lambda: ret
        def run():
            R[rd] = 1 if R[rs1] < R[rs2] else 0
            return ret
        return run

    # --- register-immediate ALU --------------------------------------
    if op == Opcode.ADDI:
        if not rd:
            return lambda: ret
        def run():
            R[rd] = (R[rs1] + imm) & _MASK32
            return ret
        return run
    if op == Opcode.ANDI:
        immz = imm & 0xFFFF
        if not rd:
            return lambda: ret
        def run():
            R[rd] = R[rs1] & immz
            return ret
        return run
    if op == Opcode.ORI:
        immz = imm & 0xFFFF
        if not rd:
            return lambda: ret
        def run():
            R[rd] = R[rs1] | immz
            return ret
        return run
    if op == Opcode.XORI:
        immz = imm & 0xFFFF
        if not rd:
            return lambda: ret
        def run():
            R[rd] = R[rs1] ^ immz
            return ret
        return run
    if op == Opcode.SLLI:
        sh = imm & 31
        if not rd:
            return lambda: ret
        def run():
            R[rd] = (R[rs1] << sh) & _MASK32
            return ret
        return run
    if op == Opcode.SRLI:
        sh = imm & 31
        if not rd:
            return lambda: ret
        def run():
            R[rd] = R[rs1] >> sh
            return ret
        return run
    if op == Opcode.SRAI:
        sh = imm & 31
        if not rd:
            return lambda: ret
        def run():
            v = R[rs1]
            if v & _SIGN32:
                v -= 0x1_0000_0000
            R[rd] = (v >> sh) & _MASK32
            return ret
        return run
    if op == Opcode.SLTI:
        if not rd:
            return lambda: ret
        def run():
            a = R[rs1]
            if a & _SIGN32:
                a -= 0x1_0000_0000
            R[rd] = 1 if a < imm else 0
            return ret
        return run
    if op == Opcode.LUI:
        value = (imm << 16) & _MASK32
        if not rd:
            return lambda: ret
        def run():
            R[rd] = value
            return ret
        return run

    # --- memory ------------------------------------------------------
    if op == Opcode.LW:
        mem_get = mem.get
        if not rd:
            def run():
                addr = (R[rs1] + imm) & _MASK32
                if addr & 3:
                    raise SimulationError(f"unaligned lw at pc={pc}: {addr:#x}")
                return (pc1, addr, _F_PLAIN, 0)
            return run
        def run():
            addr = (R[rs1] + imm) & _MASK32
            if addr & 3:
                raise SimulationError(f"unaligned lw at pc={pc}: {addr:#x}")
            R[rd] = mem_get(addr >> 2, 0)
            return (pc1, addr, _F_PLAIN, 0)
        return run
    if op == Opcode.SW:
        def run():
            addr = (R[rs1] + imm) & _MASK32
            if addr & 3:
                raise SimulationError(f"unaligned sw at pc={pc}: {addr:#x}")
            mem[addr >> 2] = R[rs2]
            return (pc1, addr, _F_PLAIN, 0)
        return run
    if op == Opcode.LB:
        mem_get = mem.get
        def run():
            addr = (R[rs1] + imm) & _MASK32
            byte = (mem_get(addr >> 2, 0) >> (8 * (addr & 3))) & 0xFF
            if rd:
                R[rd] = (byte - 0x100 if byte & 0x80 else byte) & _MASK32
            return (pc1, addr, _F_PLAIN, 0)
        return run
    if op == Opcode.SB:
        mem_get = mem.get
        def run():
            addr = (R[rs1] + imm) & _MASK32
            shift = 8 * (addr & 3)
            word = mem_get(addr >> 2, 0)
            mem[addr >> 2] = (word & ~(0xFF << shift)) | (
                (R[rs2] & 0xFF) << shift
            )
            return (pc1, addr, _F_PLAIN, 0)
        return run
    if op == Opcode.LIVE_LW:
        mem_get = mem.get
        on_restore = engine.on_restore
        def run():
            addr = (R[rs1] + imm) & _MASK32
            if addr & 3:
                raise SimulationError(f"unaligned live_lw at pc={pc}: {addr:#x}")
            if on_restore(rd):
                return (pc1, addr, _F_ELIM, 0)
            if rd:
                R[rd] = mem_get(addr >> 2, 0)
            return (pc1, addr, _F_PLAIN, 0)
        return run
    if op == Opcode.LIVE_SW:
        on_save = engine.on_save
        def run():
            addr = (R[rs1] + imm) & _MASK32
            if addr & 3:
                raise SimulationError(f"unaligned live_sw at pc={pc}: {addr:#x}")
            if on_save(rs2):
                return (pc1, addr, _F_ELIM, 0)
            mem[addr >> 2] = R[rs2]
            return (pc1, addr, _F_PLAIN, 0)
        return run

    # --- control -----------------------------------------------------
    target = inst.target if isinstance(inst.target, int) else -1
    ret_taken = (target, -1, _F_TAKEN, 0)
    if op == Opcode.BEQ:
        def run():
            return ret_taken if R[rs1] == R[rs2] else ret
        return run
    if op == Opcode.BNE:
        def run():
            return ret_taken if R[rs1] != R[rs2] else ret
        return run
    if op == Opcode.BLT:
        def run():
            a = R[rs1]
            b = R[rs2]
            if a & _SIGN32:
                a -= 0x1_0000_0000
            if b & _SIGN32:
                b -= 0x1_0000_0000
            return ret_taken if a < b else ret
        return run
    if op == Opcode.BGE:
        def run():
            a = R[rs1]
            b = R[rs2]
            if a & _SIGN32:
                a -= 0x1_0000_0000
            if b & _SIGN32:
                b -= 0x1_0000_0000
            return ret_taken if a >= b else ret
        return run
    if op == Opcode.BLEZ:
        def run():
            a = R[rs1]
            return ret_taken if a == 0 or a & _SIGN32 else ret
        return run
    if op == Opcode.BGTZ:
        def run():
            a = R[rs1]
            return ret_taken if a and not a & _SIGN32 else ret
        return run
    if op == Opcode.J:
        return lambda: ret_taken
    if op == Opcode.JAL:
        ra_value = pc1 * 4
        ra = regs.RA
        on_call = engine.on_call
        def run():
            R[ra] = ra_value
            return (target, -1, _F_TAKEN, on_call())
        return run
    if op == Opcode.JALR:
        ra_value = pc1 * 4
        on_call = engine.on_call
        def run():
            callee = R[rs1]
            if callee & 3:
                raise SimulationError(f"unaligned jalr target: {callee:#x}")
            if rd:
                R[rd] = ra_value
            return (callee >> 2, -1, _F_TAKEN, on_call())
        return run
    if op == Opcode.JR:
        if rs1 == regs.RA:
            on_return = engine.on_return
            def run():
                dest = R[rs1]
                if dest & 3:
                    raise SimulationError(f"unaligned jr target: {dest:#x}")
                return (dest >> 2, -1, _F_TAKEN, on_return())
            return run
        def run():
            dest = R[rs1]
            if dest & 3:
                raise SimulationError(f"unaligned jr target: {dest:#x}")
            return (dest >> 2, -1, _F_TAKEN, 0)
        return run

    # --- environment and DVI annotations -----------------------------
    if op == Opcode.NOP:
        return lambda: ret
    if op == Opcode.HALT:
        ret_halt = (-1, -1, _F_PLAIN, 0)
        return lambda: ret_halt
    if op == Opcode.KILL:
        kill_mask = inst.kill_mask
        on_kill = engine.on_kill
        def run():
            return (pc1, -1, 0, on_kill(kill_mask))  # not a program inst
        return run
    if op == Opcode.LVM_SAVE:
        save_lvm = engine.save_lvm
        def run():
            addr = (R[rs1] + imm) & _MASK32
            mem[addr >> 2] = save_lvm()
            return (pc1, addr, _F_PLAIN, 0)
        return run
    if op == Opcode.LVM_LOAD:
        mem_get = mem.get
        load_lvm = engine.load_lvm
        def run():
            addr = (R[rs1] + imm) & _MASK32
            load_lvm(mem_get(addr >> 2, 0))
            return (pc1, addr, _F_PLAIN, 0)
        return run
    raise SimulationError(f"unimplemented opcode {op.name}")  # pragma: no cover


class FunctionalSimulator:
    """Architectural emulator for one program under one DVI configuration."""

    def __init__(
        self,
        program: Program,
        dvi: Optional[DVIConfig] = None,
        *,
        max_steps: int = 5_000_000,
        collect_trace: bool = True,
        collect_live_hist: bool = False,
        verify_dvi: bool = False,
        superblocks: Optional[bool] = None,
    ) -> None:
        program.require_linked()
        self.program = program
        self.dvi_config = dvi if dvi is not None else DVIConfig.none()
        self.engine = DVIEngine(self.dvi_config)
        self.max_steps = max_steps
        self.collect_trace = collect_trace
        self.collect_live_hist = collect_live_hist
        self.verify_dvi = verify_dvi
        self.superblocks = superblocks

        self._sentinel = len(program.insts)

        self.regs: List[int] = [0] * regs.NUM_REGS
        self.regs[regs.SP] = STACK_TOP
        self.regs[regs.GP] = 0x0010_0000
        self.regs[regs.RA] = self._sentinel * 4
        self.mem: Dict[int, int] = {
            addr >> 2: value & _MASK32 for addr, value in program.data.items()
        }
        self.pc = program.entry_index
        self._poison = 0  # registers currently asserted dead (verify mode)
        self._saveable = self.dvi_config.abi.saveable_mask()
        self.stats = FunctionalStats()
        self.halted = False
        self._records: List[TraceRecord] = []
        self._seq = 0

        self._reference_mode = self._use_reference()
        if self._reference_mode:
            self._decoded = decode_reference(program.insts)
        else:
            self._specialize()
            self._install_superblocks()

    def _use_reference(self) -> bool:
        """Whether to run the retained reference interpreter instead of
        the specialized dispatch (slow-path features only)."""
        return self.verify_dvi

    # ------------------------------------------------------------------
    # Decode-time specialization.
    # ------------------------------------------------------------------

    def _specialize(self) -> None:
        insts = self.program.insts
        R = self.regs
        mem = self.mem
        engine = self.engine
        n = self._sentinel

        self._handlers: List[_Handler] = [
            _build_handler(inst, pc, R, mem, engine)
            for pc, inst in enumerate(insts)
        ]
        #: Dynamic execution count per static instruction; every per-category
        #: statistic is reconstructed from these (see :meth:`_sync_stats`).
        self._counts: List[int] = [0] * n
        #: Per-pc LVM bit of the destination register (0 if none / r0).
        self._dbits: List[int] = []

        # Static per-pc trace side-tables (shared with produced Traces).
        s_op = array("b", bytes(n))
        s_cls = array("b", bytes(n))
        s_dst = array("b", bytes(n))
        s_srcs = array("h", [0] * n)
        kill_pcs: List[int] = []
        call_pcs: List[int] = []
        return_pcs: List[int] = []
        branch_pcs: List[int] = []
        load_pcs: List[int] = []
        store_pcs: List[int] = []
        save_pcs: List[int] = []
        restore_pcs: List[int] = []
        for pc, inst in enumerate(insts):
            op = inst.op
            defs = inst.defs()
            dst = defs[0] if defs else -1
            s_op[pc] = op
            s_cls[pc] = OP_CLASS_CODE[op]
            s_dst[pc] = dst
            s_srcs[pc] = pack_srcs(inst.uses())
            self._dbits.append((1 << dst) if dst > 0 else 0)
            if op == Opcode.KILL:
                kill_pcs.append(pc)
            elif op == Opcode.JAL or op == Opcode.JALR:
                call_pcs.append(pc)
            elif op == Opcode.JR and inst.rs1 == regs.RA:
                return_pcs.append(pc)
            elif inst.is_branch:
                branch_pcs.append(pc)
            if inst.is_load:
                load_pcs.append(pc)
            elif inst.is_store:
                store_pcs.append(pc)
            if op == Opcode.LIVE_SW:
                save_pcs.append(pc)
            elif op == Opcode.LIVE_LW:
                restore_pcs.append(pc)
        self._s_op = s_op
        self._s_cls = s_cls
        self._s_dst = s_dst
        self._s_srcs = s_srcs
        self._kill_pcs = kill_pcs
        self._call_pcs = call_pcs
        self._return_pcs = return_pcs
        self._branch_pcs = branch_pcs
        self._load_pcs = load_pcs
        self._store_pcs = store_pcs
        self._save_pcs = save_pcs
        self._restore_pcs = restore_pcs

        # Dynamic trace columns: plain lists while executing (list.append
        # beats array.append), converted to arrays by :meth:`result`.
        self._c_pcs: List[int] = []
        self._c_addrs: List[int] = []
        self._c_next: List[int] = []
        self._c_free: List[int] = []
        self._c_flags: List[int] = []

    def _install_superblocks(self) -> None:
        """Bind this simulator's state into the program's compiled blocks.

        ``self._blk_fns`` stays ``None`` (pure per-pc dispatch) when
        superblocks are disabled, when the live-register histogram needs
        per-instruction LVM samples, or when the program has no fusable
        straight-line runs.
        """
        self._blk_fns = None
        self._bcounts: List[int] = []
        self._compiled = None
        want = self.superblocks
        if want is None:
            want = superblocks_enabled()
        if not want or self.collect_live_hist:
            return
        compiled = compile_program(self.program)
        if not compiled.blocks:
            return
        cols = None
        if self.collect_trace:
            cols = (self._c_pcs.extend, self._c_addrs.extend,
                    self._c_next.extend, self._c_free.extend,
                    self._c_flags.extend)
        # With every DVI mechanism off the engine hooks are constant
        # (nothing eliminates, nothing frees): compile the specialized
        # variant that drops the hook calls and batch-updates the
        # engine's "seen" counters per block.
        cfg = self.dvi_config
        nodvi = cfg.scheme is SRScheme.NONE and not cfg.any_dvi
        make = compiled.factory(self.collect_trace, nodvi)
        blk_fns = make(self.regs, self.mem, self.engine, cols)
        # Single-subscript dispatch table: pc -> (fn, length, block id).
        self._blk_fns = [
            None if fn is None else (fn, compiled.len_by_pc[pc],
                                     compiled.bid_by_pc[pc])
            for pc, fn in enumerate(blk_fns)
        ]
        self._bcounts = [0] * compiled.n_blocks
        self._compiled = compiled

    # ------------------------------------------------------------------

    def execute(self, budget: int) -> bool:
        """Run up to ``budget`` further instructions from the current state.

        Returns True while the program can still make progress, False once
        it has halted (or returned from the top level).  This is the
        resumable core that the thread scheduler time-slices; :meth:`run`
        drives it once to completion.
        """
        if self._reference_mode:
            return execute_reference(self, budget)
        if self.halted:
            return False
        if self._blk_fns is not None:
            return self._execute_super(budget)

        handlers = self._handlers
        counts = self._counts
        dbits = self._dbits
        sentinel = self._sentinel
        collect = self.collect_trace
        collect_hist = self.collect_live_hist
        lvm = self.engine.lvm
        saveable = self._saveable
        hist = self.stats.live_hist
        if collect:
            ap_pc = self._c_pcs.append
            ap_addr = self._c_addrs.append
            ap_next = self._c_next.append
            ap_free = self._c_free.append
            ap_flags = self._c_flags.append

        pc = self.pc
        seq = self._seq
        end_seq = seq + budget
        completed = False

        while seq < end_seq:
            if pc >= sentinel:
                if pc == sentinel:
                    completed = True
                    break
                raise SimulationError(f"pc out of range: {pc}")
            next_pc, addr, fl, free_mask = handlers[pc]()
            counts[pc] += 1
            if collect:
                if free_mask:
                    fl |= FLAG_FREES
                ap_pc(pc)
                ap_addr(addr)
                ap_next(next_pc)
                ap_free(free_mask)
                ap_flags(fl)
            bit = dbits[pc]
            if bit and not fl & FLAG_ELIMINATED:
                # engine.on_def, inlined: a renamed destination is live.
                lvm._mask |= bit
            if collect_hist:
                count = bin(lvm._mask & saveable).count("1")
                hist[count] = hist.get(count, 0) + 1
            seq += 1
            if next_pc < 0:
                completed = True
                break
            pc = next_pc

        self.pc = pc
        self._seq = seq
        if completed:
            self.halted = True
        self._sync_stats()
        return not self.halted

    def _execute_super(self, budget: int) -> bool:
        """The block-at-a-time variant of :meth:`execute`.

        Identical observable behavior: whenever the current pc starts a
        compiled block that fits in the remaining budget, the fused
        function executes the whole block (registers, memory, engine
        hooks, trace columns); everything else — control transfers,
        block-interior entry pcs, budget slivers — takes the per-pc
        step below, which is the same code as the per-pc loop.
        """
        handlers = self._handlers
        counts = self._counts
        dbits = self._dbits
        sentinel = self._sentinel
        collect = self.collect_trace
        lvm = self.engine.lvm
        blk_fns = self._blk_fns
        bcounts = self._bcounts
        if collect:
            ap_pc = self._c_pcs.append
            ap_addr = self._c_addrs.append
            ap_next = self._c_next.append
            ap_free = self._c_free.append
            ap_flags = self._c_flags.append

        pc = self.pc
        seq = self._seq
        end_seq = seq + budget
        completed = False

        while seq < end_seq:
            if pc >= sentinel:
                if pc == sentinel:
                    completed = True
                    break
                raise SimulationError(f"pc out of range: {pc}")
            blk = blk_fns[pc]
            if blk is not None:
                fn, length, bid = blk
                new_seq = seq + length
                if new_seq <= end_seq:
                    bcounts[bid] += 1
                    seq = new_seq
                    pc = fn()
                    continue
            next_pc, addr, fl, free_mask = handlers[pc]()
            counts[pc] += 1
            if collect:
                if free_mask:
                    fl |= FLAG_FREES
                ap_pc(pc)
                ap_addr(addr)
                ap_next(next_pc)
                ap_free(free_mask)
                ap_flags(fl)
            bit = dbits[pc]
            if bit and not fl & FLAG_ELIMINATED:
                lvm._mask |= bit
            seq += 1
            if next_pc < 0:
                completed = True
                break
            pc = next_pc

        self.pc = pc
        self._seq = seq
        if completed:
            self.halted = True
        self._sync_stats()
        return not self.halted

    def _effective_counts(self) -> List[int]:
        """Per-pc execution counts with block-level counts folded in."""
        counts = self._counts
        if not self._bcounts:
            return counts
        eff = list(counts)
        for (start, length), count in zip(self._compiled.blocks,
                                          self._bcounts):
            if count:
                for p in range(start, start + length):
                    eff[p] += count
        return eff

    def _sync_stats(self) -> None:
        """Reconstruct the dynamic statistics from the per-pc counters."""
        counts = self._effective_counts()
        stats = self.stats
        kills = sum(counts[pc] for pc in self._kill_pcs)
        stats.kill_insts = kills
        stats.program_insts = self._seq - kills
        stats.calls = sum(counts[pc] for pc in self._call_pcs)
        stats.returns = sum(counts[pc] for pc in self._return_pcs)
        stats.branches = sum(counts[pc] for pc in self._branch_pcs)
        stats.loads = sum(counts[pc] for pc in self._load_pcs)
        stats.stores = sum(counts[pc] for pc in self._store_pcs)
        stats.saves = sum(counts[pc] for pc in self._save_pcs)
        stats.restores = sum(counts[pc] for pc in self._restore_pcs)
        stats.saves_eliminated = self.engine.counters.saves_eliminated
        stats.restores_eliminated = self.engine.counters.restores_eliminated
        if self.halted:
            stats.completed = True
            stats.exit_value = self.regs[regs.V0]

    def run(self) -> FunctionalResult:
        """Execute until halt / top-level return / step budget."""
        self.execute(self.max_steps - self._seq)
        return self.result()

    def result(self) -> FunctionalResult:
        """Package the current architectural state and statistics."""
        trace = None
        if self.collect_trace:
            if self._reference_mode:
                trace = Trace(
                    self.program.name,
                    self.dvi_config,
                    records=self._records,
                    completed=self.halted,
                )
            else:
                trace = Trace.from_columns(
                    self.program.name,
                    self.dvi_config,
                    self.halted,
                    array("i", self._c_pcs),
                    array("q", self._c_addrs),
                    array("i", self._c_next),
                    array("q", self._c_free),
                    array("B", self._c_flags),
                    self._s_op,
                    self._s_cls,
                    self._s_dst,
                    self._s_srcs,
                )
        return FunctionalResult(
            stats=self.stats,
            trace=trace,
            registers=list(self.regs),
            memory=dict(self.mem),
        )


class ReferenceSimulator(FunctionalSimulator):
    """A :class:`FunctionalSimulator` pinned to the reference interpreter.

    Used by the differential fuzz tests to compare the specialized
    dispatch against the retained :mod:`repro.sim.reference` semantics.
    """

    def _use_reference(self) -> bool:
        return True


def run_program(
    program: Program,
    dvi: Optional[DVIConfig] = None,
    *,
    max_steps: int = 5_000_000,
    collect_trace: bool = True,
    collect_live_hist: bool = False,
    verify_dvi: bool = False,
    superblocks: Optional[bool] = None,
) -> FunctionalResult:
    """Convenience wrapper: build a simulator and run it once."""
    sim = FunctionalSimulator(
        program,
        dvi,
        max_steps=max_steps,
        collect_trace=collect_trace,
        collect_live_hist=collect_live_hist,
        verify_dvi=verify_dvi,
        superblocks=superblocks,
    )
    return sim.run()
