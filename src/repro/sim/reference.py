"""The retained reference interpreter (slow, obviously-correct path).

This is the original monolithic ``if/elif`` interpreter the specialized
dispatch in :mod:`repro.sim.functional` replaced.  It is kept, verbatim in
behaviour, for two jobs:

* **differential testing** — the fuzz suite runs every generated program
  through both interpreters and asserts identical statistics, data
  segments, exit values, and live histograms
  (``tests/sim/test_differential.py``);
* **poison verification** (``verify_dvi=True``) — the DVI correctness
  oracle needs per-step dead-register read checks that would burden the
  fast path's handlers, so that mode runs here.

:func:`execute_reference` is written against the simulator's public state
(``regs``/``mem``/``pc``/``stats``/``engine``/...), so
:class:`~repro.sim.functional.FunctionalSimulator` can run either engine
over the same architectural state.
"""

from __future__ import annotations

from typing import List

from repro.errors import DVIViolationError, SimulationError
from repro.isa import registers as regs
from repro.isa.instruction import Instruction
from repro.isa.opcodes import OP_CLASS_TABLE, Opcode
from repro.sim.trace import TraceRecord

_MASK32 = 0xFFFF_FFFF
_SIGN32 = 0x8000_0000


def _s32(value: int) -> int:
    """Signed reinterpretation of an unsigned 32-bit value."""
    return value - 0x1_0000_0000 if value & _SIGN32 else value


class _Decoded:
    """Pre-decoded static instruction (hoists per-step work out of the loop)."""

    __slots__ = (
        "inst", "op", "cls", "dst", "srcs", "use_check_mask",
        "rd", "rs1", "rs2", "imm", "target", "kill_mask",
    )

    def __init__(self, inst: Instruction) -> None:
        self.inst = inst
        self.op = inst.op
        self.cls = OP_CLASS_TABLE[inst.op]
        defs = inst.defs()
        self.dst = defs[0] if defs else -1
        self.srcs = inst.uses()
        # Poison verification exempts the data register of a live-store:
        # saving a dead value is explicitly permitted (its bits are
        # irrelevant), and the LVM squashes exactly those saves.
        check = inst.use_mask()
        if inst.op is Opcode.LIVE_SW:
            check &= ~(1 << inst.rs2)
        self.use_check_mask = check
        self.rd = inst.rd
        self.rs1 = inst.rs1
        self.rs2 = inst.rs2
        self.imm = inst.imm
        self.target = inst.target if isinstance(inst.target, int) else -1
        self.kill_mask = inst.kill_mask


def decode_reference(insts: List[Instruction]) -> List[_Decoded]:
    """Decode a linked instruction list for the reference loop."""
    return [_Decoded(inst) for inst in insts]


def execute_reference(sim, budget: int) -> bool:
    """Run up to ``budget`` instructions of ``sim`` through the reference
    interpreter.

    ``sim`` is a :class:`~repro.sim.functional.FunctionalSimulator` (or
    anything state-compatible).  Returns True while the program can still
    make progress, False once it has halted.
    """
    if sim.halted:
        return False
    stats = sim.stats
    records = sim._records
    engine = sim.engine
    decoded = sim._decoded
    reg_file = sim.regs
    mem = sim.mem
    sentinel = sim._sentinel
    abi = sim.dvi_config.abi
    collect_trace = sim.collect_trace
    collect_hist = sim.collect_live_hist
    verify = sim.verify_dvi
    hist = stats.live_hist
    saveable = sim._saveable

    pc = sim.pc
    seq = sim._seq
    end_seq = seq + budget
    completed = False

    while seq < end_seq:
        if pc == sentinel:
            completed = True
            break
        if not 0 <= pc < sentinel:
            raise SimulationError(f"pc out of range: {pc}")
        d = decoded[pc]
        op = d.op

        if verify and sim._poison & d.use_check_mask:
            bad = sim._poison & d.use_check_mask
            reg = bad.bit_length() - 1
            raise DVIViolationError(pc, reg, f"op {op.name}")

        next_pc = pc + 1
        addr = -1
        taken = False
        free_mask = 0
        eliminated = False
        is_program = True
        dst = d.dst

        # --- execute -------------------------------------------------
        if op is Opcode.ADDI:
            reg_file[d.rd] = (reg_file[d.rs1] + d.imm) & _MASK32
        elif op is Opcode.ADD:
            reg_file[d.rd] = (reg_file[d.rs1] + reg_file[d.rs2]) & _MASK32
        elif op is Opcode.LW:
            addr = (reg_file[d.rs1] + d.imm) & _MASK32
            if addr & 3:
                raise SimulationError(f"unaligned lw at pc={pc}: {addr:#x}")
            reg_file[d.rd] = mem.get(addr >> 2, 0)
            stats.loads += 1
        elif op is Opcode.SW:
            addr = (reg_file[d.rs1] + d.imm) & _MASK32
            if addr & 3:
                raise SimulationError(f"unaligned sw at pc={pc}: {addr:#x}")
            mem[addr >> 2] = reg_file[d.rs2]
            stats.stores += 1
        elif op is Opcode.LIVE_LW:
            addr = (reg_file[d.rs1] + d.imm) & _MASK32
            if addr & 3:
                raise SimulationError(f"unaligned live_lw at pc={pc}: {addr:#x}")
            stats.loads += 1
            stats.restores += 1
            eliminated = engine.on_restore(d.rd)
            if eliminated:
                stats.restores_eliminated += 1
                dst = -1  # not dispatched: no rename, no definition
            else:
                reg_file[d.rd] = mem.get(addr >> 2, 0)
        elif op is Opcode.LIVE_SW:
            addr = (reg_file[d.rs1] + d.imm) & _MASK32
            if addr & 3:
                raise SimulationError(f"unaligned live_sw at pc={pc}: {addr:#x}")
            stats.stores += 1
            stats.saves += 1
            eliminated = engine.on_save(d.rs2)
            if eliminated:
                stats.saves_eliminated += 1
            else:
                mem[addr >> 2] = reg_file[d.rs2]
        elif op is Opcode.BEQ:
            taken = reg_file[d.rs1] == reg_file[d.rs2]
            stats.branches += 1
            if taken:
                next_pc = d.target
        elif op is Opcode.BNE:
            taken = reg_file[d.rs1] != reg_file[d.rs2]
            stats.branches += 1
            if taken:
                next_pc = d.target
        elif op is Opcode.BLT:
            taken = _s32(reg_file[d.rs1]) < _s32(reg_file[d.rs2])
            stats.branches += 1
            if taken:
                next_pc = d.target
        elif op is Opcode.BGE:
            taken = _s32(reg_file[d.rs1]) >= _s32(reg_file[d.rs2])
            stats.branches += 1
            if taken:
                next_pc = d.target
        elif op is Opcode.BLEZ:
            taken = _s32(reg_file[d.rs1]) <= 0
            stats.branches += 1
            if taken:
                next_pc = d.target
        elif op is Opcode.BGTZ:
            taken = _s32(reg_file[d.rs1]) > 0
            stats.branches += 1
            if taken:
                next_pc = d.target
        elif op is Opcode.SUB:
            reg_file[d.rd] = (reg_file[d.rs1] - reg_file[d.rs2]) & _MASK32
        elif op is Opcode.MUL:
            reg_file[d.rd] = (
                _s32(reg_file[d.rs1]) * _s32(reg_file[d.rs2])
            ) & _MASK32
        elif op is Opcode.DIV:
            a, b = _s32(reg_file[d.rs1]), _s32(reg_file[d.rs2])
            if b == 0:
                quotient = 0
            else:
                quotient = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    quotient = -quotient
            reg_file[d.rd] = quotient & _MASK32
        elif op is Opcode.REM:
            a, b = _s32(reg_file[d.rs1]), _s32(reg_file[d.rs2])
            if b == 0:
                remainder = a
            else:
                quotient = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    quotient = -quotient
                remainder = a - quotient * b
            reg_file[d.rd] = remainder & _MASK32
        elif op is Opcode.AND:
            reg_file[d.rd] = reg_file[d.rs1] & reg_file[d.rs2]
        elif op is Opcode.OR:
            reg_file[d.rd] = reg_file[d.rs1] | reg_file[d.rs2]
        elif op is Opcode.XOR:
            reg_file[d.rd] = reg_file[d.rs1] ^ reg_file[d.rs2]
        elif op is Opcode.NOR:
            reg_file[d.rd] = ~(reg_file[d.rs1] | reg_file[d.rs2]) & _MASK32
        elif op is Opcode.SLL:
            reg_file[d.rd] = (reg_file[d.rs1] << (reg_file[d.rs2] & 31)) & _MASK32
        elif op is Opcode.SRL:
            reg_file[d.rd] = reg_file[d.rs1] >> (reg_file[d.rs2] & 31)
        elif op is Opcode.SRA:
            reg_file[d.rd] = (_s32(reg_file[d.rs1]) >> (reg_file[d.rs2] & 31)) & _MASK32
        elif op is Opcode.SLT:
            reg_file[d.rd] = 1 if _s32(reg_file[d.rs1]) < _s32(reg_file[d.rs2]) else 0
        elif op is Opcode.SLTU:
            reg_file[d.rd] = 1 if reg_file[d.rs1] < reg_file[d.rs2] else 0
        elif op is Opcode.ANDI:
            reg_file[d.rd] = reg_file[d.rs1] & (d.imm & 0xFFFF)
        elif op is Opcode.ORI:
            reg_file[d.rd] = reg_file[d.rs1] | (d.imm & 0xFFFF)
        elif op is Opcode.XORI:
            reg_file[d.rd] = reg_file[d.rs1] ^ (d.imm & 0xFFFF)
        elif op is Opcode.SLLI:
            reg_file[d.rd] = (reg_file[d.rs1] << (d.imm & 31)) & _MASK32
        elif op is Opcode.SRLI:
            reg_file[d.rd] = reg_file[d.rs1] >> (d.imm & 31)
        elif op is Opcode.SRAI:
            reg_file[d.rd] = (_s32(reg_file[d.rs1]) >> (d.imm & 31)) & _MASK32
        elif op is Opcode.SLTI:
            reg_file[d.rd] = 1 if _s32(reg_file[d.rs1]) < d.imm else 0
        elif op is Opcode.LUI:
            reg_file[d.rd] = (d.imm << 16) & _MASK32
        elif op is Opcode.LB:
            addr = (reg_file[d.rs1] + d.imm) & _MASK32
            word = mem.get(addr >> 2, 0)
            byte = (word >> (8 * (addr & 3))) & 0xFF
            reg_file[d.rd] = (byte - 0x100 if byte & 0x80 else byte) & _MASK32
            stats.loads += 1
        elif op is Opcode.SB:
            addr = (reg_file[d.rs1] + d.imm) & _MASK32
            shift = 8 * (addr & 3)
            word = mem.get(addr >> 2, 0)
            mem[addr >> 2] = (word & ~(0xFF << shift)) | (
                (reg_file[d.rs2] & 0xFF) << shift
            )
            stats.stores += 1
        elif op is Opcode.J:
            taken = True
            next_pc = d.target
        elif op is Opcode.JAL:
            taken = True
            reg_file[regs.RA] = (pc + 1) * 4
            next_pc = d.target
            stats.calls += 1
            free_mask = engine.on_call()
        elif op is Opcode.JALR:
            taken = True
            callee = reg_file[d.rs1]
            if callee & 3:
                raise SimulationError(f"unaligned jalr target: {callee:#x}")
            reg_file[d.rd] = (pc + 1) * 4
            next_pc = callee >> 2
            stats.calls += 1
            free_mask = engine.on_call()
        elif op is Opcode.JR:
            taken = True
            dest = reg_file[d.rs1]
            if dest & 3:
                raise SimulationError(f"unaligned jr target: {dest:#x}")
            next_pc = dest >> 2
            if d.rs1 == regs.RA:
                stats.returns += 1
                free_mask = engine.on_return()
        elif op is Opcode.KILL:
            free_mask = engine.on_kill(d.kill_mask)
            is_program = False
            stats.kill_insts += 1
            if verify:
                sim._poison |= d.kill_mask
        elif op is Opcode.NOP:
            pass
        elif op is Opcode.HALT:
            next_pc = -1
        elif op is Opcode.LVM_SAVE:
            addr = (reg_file[d.rs1] + d.imm) & _MASK32
            mem[addr >> 2] = engine.save_lvm()
        elif op is Opcode.LVM_LOAD:
            addr = (reg_file[d.rs1] + d.imm) & _MASK32
            engine.load_lvm(mem.get(addr >> 2, 0))
        else:  # pragma: no cover - the opcode set is closed
            raise SimulationError(f"unimplemented opcode {op.name}")

        reg_file[regs.ZERO] = 0

        # --- DVI bookkeeping ------------------------------------------
        if dst >= 0:
            engine.on_def(dst)
            if verify:
                sim._poison &= ~(1 << dst)
        if verify and free_mask:
            sim._poison |= free_mask
        if verify and op is Opcode.JAL or verify and op is Opcode.JALR:
            sim._poison |= abi.idvi_call_mask()
        if verify and op is Opcode.JR and d.rs1 == regs.RA:
            sim._poison |= abi.idvi_return_mask()

        if is_program:
            stats.program_insts += 1
        if collect_trace:
            records.append(
                TraceRecord(
                    seq, pc, op, d.cls, dst, d.srcs, addr,
                    taken, next_pc, free_mask, eliminated, is_program,
                )
            )
        if collect_hist:
            count = bin(engine.lvm.mask & saveable).count("1")
            hist[count] = hist.get(count, 0) + 1

        seq += 1
        if next_pc < 0:
            completed = True
            break
        pc = next_pc

    sim.pc = pc
    sim._seq = seq
    if completed:
        sim.halted = True
        stats.completed = True
        stats.exit_value = reg_file[regs.V0]
    return not sim.halted
