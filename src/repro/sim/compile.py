"""Superinstruction (basic-block) compilation for the functional engine.

PR 2's decode-time specialization put one closure behind every static
instruction; the inner loop still pays one Python call, one result-tuple
unpack, one per-pc counter bump, and five column appends *per executed
instruction*.  This module removes the per-instruction tax for
straight-line code by compiling each **basic block** into a single
generated Python function — a "superinstruction":

* **Block discovery** — leaders are the program entry point, every
  static branch/jump target, and every post-control (and post-``halt``)
  fall-through; a block is a maximal run of non-control instructions
  starting at a leader, split at interior leaders and capped at
  :data:`MAX_BLOCK_LEN` (capped runs chain into the next block).  A
  block absorbs the control transfer that terminates it — the generated
  function evaluates the branch/jump and returns the dynamic next pc —
  and every control instruction that is itself a potential entry point
  also gets a single-instruction block, so steady-state dispatch never
  leaves compiled code.  Only ``halt``, unlinked targets, budget
  slivers, and block-interior entry pcs take the per-pc fallback.
* **Codegen** — every static operand (register indices, immediates,
  shift amounts, the pre-masked ``lui`` value, kill masks) is constant-
  folded into the body, so an ``addi`` becomes one statement with no
  dispatch at all.  Engine hooks (``on_save``/``on_restore``/
  ``on_kill``/LVM save/load) are called in program order exactly as the
  per-pc handlers would; destination-liveness bits of plain definitions
  are OR-folded into single ``lvm._mask |=`` constants between hook
  calls.
* **Bulk trace appends** — the five dynamic columns are appended once
  per block via ``list.extend`` with tuples whose static positions
  (pcs, next-pcs, most flags/frees/addrs) are compile-time constants.
* **Batched counters** — the dispatch loop bumps one block-level
  counter per execution; :meth:`repro.sim.functional.FunctionalSimulator
  ._sync_stats` folds block counts back into per-pc counts.

The generated source is ``exec``-compiled once per program (per trace
mode) and cached on the :class:`~repro.program.program.Program`
instance; the factory it defines is then called once per simulator to
bind the mutable state (register file, memory, DVI engine, trace
columns).  Dispatch falls back to the per-pc closures at block
boundaries, for control transfers, for budget slivers smaller than a
block, and for computed jumps that land in a block interior — so any
entry pc executes correctly, just without fusion until the next leader.

Fault caveat: a :class:`~repro.errors.SimulationError` raised mid-block
(unaligned access) leaves the trace columns and counters without the
block's partially-executed prefix, whereas per-pc dispatch records up
to the faulting instruction.  Completed runs — the only ones whose
state is observable through the public API — are bit-identical.

:data:`SUPERBLOCK_VERSION` is folded into
:func:`repro.experiments.cache.code_version`, so artifact-cache keys
change whenever the superblock codegen changes and stale artifacts can
never be served.  The ``REPRO_SUPERBLOCKS=0`` environment variable (set
by ``repro serve --no-superblocks``) is the global escape hatch back to
pure per-pc dispatch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from repro.errors import SimulationError
from repro.isa import registers as regs
from repro.isa.opcodes import OP_IS_CONTROL, Opcode

if TYPE_CHECKING:  # pragma: no cover
    from repro.program.program import Program

#: Bump when the generated code's semantics or layout change; folded into
#: the artifact-cache ``code_version`` digest.
SUPERBLOCK_VERSION = 1

#: Longest straight-line run fused into one function; longer runs chain.
MAX_BLOCK_LEN = 64

#: Environment escape hatch (``repro serve --no-superblocks`` sets it).
SUPERBLOCKS_ENV = "REPRO_SUPERBLOCKS"

_MASK32 = 0xFFFF_FFFF

#: Opcodes that may appear inside a fused block: everything that always
#: falls through.  Control transfers and ``halt`` terminate blocks and
#: stay on the per-pc handlers.
_HALT = int(Opcode.HALT)


def superblocks_enabled() -> bool:
    """Whether superblock dispatch is globally enabled (env escape hatch)."""
    return os.environ.get(SUPERBLOCKS_ENV, "1") != "0"


def _fusable(op: int) -> bool:
    return not OP_IS_CONTROL[op] and op != _HALT


def _terminator(inst, n: int) -> bool:
    """Whether ``inst`` can terminate a fused block.

    Indirect transfers (``jr``/``jalr``) compute their target at run
    time; direct ones need a linked (integer) target.
    """
    op = inst.op
    if not OP_IS_CONTROL[op]:
        return False
    if op == Opcode.JR or op == Opcode.JALR:
        return True
    target = inst.target
    return isinstance(target, int) and 0 <= target <= n


# ----------------------------------------------------------------------
# Per-instruction code emission.
# ----------------------------------------------------------------------

_M = "4294967295"       # _MASK32
_S = "2147483648"       # _SIGN32
_W = "4294967296"       # 2**32


def _sign(var: str, src: str) -> List[str]:
    return [f"{var} = {src}", f"if {var} & {_S}:", f"    {var} -= {_W}"]


@dataclass
class _Emitted:
    """One instruction's contribution to the block body."""

    lines: List[str] = field(default_factory=list)
    addr: str = "-1"     # addr-column expression (literal or local name)
    flags: str = "4"     # flags-column expression (_F_PLAIN)
    free: str = "0"      # free-mask-column expression
    dbit: int = 0        # liveness bit set unconditionally after this inst
    hook: bool = False   # calls a DVI-engine hook (forces a dbit flush)
    next: str = ""       # next-pc expression (terminators only)


def _emit_inst(inst, pc: int, i: int, nodvi: bool) -> _Emitted:
    """Generate the statements executing ``inst`` (at static ``pc``).

    ``i`` is the instruction's index within the block, used to name the
    locals holding its dynamic column values.  ``nodvi`` is the
    configuration-specialized variant for engines with every DVI
    mechanism disabled: the engine hooks are provably constant (saves
    and restores never eliminate, kills never free), so ``live_sw``/
    ``live_lw`` compile to plain stores/loads, ``kill`` to nothing, and
    the engine's "seen" counters are batch-updated per block.
    """
    op = inst.op
    rd = inst.rd
    rs1 = inst.rs1
    rs2 = inst.rs2
    imm = inst.imm
    e = _Emitted()
    L = e.lines

    def def_bit() -> None:
        if rd > 0:
            e.dbit = 1 << rd

    # --- register-register / register-immediate ALU -------------------
    if op == Opcode.ADD:
        if rd:
            L.append(f"R[{rd}] = (R[{rs1}] + R[{rs2}]) & {_M}")
        def_bit()
    elif op == Opcode.SUB:
        if rd:
            L.append(f"R[{rd}] = (R[{rs1}] - R[{rs2}]) & {_M}")
        def_bit()
    elif op == Opcode.MUL:
        if rd:
            L.extend(_sign("a", f"R[{rs1}]"))
            L.extend(_sign("b", f"R[{rs2}]"))
            L.append(f"R[{rd}] = (a * b) & {_M}")
        def_bit()
    elif op == Opcode.DIV:
        if rd:
            L.extend(_sign("a", f"R[{rs1}]"))
            L.extend(_sign("b", f"R[{rs2}]"))
            L.extend([
                "if b == 0:",
                "    t = 0",
                "else:",
                "    t = abs(a) // abs(b)",
                "    if (a < 0) != (b < 0):",
                "        t = -t",
                f"R[{rd}] = t & {_M}",
            ])
        def_bit()
    elif op == Opcode.REM:
        if rd:
            L.extend(_sign("a", f"R[{rs1}]"))
            L.extend(_sign("b", f"R[{rs2}]"))
            L.extend([
                "if b == 0:",
                "    t = a",
                "else:",
                "    t = abs(a) // abs(b)",
                "    if (a < 0) != (b < 0):",
                "        t = -t",
                "    t = a - t * b",
                f"R[{rd}] = t & {_M}",
            ])
        def_bit()
    elif op == Opcode.AND:
        if rd:
            L.append(f"R[{rd}] = R[{rs1}] & R[{rs2}]")
        def_bit()
    elif op == Opcode.OR:
        if rd:
            L.append(f"R[{rd}] = R[{rs1}] | R[{rs2}]")
        def_bit()
    elif op == Opcode.XOR:
        if rd:
            L.append(f"R[{rd}] = R[{rs1}] ^ R[{rs2}]")
        def_bit()
    elif op == Opcode.NOR:
        if rd:
            L.append(f"R[{rd}] = ~(R[{rs1}] | R[{rs2}]) & {_M}")
        def_bit()
    elif op == Opcode.SLL:
        if rd:
            L.append(f"R[{rd}] = (R[{rs1}] << (R[{rs2}] & 31)) & {_M}")
        def_bit()
    elif op == Opcode.SRL:
        if rd:
            L.append(f"R[{rd}] = R[{rs1}] >> (R[{rs2}] & 31)")
        def_bit()
    elif op == Opcode.SRA:
        if rd:
            L.extend(_sign("a", f"R[{rs1}]"))
            L.append(f"R[{rd}] = (a >> (R[{rs2}] & 31)) & {_M}")
        def_bit()
    elif op == Opcode.SLT:
        if rd:
            L.extend(_sign("a", f"R[{rs1}]"))
            L.extend(_sign("b", f"R[{rs2}]"))
            L.append(f"R[{rd}] = 1 if a < b else 0")
        def_bit()
    elif op == Opcode.SLTU:
        if rd:
            L.append(f"R[{rd}] = 1 if R[{rs1}] < R[{rs2}] else 0")
        def_bit()
    elif op == Opcode.ADDI:
        if rd:
            L.append(f"R[{rd}] = (R[{rs1}] + {imm}) & {_M}")
        def_bit()
    elif op == Opcode.ANDI:
        if rd:
            L.append(f"R[{rd}] = R[{rs1}] & {imm & 0xFFFF}")
        def_bit()
    elif op == Opcode.ORI:
        if rd:
            L.append(f"R[{rd}] = R[{rs1}] | {imm & 0xFFFF}")
        def_bit()
    elif op == Opcode.XORI:
        if rd:
            L.append(f"R[{rd}] = R[{rs1}] ^ {imm & 0xFFFF}")
        def_bit()
    elif op == Opcode.SLLI:
        if rd:
            L.append(f"R[{rd}] = (R[{rs1}] << {imm & 31}) & {_M}")
        def_bit()
    elif op == Opcode.SRLI:
        if rd:
            L.append(f"R[{rd}] = R[{rs1}] >> {imm & 31}")
        def_bit()
    elif op == Opcode.SRAI:
        if rd:
            L.extend(_sign("a", f"R[{rs1}]"))
            L.append(f"R[{rd}] = (a >> {imm & 31}) & {_M}")
        def_bit()
    elif op == Opcode.SLTI:
        if rd:
            L.extend(_sign("a", f"R[{rs1}]"))
            L.append(f"R[{rd}] = 1 if a < {imm} else 0")
        def_bit()
    elif op == Opcode.LUI:
        if rd:
            L.append(f"R[{rd}] = {(imm << 16) & _MASK32}")
        def_bit()

    # --- memory --------------------------------------------------------
    elif op == Opcode.LW:
        a = f"a{i}"
        e.addr = a
        L.append(f"{a} = (R[{rs1}] + {imm}) & {_M}")
        L.append(f"if {a} & 3:")
        L.append(
            f"    raise SimulationError(f\"unaligned lw at pc={pc}: "
            f"{{{a}:#x}}\")"
        )
        if rd:
            L.append(f"R[{rd}] = mg({a} >> 2, 0)")
        def_bit()
    elif op == Opcode.SW:
        a = f"a{i}"
        e.addr = a
        L.append(f"{a} = (R[{rs1}] + {imm}) & {_M}")
        L.append(f"if {a} & 3:")
        L.append(
            f"    raise SimulationError(f\"unaligned sw at pc={pc}: "
            f"{{{a}:#x}}\")"
        )
        L.append(f"mem[{a} >> 2] = R[{rs2}]")
    elif op == Opcode.LB:
        a = f"a{i}"
        e.addr = a
        L.append(f"{a} = (R[{rs1}] + {imm}) & {_M}")
        if rd:
            L.append(f"t = (mg({a} >> 2, 0) >> (8 * ({a} & 3))) & 255")
            L.append(f"R[{rd}] = (t - 256 if t & 128 else t) & {_M}")
        def_bit()
    elif op == Opcode.SB:
        a = f"a{i}"
        e.addr = a
        L.append(f"{a} = (R[{rs1}] + {imm}) & {_M}")
        L.append(f"t = 8 * ({a} & 3)")
        L.append(
            f"mem[{a} >> 2] = (mg({a} >> 2, 0) & ~(255 << t)) | "
            f"((R[{rs2}] & 255) << t)"
        )
    elif op == Opcode.LIVE_LW:
        a = f"a{i}"
        e.addr = a
        L.append(f"{a} = (R[{rs1}] + {imm}) & {_M}")
        L.append(f"if {a} & 3:")
        L.append(
            f"    raise SimulationError(f\"unaligned live_lw at pc={pc}: "
            f"{{{a}:#x}}\")"
        )
        if nodvi:
            if rd:
                L.append(f"R[{rd}] = mg({a} >> 2, 0)")
            def_bit()
        else:
            f = f"f{i}"
            e.flags = f
            e.hook = True
            L.append(f"if on_restore({rd}):")
            L.append(f"    {f} = 6")      # _F_ELIM
            L.append("else:")
            L.append(f"    {f} = 4")      # _F_PLAIN
            if rd:
                L.append(f"    R[{rd}] = mg({a} >> 2, 0)")
                L.append(f"    lvm._mask |= {1 << rd}")
    elif op == Opcode.LIVE_SW:
        a = f"a{i}"
        e.addr = a
        L.append(f"{a} = (R[{rs1}] + {imm}) & {_M}")
        L.append(f"if {a} & 3:")
        L.append(
            f"    raise SimulationError(f\"unaligned live_sw at pc={pc}: "
            f"{{{a}:#x}}\")"
        )
        if nodvi:
            L.append(f"mem[{a} >> 2] = R[{rs2}]")
        else:
            f = f"f{i}"
            e.flags = f
            e.hook = True
            L.append(f"if on_save({rs2}):")
            L.append(f"    {f} = 6")
            L.append("else:")
            L.append(f"    {f} = 4")
            L.append(f"    mem[{a} >> 2] = R[{rs2}]")

    # --- environment and DVI annotations -------------------------------
    elif op == Opcode.NOP:
        pass
    elif op == Opcode.KILL:
        if nodvi:
            e.flags = "0"                 # on_kill returns 0: no FLAG_FREES
        else:
            k = f"k{i}"
            e.free = k
            e.flags = f"(8 if {k} else 0)"  # FLAG_FREES; not a program inst
            e.hook = True
            L.append(f"{k} = on_kill({inst.kill_mask})")
    elif op == Opcode.LVM_SAVE:
        a = f"a{i}"
        e.addr = a
        e.hook = True
        L.append(f"{a} = (R[{rs1}] + {imm}) & {_M}")
        L.append(f"mem[{a} >> 2] = save_lvm()")
    elif op == Opcode.LVM_LOAD:
        a = f"a{i}"
        e.addr = a
        e.hook = True
        L.append(f"{a} = (R[{rs1}] + {imm}) & {_M}")
        L.append(f"load_lvm(mg({a} >> 2, 0))")
    else:  # pragma: no cover - discovery only fuses the ops above
        raise SimulationError(f"superblock codegen: unexpected {op!r}")
    return e


def _branch_cond(inst) -> List[str]:
    """Condition setup + the ``if <cond>:`` line for a branch opcode."""
    op = inst.op
    rs1 = inst.rs1
    rs2 = inst.rs2
    if op == Opcode.BEQ:
        return [f"if R[{rs1}] == R[{rs2}]:"]
    if op == Opcode.BNE:
        return [f"if R[{rs1}] != R[{rs2}]:"]
    if op == Opcode.BLT:
        return (_sign("a", f"R[{rs1}]") + _sign("b", f"R[{rs2}]")
                + ["if a < b:"])
    if op == Opcode.BGE:
        return (_sign("a", f"R[{rs1}]") + _sign("b", f"R[{rs2}]")
                + ["if a >= b:"])
    if op == Opcode.BLEZ:
        return [f"a = R[{rs1}]", f"if a == 0 or a & {_S}:"]
    if op == Opcode.BGTZ:
        return [f"a = R[{rs1}]", f"if a and not a & {_S}:"]
    raise SimulationError(f"not a branch: {op!r}")  # pragma: no cover


def _emit_term(inst, pc: int, nodvi: bool) -> _Emitted:
    """Generate the block-terminating control transfer.

    Mirrors the per-pc control handlers exactly: same evaluation order,
    same engine hooks, same flags (``taken | FLAG_FREES`` composition is
    done here since the block appends its own columns).  Under ``nodvi``
    the call/return hooks are constant (no stack tracking, never free),
    so they vanish and the flags fold to plain-taken.
    """
    op = inst.op
    pc1 = pc + 1
    e = _Emitted()
    L = e.lines
    if op == Opcode.J:
        e.next = str(inst.target)
        e.flags = "5"                      # _F_TAKEN
        return e
    if op == Opcode.JAL:
        e.next = str(inst.target)
        L.append(f"R[{regs.RA}] = {pc1 * 4}")
        if nodvi:
            e.flags = "5"
            e.dbit = 1 << regs.RA
        else:
            e.hook = True
            e.free = "k"
            e.flags = "(13 if k else 5)"   # _F_TAKEN | FLAG_FREES
            L.append("k = on_call()")
            L.append(f"lvm._mask |= {1 << regs.RA}")
        return e
    if op == Opcode.JALR:
        e.next = "nx"
        L.append(f"t = R[{inst.rs1}]")
        L.append("if t & 3:")
        L.append("    raise SimulationError("
                 "f\"unaligned jalr target: {t:#x}\")")
        if inst.rd:
            L.append(f"R[{inst.rd}] = {pc1 * 4}")
        if nodvi:
            e.flags = "5"
            if inst.rd:
                e.dbit = 1 << inst.rd
        else:
            e.hook = True
            e.free = "k"
            e.flags = "(13 if k else 5)"
            L.append("k = on_call()")
            if inst.rd:
                L.append(f"lvm._mask |= {1 << inst.rd}")
        L.append("nx = t >> 2")
        return e
    if op == Opcode.JR:
        e.next = "nx"
        L.append(f"t = R[{inst.rs1}]")
        L.append("if t & 3:")
        L.append("    raise SimulationError("
                 "f\"unaligned jr target: {t:#x}\")")
        if inst.rs1 == regs.RA and not nodvi:
            e.hook = True
            e.free = "k"
            e.flags = "(13 if k else 5)"
            L.append("k = on_return()")
        else:
            e.flags = "5"
        L.append("nx = t >> 2")
        return e
    # Conditional branches.
    e.next = "nx"
    e.flags = "f"
    L.extend(_branch_cond(inst))
    L.append(f"    nx = {inst.target}")
    L.append("    f = 5")
    L.append("else:")
    L.append(f"    nx = {pc1}")
    L.append("    f = 4")
    return e


# ----------------------------------------------------------------------
# Program-level compilation.
# ----------------------------------------------------------------------

_Factory = Callable[..., List[Optional[Callable[[], int]]]]


@dataclass
class CompiledProgram:
    """Discovered blocks plus lazily ``exec``-compiled factories."""

    name: str
    n: int
    #: Per-block (start pc, length), ordered by start.
    blocks: List[tuple]
    #: pc -> block length (0 when pc doesn't start a block).
    len_by_pc: List[int]
    #: pc -> block id (-1 when pc doesn't start a block).
    bid_by_pc: List[int]
    _insts: Sequence = ()
    #: (trace, nodvi) -> exec-compiled factory.
    _factories: Dict[tuple, _Factory] = field(default_factory=dict)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def fused_insts(self) -> int:
        return sum(ln for _, ln in self.blocks)

    @property
    def mean_block_len(self) -> float:
        return self.fused_insts / len(self.blocks) if self.blocks else 0.0

    def source(self, trace: bool, nodvi: bool = False) -> str:
        """The generated factory source (compiled lazily, cached)."""
        return _generate_source(self.name, self.n, self.blocks, self._insts,
                                trace, nodvi)

    def factory(self, trace: bool, nodvi: bool = False) -> _Factory:
        """The ``make(R, mem, engine, cols)`` factory for one variant."""
        key = (trace, nodvi)
        made = self._factories.get(key)
        if made is None:
            src = self.source(trace, nodvi)
            namespace = {"SimulationError": SimulationError}
            exec(compile(src, f"<superblocks:{self.name}>", "exec"),
                 namespace)
            made = namespace["_make"]
            self._factories[key] = made
        return made

    def summary(self) -> Dict[str, float]:
        """Block statistics for benchmarks and diagnostics."""
        return {
            "blocks": self.n_blocks,
            "fused_insts": self.fused_insts,
            "mean_block_len": round(self.mean_block_len, 2),
            "static_insts": self.n,
        }


def discover_blocks(program: "Program") -> List[tuple]:
    """Basic blocks as (start, length) pairs, ordered by start pc.

    A block is a straight-line run plus — when the instruction that
    stops the run is a linkable control transfer — that terminator.
    Every terminator-eligible control instruction additionally anchors a
    single-instruction block of its own (unless it already starts one),
    so branch-to-branch targets and tight self-loops dispatch into
    compiled code no matter which pc the flow enters at.  Blocks may
    therefore overlap by one instruction; per-pc execution counts stay
    exact because each block folds its own counter into its own pc
    range.
    """
    insts = program.insts
    n = len(insts)
    leaders = bytearray(n + 1)
    if n:
        leaders[program.entry_index] = 1
    for pc, inst in enumerate(insts):
        op = inst.op
        if OP_IS_CONTROL[op]:
            target = inst.target
            if isinstance(target, int) and 0 <= target < n:
                leaders[target] = 1
            leaders[pc + 1] = 1
        elif op == _HALT:
            leaders[pc + 1] = 1

    blocks: List[tuple] = []
    starts = bytearray(n + 1)
    pc = 0
    while pc < n:
        if not _fusable(insts[pc].op):
            pc += 1
            continue
        start = pc
        pc += 1
        while (pc < n and _fusable(insts[pc].op) and not leaders[pc]
               and pc - start < MAX_BLOCK_LEN):
            pc += 1
        if (pc < n and pc - start < MAX_BLOCK_LEN
                and _terminator(insts[pc], n)):
            pc += 1
        blocks.append((start, pc - start))
        starts[start] = 1
    for pc, inst in enumerate(insts):
        if not starts[pc] and _terminator(inst, n):
            blocks.append((pc, 1))
            starts[pc] = 1
    blocks.sort()
    return blocks


#: DVICounters attribute bumped per occurrence of each opcode when the
#: engine hooks are compiled away (``nodvi``); ``jr`` only counts as a
#: return when it reads ``ra`` (the only case ``on_return`` fires).
_NODVI_COUNTERS = {
    int(Opcode.LIVE_SW): "saves_seen",
    int(Opcode.LIVE_LW): "restores_seen",
    int(Opcode.KILL): "kills_seen",
    int(Opcode.JAL): "calls",
    int(Opcode.JALR): "calls",
}


def _generate_source(name: str, n: int, blocks: List[tuple],
                     insts: Sequence, trace: bool, nodvi: bool) -> str:
    out: List[str] = [
        f"# superblocks v{SUPERBLOCK_VERSION} for {name!r} "
        f"(trace={'on' if trace else 'off'}, nodvi={nodvi})",
        "def _make(R, mem, engine, cols):",
        "    mg = mem.get",
        "    lvm = engine.lvm",
        "    save_lvm = engine.save_lvm",
        "    load_lvm = engine.load_lvm",
    ]
    if nodvi:
        out.append("    ctr = engine.counters")
    else:
        out.extend([
            "    on_save = engine.on_save",
            "    on_restore = engine.on_restore",
            "    on_kill = engine.on_kill",
            "    on_call = engine.on_call",
            "    on_return = engine.on_return",
        ])
    if trace:
        out.append("    xp, xa, xn, xfree, xflag = cols")
    out.append(f"    blocks = [None] * {n + 1}")
    for start, length in blocks:
        end = start + length
        out.append(f"    def _b{start}():")
        body: List[str] = []
        emitted: List[_Emitted] = []
        pending = 0  # dbits accumulated since the last engine hook
        tally: Dict[str, int] = {}
        for i, pc in enumerate(range(start, end)):
            inst = insts[pc]
            if OP_IS_CONTROL[inst.op]:
                e = _emit_term(inst, pc, nodvi)
            else:
                e = _emit_inst(inst, pc, i, nodvi)
            if e.hook and pending:
                body.append(f"lvm._mask |= {pending}")
                pending = 0
            body.extend(e.lines)
            pending |= e.dbit
            emitted.append(e)
            if nodvi:
                field_name = _NODVI_COUNTERS.get(inst.op)
                if inst.op == Opcode.JR and inst.rs1 == regs.RA:
                    field_name = "returns"
                if field_name:
                    tally[field_name] = tally.get(field_name, 0) + 1
        if pending:
            body.append(f"lvm._mask |= {pending}")
        for field_name, count in tally.items():
            body.append(f"ctr.{field_name} += {count}")
        tail = emitted[-1]
        if trace:
            pcs = ", ".join(str(pc) for pc in range(start, end))
            nxt = ", ".join(
                [str(pc + 1) for pc in range(start, end - 1)]
                + [tail.next or str(end)]
            )
            addrs = ", ".join(e.addr for e in emitted)
            flags = ", ".join(e.flags for e in emitted)
            frees = ", ".join(e.free for e in emitted)
            comma = "," if length == 1 else ""
            body.append(f"xp(({pcs}{comma}))")
            body.append(f"xa(({addrs}{comma}))")
            body.append(f"xn(({nxt}{comma}))")
            body.append(f"xfree(({frees}{comma}))")
            body.append(f"xflag(({flags}{comma}))")
        body.append(f"return {tail.next or str(end)}")
        out.extend("        " + line for line in body)
        out.append(f"    blocks[{start}] = _b{start}")
    out.append("    return blocks")
    out.append("")
    return "\n".join(out)


def compile_program(program: "Program") -> CompiledProgram:
    """Discover and (lazily) compile ``program``'s superblocks.

    The result is cached on the program instance: workloads are built
    once and simulated many times (sweep cells, repeated runs), so the
    discovery and the per-trace-mode ``exec`` happen once per program
    object.
    """
    cached = program.__dict__.get("_superblocks")
    if cached is not None:
        return cached
    blocks = discover_blocks(program)
    n = len(program.insts)
    len_by_pc = [0] * (n + 1)
    bid_by_pc = [-1] * (n + 1)
    for bid, (start, length) in enumerate(blocks):
        len_by_pc[start] = length
        bid_by_pc[start] = bid
    compiled = CompiledProgram(
        name=program.name,
        n=n,
        blocks=blocks,
        len_by_pc=len_by_pc,
        bid_by_pc=bid_by_pc,
        _insts=program.insts,
    )
    program.__dict__["_superblocks"] = compiled
    return compiled
