"""Dynamic instruction trace records.

The functional emulator executes a program in architectural program order
and emits one :class:`TraceRecord` per dynamic instruction.  The
out-of-order timing model replays these records through its resource
pipeline.  Records carry everything the timing model needs and nothing
else: registers for renaming, addresses for the caches, control outcomes
for the branch predictor, and the DVI annotations (register-free masks and
elimination flags) decided in program order by the
:class:`~repro.dvi.engine.DVIEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dvi.config import DVIConfig
from repro.isa.opcodes import OpClass, Opcode


class TraceRecord:
    """One dynamic instruction instance.

    Attributes:
        seq: Dynamic sequence number (0-based, includes kill annotations).
        pc: Static instruction index (byte address = ``4 * pc``).
        op: Opcode.
        cls: Operation class (functional unit / latency selector).
        dst: Destination architectural register, or -1.
        srcs: Source architectural registers (r0 excluded).
        addr: Byte address touched, or -1 for non-memory ops.
        taken: For control transfers, whether the transfer was taken.
        next_pc: Static index of the next executed instruction (-1 at halt).
        free_mask: Architectural registers whose physical mappings may be
            reclaimed when this record commits (from E-DVI kills or I-DVI at
            calls/returns).
        eliminated: True for saves/restores squashed by the LVM hardware;
            such records are fetched and decoded but never dispatched.
        is_program: False only for ``kill`` annotations, which the paper
            counts as cycle overhead rather than program work.
    """

    __slots__ = (
        "seq", "pc", "op", "cls", "dst", "srcs", "addr",
        "taken", "next_pc", "free_mask", "eliminated", "is_program",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        op: Opcode,
        cls: OpClass,
        dst: int,
        srcs: Tuple[int, ...],
        addr: int,
        taken: bool,
        next_pc: int,
        free_mask: int,
        eliminated: bool,
        is_program: bool,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.op = op
        self.cls = cls
        self.dst = dst
        self.srcs = srcs
        self.addr = addr
        self.taken = taken
        self.next_pc = next_pc
        self.free_mask = free_mask
        self.eliminated = eliminated
        self.is_program = is_program

    @property
    def is_control(self) -> bool:
        return self.cls is OpClass.BRANCH or self.cls is OpClass.JUMP

    @property
    def is_branch(self) -> bool:
        return self.cls is OpClass.BRANCH

    @property
    def is_call(self) -> bool:
        return self.op is Opcode.JAL or self.op is Opcode.JALR

    @property
    def is_return(self) -> bool:
        return self.op is Opcode.JR

    @property
    def is_mem(self) -> bool:
        return self.cls is OpClass.LOAD or self.cls is OpClass.STORE

    @property
    def is_load(self) -> bool:
        return self.cls is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.cls is OpClass.STORE

    def __repr__(self) -> str:  # pragma: no cover
        marks = []
        if self.eliminated:
            marks.append("elim")
        if self.free_mask:
            marks.append(f"free={self.free_mask:#x}")
        suffix = (" [" + ", ".join(marks) + "]") if marks else ""
        return f"<{self.seq}: pc={self.pc} {self.op.name}{suffix}>"


@dataclass
class Trace:
    """A complete dynamic trace plus its provenance."""

    program_name: str
    dvi: DVIConfig
    records: List[TraceRecord] = field(default_factory=list)
    #: True if the program ran to its halt (vs. hitting the step budget).
    completed: bool = True

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def program_insts(self) -> int:
        """Original program instructions (the paper's IPC numerator)."""
        return sum(1 for record in self.records if record.is_program)

    @property
    def annotation_insts(self) -> int:
        """Dynamic ``kill`` annotation instances (cycle overhead only)."""
        return sum(1 for record in self.records if not record.is_program)

    def op_histogram(self) -> Dict[Opcode, int]:
        hist: Dict[Opcode, int] = {}
        for record in self.records:
            hist[record.op] = hist.get(record.op, 0) + 1
        return hist
