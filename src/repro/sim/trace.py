"""Dynamic instruction traces, stored columnar.

The functional emulator executes a program in architectural program order
and emits one dynamic-instruction row per step.  The out-of-order timing
model replays these rows through its resource pipeline.  Rows carry
everything the timing model needs and nothing else: registers for
renaming, addresses for the caches, control outcomes for the branch
predictor, and the DVI annotations (register-free masks and elimination
flags) decided in program order by the
:class:`~repro.dvi.engine.DVIEngine`.

Storage layout (the perf-critical part): a :class:`Trace` is **columnar**.
Million-row traces used to be lists of per-row ``TraceRecord`` heap
objects; they are now parallel ``array`` columns — five *dynamic* columns
with one entry per executed instruction, plus four small *static*
side-tables indexed by ``pc`` for the per-instruction facts that never
change between dynamic instances (opcode, class, destination, sources).
This makes trace generation allocation-free per step, lets the timing
core read plain ints straight out of flat buffers, and pickles as a
handful of compact byte blobs instead of millions of objects.

Columns:

==============  ========  ====================================================
column          typecode  contents (one entry per dynamic instruction)
==============  ========  ====================================================
``pcs``         ``i``     static instruction index (byte address = ``4*pc``)
``addrs``       ``q``     byte address touched, or -1 for non-memory ops
``next_pcs``    ``i``     static index of the next executed instruction
                          (-1 at ``halt``; the sentinel index at a
                          top-level return)
``free_masks``  ``q``     architectural registers whose physical mappings
                          may be reclaimed when the row commits
``flags``       ``B``     bit 0 taken, bit 1 eliminated, bit 2 is-program
==============  ========  ====================================================

Static side-tables, indexed by ``pc`` (entries for never-executed pcs are
-1/0):

``s_op`` (``b``) opcode int; ``s_cls`` (``b``) op-class int; ``s_dst``
(``b``) destination register or -1; ``s_srcs`` (``h``) packed sources.

``s_srcs`` packs the 0–2 source registers of this ISA into one short:
``(src1 + 1) | ((src2 + 1) << 6)``, 0 meaning "no source in this slot"
(register numbers are 5 bits, so 6 bits per slot round-trips losslessly).

The **row-view shim**: ``trace.records`` still yields a list of
:class:`TraceRecord` objects, materialized lazily from the columns, and
assigning ``trace.records = [...]`` re-encodes the columns — so tests,
ad-hoc analysis code, and pickles of the pre-columnar format keep
working without the hot paths paying for per-row objects.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterator, List, Optional, Tuple

from repro.dvi.config import DVIConfig
from repro.isa.opcodes import OpClass, Opcode

#: Bits of the per-row ``flags`` column.
FLAG_TAKEN = 1
FLAG_ELIMINATED = 2
FLAG_PROGRAM = 4
#: Set iff the row's ``free_mask`` is non-zero, so replay loops can skip
#: the ``free_masks`` column read for the ~95% of rows that free nothing.
FLAG_FREES = 8

#: Trace storage-format version.  Baked into the experiment cache keys so
#: artifacts written by the pre-columnar format (version 1, a pickled
#: list of TraceRecord objects) can never be confused with columnar ones.
TRACE_FORMAT = 2

_OPCODES = tuple(Opcode)
_OP_CLASSES = tuple(OpClass)


def pack_srcs(srcs: Tuple[int, ...]) -> int:
    """Pack a 0/1/2-tuple of source registers into one int."""
    packed = 0
    shift = 0
    for src in srcs:
        packed |= (src + 1) << shift
        shift += 6
    return packed


def unpack_srcs(packed: int) -> Tuple[int, ...]:
    """Inverse of :func:`pack_srcs`."""
    if not packed:
        return ()
    first = (packed & 0x3F) - 1
    second = packed >> 6
    if not second:
        return (first,)
    return (first, second - 1)


class TraceRecord:
    """One dynamic instruction instance (the row view).

    Attributes:
        seq: Dynamic sequence number (0-based, includes kill annotations).
        pc: Static instruction index (byte address = ``4 * pc``).
        op: Opcode.
        cls: Operation class (functional unit / latency selector).
        dst: Destination architectural register, or -1.
        srcs: Source architectural registers (r0 excluded).
        addr: Byte address touched, or -1 for non-memory ops.
        taken: For control transfers, whether the transfer was taken.
        next_pc: Static index of the next executed instruction (-1 at halt).
        free_mask: Architectural registers whose physical mappings may be
            reclaimed when this record commits (from E-DVI kills or I-DVI at
            calls/returns).
        eliminated: True for saves/restores squashed by the LVM hardware;
            such records are fetched and decoded but never dispatched.
        is_program: False only for ``kill`` annotations, which the paper
            counts as cycle overhead rather than program work.
    """

    __slots__ = (
        "seq", "pc", "op", "cls", "dst", "srcs", "addr",
        "taken", "next_pc", "free_mask", "eliminated", "is_program",
    )

    def __init__(
        self,
        seq: int,
        pc: int,
        op: Opcode,
        cls: OpClass,
        dst: int,
        srcs: Tuple[int, ...],
        addr: int,
        taken: bool,
        next_pc: int,
        free_mask: int,
        eliminated: bool,
        is_program: bool,
    ) -> None:
        self.seq = seq
        self.pc = pc
        self.op = op
        self.cls = cls
        self.dst = dst
        self.srcs = srcs
        self.addr = addr
        self.taken = taken
        self.next_pc = next_pc
        self.free_mask = free_mask
        self.eliminated = eliminated
        self.is_program = is_program

    @property
    def is_control(self) -> bool:
        return self.cls is OpClass.BRANCH or self.cls is OpClass.JUMP

    @property
    def is_branch(self) -> bool:
        return self.cls is OpClass.BRANCH

    @property
    def is_call(self) -> bool:
        return self.op is Opcode.JAL or self.op is Opcode.JALR

    @property
    def is_return(self) -> bool:
        return self.op is Opcode.JR

    @property
    def is_mem(self) -> bool:
        return self.cls is OpClass.LOAD or self.cls is OpClass.STORE

    @property
    def is_load(self) -> bool:
        return self.cls is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.cls is OpClass.STORE

    def __repr__(self) -> str:  # pragma: no cover
        marks = []
        if self.eliminated:
            marks.append("elim")
        if self.free_mask:
            marks.append(f"free={self.free_mask:#x}")
        suffix = (" [" + ", ".join(marks) + "]") if marks else ""
        return f"<{self.seq}: pc={self.pc} {self.op.name}{suffix}>"


class Trace:
    """A complete dynamic trace plus its provenance, stored columnar."""

    __slots__ = (
        "program_name", "dvi", "completed",
        "pcs", "addrs", "next_pcs", "free_masks", "flags",
        "s_op", "s_cls", "s_dst", "s_srcs",
        "_rows", "_program_insts", "_hot", "_replay",
    )

    def __init__(
        self,
        program_name: str,
        dvi: DVIConfig,
        records: Optional[List[TraceRecord]] = None,
        completed: bool = True,
    ) -> None:
        self.program_name = program_name
        self.dvi = dvi
        self.completed = completed
        self._rows: Optional[List[TraceRecord]] = None
        self._program_insts: Optional[int] = None
        self._hot: Optional[tuple] = None
        self._replay: Optional[list] = None
        self._clear_columns()
        if records:
            self._encode_records(records)

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        program_name: str,
        dvi: DVIConfig,
        completed: bool,
        pcs: array,
        addrs: array,
        next_pcs: array,
        free_masks: array,
        flags: array,
        s_op: array,
        s_cls: array,
        s_dst: array,
        s_srcs: array,
    ) -> "Trace":
        """Adopt already-built columns (the emulator's fast path)."""
        trace = cls(program_name, dvi)
        trace.completed = completed
        trace.pcs = pcs
        trace.addrs = addrs
        trace.next_pcs = next_pcs
        trace.free_masks = free_masks
        trace.flags = flags
        trace.s_op = s_op
        trace.s_cls = s_cls
        trace.s_dst = s_dst
        trace.s_srcs = s_srcs
        return trace

    def _clear_columns(self) -> None:
        self.pcs = array("i")
        self.addrs = array("q")
        self.next_pcs = array("i")
        self.free_masks = array("q")
        self.flags = array("B")
        self.s_op = array("b")
        self.s_cls = array("b")
        self.s_dst = array("b")
        self.s_srcs = array("h")

    def _encode_records(self, records: List[TraceRecord]) -> None:
        """Rebuild every column from a list of row views."""
        self._clear_columns()
        self._program_insts = None
        self._hot = None
        self._replay = None
        n_static = 1 + max((r.pc for r in records), default=-1)
        s_op = array("b", [-1]) * n_static
        s_cls = array("b", [-1]) * n_static
        s_dst = array("b", [-1]) * n_static
        s_srcs = array("h", [0]) * n_static
        append_pc = self.pcs.append
        append_addr = self.addrs.append
        append_next = self.next_pcs.append
        append_free = self.free_masks.append
        append_flags = self.flags.append
        for rec in records:
            pc = rec.pc
            append_pc(pc)
            append_addr(rec.addr)
            append_next(rec.next_pc)
            append_free(rec.free_mask)
            append_flags(
                (FLAG_TAKEN if rec.taken else 0)
                | (FLAG_ELIMINATED if rec.eliminated else 0)
                | (FLAG_PROGRAM if rec.is_program else 0)
                | (FLAG_FREES if rec.free_mask else 0)
            )
            s_op[pc] = rec.op
            s_cls[pc] = rec.cls
            s_srcs[pc] = pack_srcs(rec.srcs)
            # An eliminated restore reports dst=-1 (it never dispatches);
            # the static destination must come from a dispatched instance.
            if not rec.eliminated:
                s_dst[pc] = rec.dst
        self.s_op = s_op
        self.s_cls = s_cls
        self.s_dst = s_dst
        self.s_srcs = s_srcs
        self._rows = list(records)

    # ------------------------------------------------------------------
    # The row-view shim.
    # ------------------------------------------------------------------

    def _materialize(self) -> List[TraceRecord]:
        opcodes = _OPCODES
        classes = _OP_CLASSES
        s_op = self.s_op
        s_cls = self.s_cls
        s_dst = self.s_dst
        s_srcs = self.s_srcs
        rows: List[TraceRecord] = []
        append = rows.append
        seq = 0
        for pc, addr, next_pc, free_mask, fl in zip(
            self.pcs, self.addrs, self.next_pcs, self.free_masks, self.flags
        ):
            eliminated = bool(fl & FLAG_ELIMINATED)
            append(
                TraceRecord(
                    seq,
                    pc,
                    opcodes[s_op[pc]],
                    classes[s_cls[pc]],
                    -1 if eliminated else s_dst[pc],
                    unpack_srcs(s_srcs[pc]),
                    addr,
                    bool(fl & FLAG_TAKEN),
                    next_pc,
                    free_mask,
                    eliminated,
                    bool(fl & FLAG_PROGRAM),
                )
            )
            seq += 1
        return rows

    @property
    def records(self) -> List[TraceRecord]:
        """The trace as per-row objects (materialized lazily, then cached).

        The returned list is a *view*: mutating it in place (append,
        slice-delete, ...) does **not** update the columns, which remain
        the authoritative storage for ``len``, the statistics, replay,
        and pickling.  To modify a trace, *assign* a record list —
        ``trace.records = rows`` re-encodes every column.
        """
        if self._rows is None:
            self._rows = self._materialize()
        return self._rows

    @records.setter
    def records(self, records: List[TraceRecord]) -> None:
        self._encode_records(records)

    # ------------------------------------------------------------------
    # Container protocol and statistics.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pcs)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    @property
    def program_insts(self) -> int:
        """Original program instructions (the paper's IPC numerator)."""
        if self._program_insts is None:
            self._program_insts = sum(
                1 for fl in self.flags if fl & FLAG_PROGRAM
            )
        return self._program_insts

    @property
    def annotation_insts(self) -> int:
        """Dynamic ``kill`` annotation instances (cycle overhead only)."""
        return sum(1 for fl in self.flags if not fl & FLAG_PROGRAM)

    def hot_columns(self) -> tuple:
        """The nine columns as plain lists, for replay loops.

        ``array`` indexing boxes a fresh int object on every read; the
        timing core reads each row's columns a dozen times, so it replays
        from list views (cached ints, pointer loads).  Built once per
        trace and memoized — timing sweeps replay the same trace under
        many machine configurations.

        Returns ``(pcs, addrs, next_pcs, free_masks, flags, s_op, s_cls,
        s_dst, s_srcs)``.
        """
        if self._hot is None:
            self._hot = (
                list(self.pcs),
                list(self.addrs),
                list(self.next_pcs),
                list(self.free_masks),
                list(self.flags),
                list(self.s_op),
                list(self.s_cls),
                list(self.s_dst),
                list(self.s_srcs),
            )
        return self._hot

    def replay_rows(self) -> list:
        """Per-row ``(pc, flags, dst, packed_srcs, cls, addr)`` tuples.

        The timing core's fetch/dispatch stages need these six facts for
        every row; pre-joining them turns six column subscripts per row
        into one subscript plus a tuple unpack.  Built once per trace and
        memoized, like :meth:`hot_columns`, because timing sweeps replay
        the same trace under many machine configurations.
        """
        if self._replay is None:
            (
                pcs, addrs, _next_pcs, _free_masks, flags,
                _s_op, s_cls, s_dst, s_srcs,
            ) = self.hot_columns()
            self._replay = [
                (pc, fl, s_dst[pc], s_srcs[pc], s_cls[pc], addr)
                for pc, fl, addr in zip(pcs, flags, addrs)
            ]
        return self._replay

    def op_histogram(self) -> Dict[Opcode, int]:
        by_code = [0] * len(_OPCODES)
        s_op = self.s_op
        for pc in self.pcs:
            by_code[s_op[pc]] += 1
        return {
            _OPCODES[code]: count
            for code, count in enumerate(by_code)
            if count
        }

    # ------------------------------------------------------------------
    # Pickling (explicit, versioned).
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "format": TRACE_FORMAT,
            "program_name": self.program_name,
            "dvi": self.dvi,
            "completed": self.completed,
            "pcs": self.pcs,
            "addrs": self.addrs,
            "next_pcs": self.next_pcs,
            "free_masks": self.free_masks,
            "flags": self.flags,
            "s_op": self.s_op,
            "s_cls": self.s_cls,
            "s_dst": self.s_dst,
            "s_srcs": self.s_srcs,
        }

    def __setstate__(self, state: dict) -> None:
        self._rows = None
        self._program_insts = None
        self._hot = None
        self._replay = None
        self.program_name = state["program_name"]
        self.dvi = state["dvi"]
        self.completed = state.get("completed", True)
        if "records" in state:  # a pre-columnar (format 1) pickle
            self._clear_columns()
            self._encode_records(state["records"])
            return
        self.pcs = state["pcs"]
        self.addrs = state["addrs"]
        self.next_pcs = state["next_pcs"]
        self.free_masks = state["free_masks"]
        self.flags = state["flags"]
        self.s_op = state["s_op"]
        self.s_cls = state["s_cls"]
        self.s_dst = state["s_dst"]
        self.s_srcs = state["s_srcs"]

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Trace({self.program_name!r}, rows={len(self.pcs)}, "
            f"completed={self.completed})"
        )
