"""Simulators: functional emulator, trace format, and timing models."""

from repro.sim.config import MachineConfig
from repro.sim.functional import (
    FunctionalResult,
    FunctionalSimulator,
    FunctionalStats,
    run_program,
)
from repro.sim.ooo.core import OutOfOrderCore, simulate
from repro.sim.ooo.stats import PipelineStats
from repro.sim.trace import Trace, TraceRecord

__all__ = [
    "FunctionalResult",
    "FunctionalSimulator",
    "FunctionalStats",
    "MachineConfig",
    "OutOfOrderCore",
    "PipelineStats",
    "Trace",
    "TraceRecord",
    "run_program",
    "simulate",
]
