"""Executable checks of the DVI correctness contract.

Section 7 of the paper: "Incorrect E-DVI will almost certainly lead to
incorrect execution ... Errors in E-DVI should be considered compiler
errors."  This module provides two complementary oracles:

* :func:`verify_dvi` runs a program under the *poison* emulator, which
  raises :class:`~repro.errors.DVIViolationError` the moment any register
  asserted dead (by a ``kill`` or by the ABI's implicit masks) is read
  before being overwritten — over a concrete execution, the strongest
  check available without symbolic reasoning;
* :func:`check_equivalence` runs a program under two DVI configurations
  (typically the no-DVI baseline and an aggressive elimination scheme) and
  compares the *observable* outcomes: exit value and final data segment.
  Save/restore elimination really changes the executed instruction stream,
  so equal observables are a meaningful end-to-end correctness result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.dvi.config import DVIConfig
from repro.program.program import DATA_BASE, STACK_TOP, Program
from repro.sim.functional import FunctionalResult, run_program


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of an observational-equivalence check."""

    equivalent: bool
    exit_values: Tuple[int, int]
    mismatched_words: List[int]

    def __bool__(self) -> bool:
        return self.equivalent


def verify_dvi(
    program: Program,
    dvi: Optional[DVIConfig] = None,
    *,
    max_steps: int = 5_000_000,
) -> FunctionalResult:
    """Run with dead-value poisoning; raises on any dead-value read."""
    return run_program(
        program,
        dvi if dvi is not None else DVIConfig.full(),
        max_steps=max_steps,
        collect_trace=False,
        verify_dvi=True,
    )


def check_equivalence(
    program_a: Program,
    dvi_a: DVIConfig,
    program_b: Program,
    dvi_b: DVIConfig,
    *,
    max_steps: int = 5_000_000,
    data_limit: int = STACK_TOP - (1 << 20),
) -> EquivalenceReport:
    """Compare observable outcomes of two (program, DVI config) pairs.

    Typically ``program_a`` is the annotation-free binary with
    ``DVIConfig.none()`` and ``program_b`` the E-DVI-rewritten binary with
    ``DVIConfig.full()``.  Stack memory below ``data_limit`` is excluded:
    eliminated saves legitimately leave stale garbage in dead stack slots.
    """
    result_a = run_program(program_a, dvi_a, max_steps=max_steps, collect_trace=False)
    result_b = run_program(program_b, dvi_b, max_steps=max_steps, collect_trace=False)
    exit_values = (result_a.stats.exit_value, result_b.stats.exit_value)

    # Jump-table words hold code addresses, which legitimately differ
    # between an original binary and its rewritten twin.
    relocated = {
        addr >> 2
        for program in (program_a, program_b)
        for addr, _ in program.relocations
    }
    words_a = _data_words(result_a, data_limit)
    words_b = _data_words(result_b, data_limit)
    mismatched = sorted(
        addr
        for addr in (set(words_a) | set(words_b)) - relocated
        if words_a.get(addr, 0) != words_b.get(addr, 0)
    )
    equivalent = (
        exit_values[0] == exit_values[1]
        and not mismatched
        and result_a.stats.completed
        and result_b.stats.completed
    )
    return EquivalenceReport(
        equivalent=equivalent,
        exit_values=exit_values,
        mismatched_words=mismatched,
    )


def _data_words(result: FunctionalResult, limit: int) -> dict:
    return {
        addr: value
        for addr, value in result.memory.items()
        if DATA_BASE <= addr * 4 < limit
    }
