"""Binary rewriting: E-DVI insertion/stripping and DVI verification."""

from repro.rewrite.edvi import (
    CallSiteInfo,
    RewriteReport,
    RewriteResult,
    callee_save_sets,
    insert_edvi,
    strip_edvi,
)

__all__ = [
    "CallSiteInfo",
    "RewriteReport",
    "RewriteResult",
    "callee_save_sets",
    "insert_edvi",
    "strip_edvi",
]

from repro.rewrite.verify import EquivalenceReport, check_equivalence, verify_dvi

__all__ += ["EquivalenceReport", "check_equivalence", "verify_dvi"]
