"""The E-DVI binary rewriter.

Implements the paper's E-DVI insertion strategy (sections 2 and 5.1) as a
binary rewriting pass — the paper explicitly notes that, because liveness is
computed over physical (architectural) registers, "EDVI instructions can be
added to an executable using a simple binary rewriting tool" with neither
compiler nor source code.

Policy (the paper's, exactly): insert at most one ``kill`` instruction,
carrying a kill mask, immediately before each procedure call.  A
callee-saved register goes into the mask only if

1. it is *dead at the call site* — not live-out of the call under the
   caller's intra-procedural liveness (with the calling-convention boundary
   conditions of :mod:`repro.analysis.liveness`), and
2. it is *saved by the callee* — its save/restore pair is the one the LVM
   hardware could eliminate (the paper's "assigned to in the procedure"
   condition; for ABI-compliant code the two coincide).

For indirect calls (``jalr``) the callee is unknown, so condition 2 uses
the union of all procedures' save sets; condition 1 alone already
guarantees correctness (killing a dead register is always safe), condition
2 only throttles overhead.

Branches that targeted a call are redirected to the inserted ``kill`` so
every dynamic path through the call sees the annotation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cfg import build_cfg, procedures_of
from repro.analysis.liveness import analyze_procedure
from repro.isa.abi import ABI, DEFAULT_ABI
from repro.isa.instruction import Instruction, kill as kill_inst
from repro.program.program import ProcedureDecl, Program


@dataclass
class CallSiteInfo:
    """What the rewriter decided at one call site (old index space)."""

    index: int
    caller: str
    callee: Optional[str]
    dead_mask: int
    inserted: bool


@dataclass
class RewriteReport:
    """Summary of an E-DVI insertion pass."""

    call_sites: List[CallSiteInfo] = field(default_factory=list)
    kills_inserted: int = 0
    original_insts: int = 0
    rewritten_insts: int = 0

    @property
    def code_growth(self) -> float:
        """Fractional static code size growth (the Figure 13 metric)."""
        if not self.original_insts:
            return 0.0
        return (self.rewritten_insts - self.original_insts) / self.original_insts

    def summary(self) -> str:
        return (
            f"{self.kills_inserted} kill(s) at {len(self.call_sites)} call "
            f"site(s); code size {self.original_insts} -> "
            f"{self.rewritten_insts} insts (+{self.code_growth:.2%})"
        )


@dataclass
class RewriteResult:
    """The rewritten program plus the decision report and index map."""

    program: Program
    report: RewriteReport
    #: Old instruction index -> new instruction index.
    index_map: Dict[int, int]


def callee_save_sets(program: Program) -> Dict[str, int]:
    """Mask of callee-saved registers each procedure saves (live-stores)."""
    save_sets: Dict[str, int] = {}
    for proc in procedures_of(program):
        mask = 0
        for index in range(proc.start, proc.end):
            inst = program.insts[index]
            if inst.is_save:
                mask |= 1 << inst.rs2
        save_sets[proc.name] = mask
    return save_sets


def insert_edvi(program: Program, *, abi: ABI = DEFAULT_ABI) -> RewriteResult:
    """Insert E-DVI kill instructions before calls; returns a new program."""
    program.require_linked()
    procs = procedures_of(program)
    save_sets = callee_save_sets(program)
    all_saves = 0
    for mask in save_sets.values():
        all_saves |= mask
    proc_by_start = {proc.start: proc for proc in procs}

    report = RewriteReport(original_insts=len(program.insts))
    insertions: Dict[int, Instruction] = {}
    killable = abi.killable_mask()

    for proc in procs:
        cfg = build_cfg(program, proc)
        liveness = analyze_procedure(program, cfg, abi=abi)
        for index in range(proc.start, proc.end):
            inst = program.insts[index]
            if not inst.is_call:
                continue
            callee = None
            if isinstance(inst.target, int):
                callee = proc_by_start.get(inst.target)
            if callee is not None:
                candidate = save_sets.get(callee.name, 0)
            else:
                candidate = all_saves
            dead = liveness.dead_after(index, abi.callee_saved) & candidate & killable
            already_annotated = (
                index > proc.start and program.insts[index - 1].is_kill
            )
            inserted = bool(dead) and not already_annotated
            report.call_sites.append(
                CallSiteInfo(
                    index=index,
                    caller=proc.name,
                    callee=callee.name if callee else None,
                    dead_mask=dead,
                    inserted=inserted,
                )
            )
            if inserted:
                insertions[index] = kill_inst(dead)
                report.kills_inserted += 1

    rewritten, index_map = _apply_insertions(program, insertions)
    report.rewritten_insts = len(rewritten.insts)
    return RewriteResult(program=rewritten, report=report, index_map=index_map)


def strip_edvi(program: Program) -> Program:
    """Remove every ``kill`` instruction (the inverse rewriting pass).

    Useful for constructing matched binary pairs for the Figure 13 overhead
    experiment.
    """
    program.require_linked()
    removed = [i for i, inst in enumerate(program.insts) if inst.is_kill]
    if not removed:
        return program.with_insts(
            program.insts, program.labels, program.procedures, linked=True
        )

    def remap(old: int) -> int:
        return old - bisect.bisect_right(removed, old - 1)

    new_insts: List[Instruction] = []
    for index, inst in enumerate(program.insts):
        if inst.is_kill:
            continue
        if isinstance(inst.target, int):
            inst = inst.with_target(remap(inst.target))
        new_insts.append(inst)
    labels = {name: remap(where) for name, where in program.labels.items()}
    procs = [
        ProcedureDecl(p.name, remap(p.start), remap(p.end))
        for p in program.procedures
    ]
    result = program.with_insts(new_insts, labels, procs, linked=True)
    result.validate()
    return result


def _apply_insertions(
    program: Program, insertions: Dict[int, Instruction]
) -> Tuple[Program, Dict[int, int]]:
    """Insert instructions before the given old indices, remapping targets.

    A target that pointed at an instruction with an insertion is redirected
    to the inserted instruction, so the annotation dominates the call on
    every path.
    """
    points = sorted(insertions)

    def remap_target(old: int) -> int:
        """New target: lands on the inserted kill when one exists."""
        return old + bisect.bisect_left(points, old)

    new_insts: List[Instruction] = []
    index_map: Dict[int, int] = {}
    for index, inst in enumerate(program.insts):
        if index in insertions:
            new_insts.append(insertions[index])
        if isinstance(inst.target, int):
            inst = inst.with_target(remap_target(inst.target))
        index_map[index] = len(new_insts)
        new_insts.append(inst)

    labels = {name: remap_target(where) for name, where in program.labels.items()}
    procs = [
        ProcedureDecl(p.name, remap_target(p.start), remap_target(p.end))
        for p in program.procedures
    ]
    result = program.with_insts(new_insts, labels, procs, linked=True)
    result.validate()
    return result, index_map
