"""Control-flow graph construction over linked programs.

The binary rewriter needs intra-procedural CFGs: one graph per procedure,
whose nodes are basic blocks of instruction indices.  Procedure extents come
from the program's declarations when present (the builder records them) or
from a simple discovery pass (entry + direct call targets) otherwise —
matching the paper's premise that E-DVI insertion needs only "a simple
binary rewriting tool", not compiler metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.isa.instruction import Instruction
from repro.program.program import ProcedureDecl, Program, ProgramError


class CFGError(ProgramError):
    """The program's control flow cannot be analyzed."""


@dataclass
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``start`` / ``end`` delimit a half-open index range into the program's
    instruction list.  ``succs`` and ``preds`` hold block ids within the
    owning :class:`ProcedureCFG`.  A block whose last instruction leaves the
    procedure (return or halt) has ``exits=True`` and no successors.
    """

    bid: int
    start: int
    end: int
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    exits: bool = False

    def indices(self) -> range:
        return range(self.start, self.end)

    def __len__(self) -> int:
        return self.end - self.start


@dataclass
class ProcedureCFG:
    """The CFG of one procedure."""

    proc: ProcedureDecl
    blocks: List[BasicBlock]
    #: Instruction index -> owning block id.
    block_of: Dict[int, int]
    entry_bid: int

    @property
    def name(self) -> str:
        return self.proc.name

    def block_at(self, index: int) -> BasicBlock:
        return self.blocks[self.block_of[index]]


def discover_procedures(program: Program) -> List[ProcedureDecl]:
    """Infer procedure extents when the program declares none.

    Starts are the entry label plus every direct call target; each
    procedure extends to the next start (or the end of the program).  This
    is the classic binary-analysis approximation and is exact for programs
    laid out procedure-by-procedure, which all builder output is.
    """
    program.require_linked()
    starts = {program.entry_index}
    for inst in program.insts:
        if inst.is_call and isinstance(inst.target, int):
            starts.add(inst.target)
    ordered = sorted(starts)
    procs: List[ProcedureDecl] = []
    for position, start in enumerate(ordered):
        end = ordered[position + 1] if position + 1 < len(ordered) else len(program)
        name = program.label_at(start) or f"proc_{start}"
        procs.append(ProcedureDecl(name, start, end))
    return procs


def procedures_of(program: Program) -> List[ProcedureDecl]:
    """The program's procedures: declarations merged with discovery.

    Declared names win at their start indices, but discovery still
    contributes starts (the entry point and call targets) that no
    declaration covers — a program whose ``main`` is plain labelled code
    calling ``.proc``-declared helpers is analyzed in full.
    """
    program.require_linked()
    declared = {proc.start: proc.name for proc in program.procedures}
    starts = set(declared) | {program.entry_index}
    for inst in program.insts:
        if inst.is_call and isinstance(inst.target, int):
            starts.add(inst.target)
    ordered = sorted(starts)
    procs: List[ProcedureDecl] = []
    for position, start in enumerate(ordered):
        end = ordered[position + 1] if position + 1 < len(ordered) else len(program)
        name = declared.get(start) or program.label_at(start) or f"proc_{start}"
        procs.append(ProcedureDecl(name, start, end))
    return procs


def build_cfg(program: Program, proc: ProcedureDecl) -> ProcedureCFG:
    """Build the intra-procedural CFG for ``proc``."""
    program.require_linked()
    insts = program.insts
    if proc.start >= proc.end:
        raise CFGError(f"procedure {proc.name!r} is empty")

    leaders = _find_leaders(insts, proc)
    blocks = _make_blocks(leaders, proc)
    block_of: Dict[int, int] = {}
    for block in blocks:
        for index in block.indices():
            block_of[index] = block.bid
    _add_edges(insts, proc, blocks, block_of)
    return ProcedureCFG(proc=proc, blocks=blocks, block_of=block_of, entry_bid=0)


def build_all_cfgs(program: Program) -> Dict[str, ProcedureCFG]:
    """CFGs for every procedure in the program, keyed by name."""
    return {proc.name: build_cfg(program, proc) for proc in procedures_of(program)}


def _find_leaders(insts: Sequence[Instruction], proc: ProcedureDecl) -> List[int]:
    leaders = {proc.start}
    for index in range(proc.start, proc.end):
        inst = insts[index]
        if not inst.is_control:
            continue
        if index + 1 < proc.end:
            leaders.add(index + 1)
        target = _intra_target(inst, proc)
        if target is not None:
            leaders.add(target)
    return sorted(leaders)


def _intra_target(inst: Instruction, proc: ProcedureDecl) -> Optional[int]:
    """The instruction's static target if it stays inside the procedure."""
    if inst.is_call or inst.is_return:
        return None
    if not inst.is_control:
        return None
    if inst.is_indirect:
        raise CFGError(
            f"indirect jump ({inst.op.name}) through "
            f"non-ra register inside {proc.name!r} is not analyzable"
        )
    target = inst.target
    if not isinstance(target, int):
        raise CFGError(f"unlinked target {target!r} in {proc.name!r}")
    if target not in proc:
        raise CFGError(
            f"branch from {proc.name!r} to instruction {target} "
            f"outside the procedure"
        )
    return target


def _make_blocks(leaders: List[int], proc: ProcedureDecl) -> List[BasicBlock]:
    blocks: List[BasicBlock] = []
    for position, start in enumerate(leaders):
        end = leaders[position + 1] if position + 1 < len(leaders) else proc.end
        blocks.append(BasicBlock(bid=position, start=start, end=end))
    return blocks


def _add_edges(
    insts: Sequence[Instruction],
    proc: ProcedureDecl,
    blocks: List[BasicBlock],
    block_of: Dict[int, int],
) -> None:
    for block in blocks:
        last = insts[block.end - 1]
        if last.is_return or last.is_halt:
            block.exits = True
            continue
        if last.is_control and not last.is_call:
            target = _intra_target(last, proc)
            if target is not None:
                _link(blocks, block.bid, block_of[target])
        if last.falls_through or last.is_call:
            if block.end >= proc.end:
                # Control runs off the end of the procedure; treat it as an
                # exit (the workloads always end procedures with returns or
                # halts, but assembled test fragments may not).
                block.exits = True
            else:
                _link(blocks, block.bid, block_of[block.end])


def _link(blocks: List[BasicBlock], src: int, dst: int) -> None:
    if dst not in blocks[src].succs:
        blocks[src].succs.append(dst)
        blocks[dst].preds.append(src)
