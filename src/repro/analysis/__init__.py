"""Static analyses: CFG construction, dataflow engine, liveness."""

from repro.analysis.cfg import (
    BasicBlock,
    CFGError,
    ProcedureCFG,
    build_all_cfgs,
    build_cfg,
    discover_procedures,
    procedures_of,
)
from repro.analysis.dataflow import DataflowResult, solve_backward, solve_forward
from repro.analysis.liveness import (
    LivenessResult,
    analyze_procedure,
    analyze_program,
    instruction_uses_defs,
)

__all__ = [
    "BasicBlock",
    "CFGError",
    "DataflowResult",
    "LivenessResult",
    "ProcedureCFG",
    "analyze_procedure",
    "analyze_program",
    "build_all_cfgs",
    "build_cfg",
    "discover_procedures",
    "instruction_uses_defs",
    "procedures_of",
    "solve_backward",
    "solve_forward",
]
