"""Intra-procedural register liveness — the compiler analysis behind DVI.

This is the "static, intra-procedural liveness analysis performed in
standard compilers" the paper relies on (section 2).  It is a backward
bit-vector dataflow over the procedure CFG with calling-convention-aware
transfer functions:

* a ``call`` clobbers the caller-saved registers (the callee may overwrite
  them) and conservatively reads the argument registers, the stack pointer
  and the global pointer;
* a ``return`` reads the ABI's ``live_at_return`` set — crucially including
  every *callee-saved* register, so a callee-saved register is only ever
  dead inside a procedure that will overwrite it (via an epilogue restore or
  a plain assignment) before returning.  This boundary condition is what
  makes E-DVI insertion sound for callers that never touch a register their
  own caller holds live;
* an E-DVI ``kill`` acts as a definition (it ends the value's lifetime).

The result maps every instruction index to its live-out register mask.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.cfg import BasicBlock, ProcedureCFG, build_cfg, procedures_of
from repro.analysis.dataflow import solve_backward
from repro.isa import registers as regs
from repro.isa.abi import ABI, DEFAULT_ABI
from repro.isa.instruction import Instruction
from repro.program.program import Program


@dataclass(frozen=True)
class LivenessResult:
    """Per-instruction liveness facts for one procedure."""

    cfg: ProcedureCFG
    #: Instruction index -> mask of registers live *after* the instruction.
    live_out: Dict[int, int]
    #: Instruction index -> mask of registers live *before* the instruction.
    live_in: Dict[int, int]

    def dead_after(self, index: int, candidates: int) -> int:
        """Subset of ``candidates`` whose values are dead after ``index``."""
        return candidates & ~self.live_out[index]


def instruction_uses_defs(inst: Instruction, abi: ABI) -> Tuple[int, int]:
    """The (use, def) register masks of ``inst`` under the calling convention.

    This augments the instruction's syntactic register fields with the
    convention's interprocedural effects, and treats ``kill`` masks as
    definitions.
    """
    uses = inst.use_mask()
    defs = inst.def_mask()
    if inst.is_call:
        uses |= abi.argument_regs | (1 << abi.sp) | (1 << regs.GP)
        defs |= abi.caller_saved
    elif inst.is_return:
        uses |= abi.live_at_return()
    if inst.is_kill:
        defs |= inst.kill_mask
    return uses, defs


def analyze_procedure(
    program: Program, cfg: ProcedureCFG, *, abi: ABI = DEFAULT_ABI
) -> LivenessResult:
    """Solve liveness for one procedure and expand to per-instruction facts."""
    insts = program.insts
    use_def: Dict[int, Tuple[int, int]] = {
        index: instruction_uses_defs(insts[index], abi)
        for block in cfg.blocks
        for index in block.indices()
    }

    def transfer(block: BasicBlock, live: int) -> int:
        for index in reversed(range(block.start, block.end)):
            uses, defs = use_def[index]
            live = (live & ~defs) | uses
        return live

    def exit_fact(block: BasicBlock) -> int:
        # Returns inject live_at_return through their use sets, and a halt
        # ends the program with nothing live.  Only control that falls off
        # the end of the procedure's extent needs a conservative boundary.
        last = insts[block.end - 1]
        if last.is_halt or last.is_return:
            return 0
        return (1 << regs.NUM_REGS) - 2  # everything but r0

    solution = solve_backward(cfg, transfer, exit_fact=exit_fact)

    live_out: Dict[int, int] = {}
    live_in: Dict[int, int] = {}
    for block in cfg.blocks:
        live = solution.out_facts[block.bid]
        for index in reversed(range(block.start, block.end)):
            live_out[index] = live
            uses, defs = use_def[index]
            live = (live & ~defs) | uses
            live_in[index] = live
    return LivenessResult(cfg=cfg, live_out=live_out, live_in=live_in)


def analyze_program(
    program: Program, *, abi: ABI = DEFAULT_ABI
) -> Dict[str, LivenessResult]:
    """Liveness for every procedure, keyed by procedure name."""
    results: Dict[str, LivenessResult] = {}
    for proc in procedures_of(program):
        cfg = build_cfg(program, proc)
        results[proc.name] = analyze_procedure(program, cfg, abi=abi)
    return results
