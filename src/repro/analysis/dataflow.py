"""A small generic iterative dataflow engine over procedure CFGs.

The engine solves backward or forward bit-vector problems to a fixpoint
using a worklist.  Facts are Python ints used as bit masks, which keeps the
transfer functions allocation-free; the liveness analysis
(:mod:`repro.analysis.liveness`) is the only client the reproduction needs,
but the engine is written generically so ablation analyses (e.g. reaching
definitions for the verifier's static mode) can reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Union

from repro.analysis.cfg import BasicBlock, ProcedureCFG

#: A transfer function mapping the fact at one block boundary across the
#: block to the other boundary.
BlockTransfer = Callable[[BasicBlock, int], int]

#: Boundary fact at procedure exits: a constant, or per-block function
#: (liveness uses the latter: ``halt`` exits differ from fall-off exits).
ExitFact = Union[int, Callable[[BasicBlock], int]]


@dataclass
class DataflowResult:
    """Fixpoint facts at both boundaries of every block.

    For a backward problem ``out_facts[b]`` is the fact at the block's end
    (after its last instruction) and ``in_facts[b]`` at its start; for a
    forward problem the roles are the usual duals.
    """

    in_facts: Dict[int, int]
    out_facts: Dict[int, int]


def solve_backward(
    cfg: ProcedureCFG,
    transfer: BlockTransfer,
    *,
    exit_fact: ExitFact = 0,
    init: int = 0,
) -> DataflowResult:
    """Solve a backward may-problem (join = union) to fixpoint.

    ``exit_fact`` is the boundary fact at procedure exits (e.g. the
    registers live at return), either a constant mask or a per-exit-block
    function.  ``init`` seeds every block's facts.
    """
    in_facts = {block.bid: init for block in cfg.blocks}
    out_facts = {block.bid: init for block in cfg.blocks}
    worklist: List[int] = [block.bid for block in cfg.blocks]
    pending = set(worklist)
    while worklist:
        bid = worklist.pop()
        pending.discard(bid)
        block = cfg.blocks[bid]
        if block.exits:
            out_fact = exit_fact(block) if callable(exit_fact) else exit_fact
        else:
            out_fact = 0
        for succ in block.succs:
            out_fact |= in_facts[succ]
        out_facts[bid] = out_fact
        new_in = transfer(block, out_fact)
        if new_in != in_facts[bid]:
            in_facts[bid] = new_in
            for pred in block.preds:
                if pred not in pending:
                    pending.add(pred)
                    worklist.append(pred)
    return DataflowResult(in_facts=in_facts, out_facts=out_facts)


def solve_forward(
    cfg: ProcedureCFG,
    transfer: BlockTransfer,
    *,
    entry_fact: int = 0,
    init: int = 0,
) -> DataflowResult:
    """Solve a forward may-problem (join = union) to fixpoint."""
    in_facts = {block.bid: init for block in cfg.blocks}
    out_facts = {block.bid: init for block in cfg.blocks}
    worklist: List[int] = [block.bid for block in cfg.blocks]
    pending = set(worklist)
    while worklist:
        bid = worklist.pop()
        pending.discard(bid)
        block = cfg.blocks[bid]
        in_fact = entry_fact if bid == cfg.entry_bid else 0
        for pred in block.preds:
            in_fact |= out_facts[pred]
        in_facts[bid] = in_fact
        new_out = transfer(block, in_fact)
        if new_out != out_facts[bid]:
            out_facts[bid] = new_out
            for succ in block.succs:
                if succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)
    return DataflowResult(in_facts=in_facts, out_facts=out_facts)
