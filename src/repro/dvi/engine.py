"""The DVI engine: LVM + LVM-Stack driven in program order.

This models the decode-stage behaviour of sections 4.1, 5.2 and 6.1 as one
object the functional emulator (and the thread scheduler) steps through the
dynamic instruction stream:

* definitions set LVM bits;
* ``kill`` instructions (when E-DVI is enabled) clear LVM bits and report
  which physical mappings may be reclaimed;
* calls and returns push/pop the LVM-Stack and apply the I-DVI masks;
* ``live_sw``/``live_lw`` consult the LVM / LVM-Stack to decide
  elimination.

Because the trace-driven timing model replays committed instructions in
program order, driving the engine at trace generation time is equivalent to
the paper's decode-stage update with checkpoint recovery on misprediction
(section 7): no wrong-path update ever happens here by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dvi.config import DVIConfig, SRScheme
from repro.dvi.lvm import ALL_LIVE, LiveValueMask
from repro.dvi.lvm_stack import LVMStack


@dataclass
class DVICounters:
    """Dynamic event counts maintained by the engine."""

    kills_seen: int = 0
    saves_seen: int = 0
    restores_seen: int = 0
    saves_eliminated: int = 0
    restores_eliminated: int = 0
    calls: int = 0
    returns: int = 0

    @property
    def saves_restores_seen(self) -> int:
        return self.saves_seen + self.restores_seen

    @property
    def saves_restores_eliminated(self) -> int:
        return self.saves_eliminated + self.restores_eliminated


class DVIEngine:
    """Program-order DVI tracking for one hardware context."""

    def __init__(self, config: DVIConfig) -> None:
        self.config = config
        self.lvm = LiveValueMask()
        self.stack = LVMStack(config.lvm_stack_depth)
        self.counters = DVICounters()
        self._track = config.any_dvi or config.scheme is not SRScheme.NONE

    # ------------------------------------------------------------------
    # Program-order events.  Each returns the mask of registers whose
    # values became dead (and whose physical mappings may be freed), where
    # meaningful.
    # ------------------------------------------------------------------

    def on_def(self, reg: int) -> None:
        """A destination register was renamed at decode."""
        if reg:
            self.lvm.set_live(reg)

    def on_kill(self, kill_mask: int) -> int:
        """An E-DVI ``kill``; returns the newly-dead (reclaimable) mask."""
        self.counters.kills_seen += 1
        if not self.config.use_edvi:
            return 0
        return self.lvm.kill(kill_mask)

    def on_call(self) -> int:
        """A procedure call: snapshot push, then I-DVI.

        Returns the reclaimable mask from I-DVI (empty when disabled).
        """
        self.counters.calls += 1
        if self.config.scheme is SRScheme.LVM_STACK:
            self.stack.push(self.lvm.mask)
        if not self.config.use_idvi:
            return 0
        return self.lvm.kill(self.config.abi.idvi_call_mask())

    def on_return(self) -> int:
        """A procedure return: snapshot pop/copy-back, then I-DVI.

        The copy-back (Figure 8, step 4) is masked to the callee-saved set:
        that is the state the LVM-Stack exists to preserve (the callee's
        epilogue restores re-established the caller's callee-saved values,
        so their liveness reverts to its procedure-entry snapshot).
        Caller-saved bits keep their current state — a freshly-written
        return value in ``v0`` must not be marked dead by a stale
        call-time snapshot.
        """
        self.counters.returns += 1
        if self.config.scheme is SRScheme.LVM_STACK:
            callee = self.config.abi.callee_saved
            snapshot = self.stack.pop()
            self.lvm.load(
                (self.lvm.mask & ~callee) | (snapshot & callee)
            )
        if not self.config.use_idvi:
            return 0
        return self.lvm.kill(self.config.abi.idvi_return_mask())

    def on_save(self, reg: int) -> bool:
        """A ``live_sw`` of ``reg`` was decoded; True if eliminated."""
        self.counters.saves_seen += 1
        if self.config.scheme is SRScheme.NONE:
            return False
        eliminated = not self.lvm.is_live(reg)
        if eliminated:
            self.counters.saves_eliminated += 1
        return eliminated

    def on_restore(self, reg: int) -> bool:
        """A ``live_lw`` of ``reg`` was decoded; True if eliminated.

        Only the LVM-Stack scheme eliminates restores, and it does so from
        the procedure-entry snapshot at the top of the stack — the same
        bits that eliminated the matching save.
        """
        self.counters.restores_seen += 1
        if self.config.scheme is not SRScheme.LVM_STACK:
            return False
        eliminated = not (self.stack.top() & (1 << reg))
        if eliminated:
            self.counters.restores_eliminated += 1
        return eliminated

    # ------------------------------------------------------------------
    # Context-switch support (section 6.1) and inspection.
    # ------------------------------------------------------------------

    def save_lvm(self) -> int:
        """``lvm_save``: the mask to store in the context block."""
        return self.lvm.mask

    def load_lvm(self, mask: int) -> None:
        """``lvm_load``: restore a context's mask before its restores run."""
        self.lvm.load(mask)

    def flush(self) -> None:
        """Safe reset for exceptions/non-standard control flow (section 7)."""
        self.lvm.reset()
        self.stack.flush()

    def live_count(self, within: int = ALL_LIVE) -> int:
        """Live registers within a subset (the Figure 12 histogram input)."""
        return self.lvm.live_count(within)
