"""DVI hardware models: LVM, LVM-Stack, and the combined engine."""

from repro.dvi.config import DVIConfig, SRScheme
from repro.dvi.engine import DVICounters, DVIEngine
from repro.dvi.lvm import ALL_LIVE, LiveValueMask
from repro.dvi.lvm_stack import DEFAULT_DEPTH, LVMStack

__all__ = [
    "ALL_LIVE",
    "DEFAULT_DEPTH",
    "DVIConfig",
    "DVICounters",
    "DVIEngine",
    "LVMStack",
    "LiveValueMask",
    "SRScheme",
]
