"""The Live Value Mask (LVM) — section 4.1's hardware structure.

One state bit per architectural register: set while the register's value is
live, clear once DVI (explicit or implicit) declares it dead.  The mask is
updated at decode by destination renaming (any definition sets the bit) and
by DVI-providing instructions (kills clear bits).

The mask is stored as a single Python int, bit *i* for register ``r<i>``;
``r0`` is hardwired and always reported live (its "value" — zero — is
always available and never needs saving; callers mask it out with
``saveable`` masks where appropriate).
"""

from __future__ import annotations

from repro.isa import registers as regs

#: All registers live (the reset state -- safe for any program point).
ALL_LIVE = (1 << regs.NUM_REGS) - 1


class LiveValueMask:
    """Mutable LVM with liveness set/clear/query operations."""

    __slots__ = ("_mask",)

    def __init__(self, mask: int = ALL_LIVE) -> None:
        self._mask = mask & ALL_LIVE

    @property
    def mask(self) -> int:
        """The current liveness bit mask."""
        return self._mask

    def is_live(self, reg: int) -> bool:
        if not 0 <= reg < regs.NUM_REGS:
            raise ValueError(f"register out of range: {reg}")
        return bool(self._mask & (1 << reg))

    def set_live(self, reg: int) -> None:
        """Mark one register live (a definition renamed at decode)."""
        self._mask |= 1 << reg

    def kill(self, kill_mask: int) -> int:
        """Clear the bits in ``kill_mask``; returns the bits actually cleared.

        The return value is the subset that was live — the registers whose
        physical mappings the renamer may now reclaim.
        """
        cleared = self._mask & kill_mask
        self._mask &= ~kill_mask
        return cleared

    def load(self, mask: int) -> None:
        """Overwrite the whole mask (LVM-Stack pop copy-back, ``lvm_load``)."""
        self._mask = mask & ALL_LIVE

    def reset(self) -> None:
        """Flush to the safe state: everything live (section 7's strategy
        for exceptions and non-standard control flow)."""
        self._mask = ALL_LIVE

    def live_count(self, within: int = ALL_LIVE) -> int:
        """Number of live registers within the ``within`` subset."""
        return bin(self._mask & within).count("1")

    def __repr__(self) -> str:  # pragma: no cover
        return f"LiveValueMask({regs.format_mask(self._mask)})"
