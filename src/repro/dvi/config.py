"""DVI configuration: which information sources and schemes are active."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Optional

from repro.dvi.lvm_stack import DEFAULT_DEPTH
from repro.isa.abi import ABI, DEFAULT_ABI


class SRScheme(Enum):
    """Save/restore elimination scheme (section 5.2)."""

    #: No elimination; live-stores/loads behave as plain stores/loads.
    NONE = auto()
    #: LVM scheme: eliminate dead *saves* only.
    LVM = auto()
    #: LVM-Stack scheme: eliminate dead saves *and* their matching restores.
    LVM_STACK = auto()


@dataclass(frozen=True)
class DVIConfig:
    """Which DVI sources the processor exploits, and how.

    The three curves of Figure 5 correspond to :meth:`none` (run the
    annotation-free binary, infer nothing), :meth:`idvi_only` (infer from
    calls/returns only), and :meth:`full` (also honor ``kill``
    instructions in an E-DVI-annotated binary).
    """

    #: Infer I-DVI from call/return instructions via the ABI masks.
    use_idvi: bool = True
    #: Honor explicit ``kill`` instructions (E-DVI).
    use_edvi: bool = True
    #: Save/restore elimination scheme.
    scheme: SRScheme = SRScheme.LVM_STACK
    #: LVM-Stack capacity; ``None`` = unbounded (for the capacity ablation).
    lvm_stack_depth: Optional[int] = DEFAULT_DEPTH
    #: The calling convention supplying the I-DVI masks.
    abi: ABI = field(default_factory=lambda: DEFAULT_ABI)

    @classmethod
    def none(cls) -> "DVIConfig":
        """The no-DVI baseline."""
        return cls(use_idvi=False, use_edvi=False, scheme=SRScheme.NONE)

    @classmethod
    def idvi_only(cls) -> "DVIConfig":
        """I-DVI only: free caller-saved registers at calls/returns.

        Save/restore elimination targets callee-saved registers, about
        which I-DVI says nothing, so no elimination scheme is active.
        """
        return cls(use_idvi=True, use_edvi=False, scheme=SRScheme.NONE)

    @classmethod
    def full(cls, scheme: SRScheme = SRScheme.LVM_STACK) -> "DVIConfig":
        """E-DVI + I-DVI, with the given elimination scheme."""
        return cls(use_idvi=True, use_edvi=True, scheme=scheme)

    @classmethod
    def edvi_overhead(cls) -> "DVIConfig":
        """Annotations present but *unexploited* (the Figure 13 setup)."""
        return cls(use_idvi=False, use_edvi=False, scheme=SRScheme.NONE)

    @property
    def any_dvi(self) -> bool:
        return self.use_idvi or self.use_edvi

    def label(self) -> str:
        """Figure-legend style name."""
        if self.use_edvi and self.use_idvi:
            return "E-DVI and I-DVI"
        if self.use_idvi:
            return "I-DVI"
        if self.use_edvi:
            return "E-DVI"
        return "No DVI"
