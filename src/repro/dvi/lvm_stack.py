"""The LVM-Stack — section 5.2's snapshot buffer for restore elimination.

Restores must be eliminated using exactly the liveness bits that eliminated
the matching saves at procedure entry; the continuously-updated LVM cannot
serve (Figure 8(b)), so a call pushes an LVM snapshot and a return pops it.

As in the paper's simulations, the stack is a small *circular buffer* that
wraps around on overflow (the oldest snapshot is silently lost) and reports
nothing on underflow, in which case the consumer must assume all registers
live.  Both degradations are *safe*: a lost or missing snapshot can only
prevent elimination, never cause a live value's restore to be skipped,
because :meth:`top` answers "all live" whenever it has no real snapshot.
The paper simulates a 16-entry buffer and reports that it captures nearly
100% of an unbounded structure's benefit (94% on li).
"""

from __future__ import annotations

from typing import List, Optional

from repro.dvi.lvm import ALL_LIVE

#: The paper's simulated LVM-Stack capacity.
DEFAULT_DEPTH = 16


class LVMStack:
    """Bounded circular stack of LVM snapshots.

    A ``depth`` of ``None`` gives an unbounded stack (the paper's reference
    point for the capacity study).
    """

    def __init__(self, depth: Optional[int] = DEFAULT_DEPTH) -> None:
        if depth is not None and depth < 1:
            raise ValueError(f"LVM-Stack depth must be >= 1, got {depth}")
        self._depth = depth
        self._entries: List[int] = []
        #: Pushes whose snapshots were discarded by wrap-around and are
        #: still conceptually below the buffered ones.
        self._lost_below = 0
        # Statistics for the capacity ablation.
        self.pushes = 0
        self.pops = 0
        self.overflows = 0
        self.underflows = 0

    @property
    def depth(self) -> Optional[int]:
        return self._depth

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, mask: int) -> None:
        """Push an LVM snapshot (at a procedure call)."""
        self.pushes += 1
        self._entries.append(mask & ALL_LIVE)
        if self._depth is not None and len(self._entries) > self._depth:
            del self._entries[0]
            self._lost_below += 1
            self.overflows += 1

    def top(self) -> int:
        """The snapshot governing the current procedure's restores.

        Returns :data:`~repro.dvi.lvm.ALL_LIVE` when no snapshot is
        available (empty or wrapped away), which disables elimination.
        """
        if not self._entries:
            return ALL_LIVE
        return self._entries[-1]

    def pop(self) -> int:
        """Pop at a return; the result is copied back into the LVM.

        On underflow the safe all-live mask is returned ("assumes an empty
        stack on underflow").
        """
        self.pops += 1
        if self._entries:
            return self._entries.pop()
        if self._lost_below:
            # Returning into a frame whose snapshot wrapped away.
            self._lost_below -= 1
        self.underflows += 1
        return ALL_LIVE

    def flush(self) -> None:
        """Discard everything (exceptions / non-standard control flow)."""
        self._entries.clear()
        self._lost_below = 0
