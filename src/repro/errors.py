"""Shared exception types."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """The guest program performed an illegal operation (bad PC, unaligned
    access, step-budget exhaustion where completion was required, ...)."""


class DVIViolationError(SimulationError):
    """A register asserted dead by DVI was read before being overwritten.

    Section 7: "Incorrect E-DVI will almost certainly lead to incorrect
    execution; the compiler is held responsible to provide only correct
    E-DVI.  Errors in E-DVI should be considered compiler errors."  The
    verifying emulator turns that contract into a checked runtime error.
    """

    def __init__(self, pc: int, reg: int, message: str = "") -> None:
        detail = f"register r{reg} read at pc={pc} while asserted dead"
        if message:
            detail += f" ({message})"
        super().__init__(detail)
        self.pc = pc
        self.reg = reg
