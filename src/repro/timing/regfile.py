"""Analytical multiported register-file access-time model.

The paper computes Figure 6 by dividing the Figure 5 IPC curves by a
register-file cycle time obtained from "a modified version of CACTI" (the
Jouppi/Wilton cache timing model, adapted by Farkas for register files).
CACTI itself is a proprietary-process-calibrated C program; this module
implements the same *structural* model, with coefficients calibrated to
mid-1990s (~0.5-0.8 um) ballpark latencies:

* **decoder** — a tree of fanin-limited gates, one level per address bit:
  ``t_dec * ceil(log2(registers))``.  The discrete level count produces the
  realistic step at power-of-two boundaries (65 registers need a 7-bit
  decoder; 64 need only 6), which is one reason 64 is a natural no-DVI
  design point;
* **wordline and bitline** — distributed RC wires whose length grows
  *linearly with the port count* (each extra port adds a wire pitch to the
  cell in both dimensions), so wire delay grows *quadratically in ports*
  (both R and C grow) and *linearly in registers* (bitline capacitance is
  one diffusion per register row; the driver, not the wire, dominates
  resistance at these sizes).  This reproduces exactly the scaling the
  paper states in section 4: "Access time is quadratic in the number of
  read and write ports and linear in the number of registers";
* **sense amplifier and output drive** — fixed.

A 4-way issue machine requires 8 read and 4 write ports (section 4.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Ports required by a ``w``-wide issue machine: 2 reads + 1 write per slot.
def ports_for_issue_width(width: int) -> tuple:
    """(read_ports, write_ports) for an issue width (paper: 4-way -> 8+4)."""
    if width < 1:
        raise ValueError("issue width must be >= 1")
    return 2 * width, width


@dataclass(frozen=True)
class RegFileTimingModel:
    """Access time (seconds) as a function of size and port count.

    The default coefficients give a 64-register, 8-read/4-write-port file
    an access time of ~2.6 ns (a plausible cycle-limiting structure for a
    ~300-400 MHz mid-90s design) with the register-count-dependent share
    calibrated so shrinking 64 -> 50 registers buys roughly 3% cycle
    time — the regime in which the paper's observed design-point shift
    (64 -> 50 registers) and ~1% overall gain arise.
    """

    #: Fixed sense-amp + output driver delay (s).
    t_fixed: float = 0.90e-9
    #: Decoder delay per address bit (s).
    t_decode_per_bit: float = 0.18e-9
    #: Wordline RC coefficient at one port (s).
    c_wordline: float = 0.12e-9
    #: Bitline RC coefficient per register at one port (s).
    c_bitline_per_reg: float = 2.6e-12
    #: Fractional cell-pitch growth per port (dimensionless).
    port_growth: float = 0.035

    def access_time(
        self,
        registers: int,
        read_ports: int = 8,
        write_ports: int = 4,
    ) -> float:
        """Access time in seconds for a ``registers``-entry file."""
        if registers < 2:
            raise ValueError("register file needs at least 2 registers")
        if read_ports < 1 or write_ports < 0:
            raise ValueError("bad port counts")
        ports = read_ports + write_ports
        address_bits = math.ceil(math.log2(registers))
        wire_growth = (1.0 + self.port_growth * ports) ** 2
        decode = self.t_decode_per_bit * address_bits
        wordline = self.c_wordline * wire_growth
        bitline = self.c_bitline_per_reg * registers * wire_growth
        return self.t_fixed + decode + wordline + bitline

    def cycle_time(
        self,
        registers: int,
        read_ports: int = 8,
        write_ports: int = 4,
    ) -> float:
        """Cycle time under the paper's assumption that the register file
        is the cycle-limiting path ("the system clock rate is proportional
        to the register file cycle time")."""
        return self.access_time(registers, read_ports, write_ports)

    def relative_performance(
        self,
        ipc: float,
        registers: int,
        *,
        baseline_ipc: float,
        baseline_registers: int,
        read_ports: int = 8,
        write_ports: int = 4,
    ) -> float:
        """(IPC / cycle time), normalized to a baseline design point.

        This is the Figure 6 y-axis: performance relative to the no-DVI
        peak.
        """
        this = ipc / self.cycle_time(registers, read_ports, write_ports)
        base = baseline_ipc / self.cycle_time(
            baseline_registers, read_ports, write_ports
        )
        return this / base
