"""Register-file timing model and system-performance composition."""

from repro.timing.regfile import RegFileTimingModel, ports_for_issue_width
from repro.timing.system import DesignPoint, PerformanceCurves, performance_curves

__all__ = [
    "DesignPoint",
    "PerformanceCurves",
    "RegFileTimingModel",
    "performance_curves",
    "ports_for_issue_width",
]
