"""System performance: combine IPC curves with register-file cycle times.

Implements the Figure 6 methodology: for each register file size, overall
performance = IPC / cycle time; curves are reported relative to the peak of
the no-DVI configuration, and each configuration's *design point* is the
size at which its performance peaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.timing.regfile import RegFileTimingModel, ports_for_issue_width


@dataclass(frozen=True)
class DesignPoint:
    """A performance-optimal register file size for one configuration."""

    label: str
    registers: int
    ipc: float
    performance: float  # relative to the reference peak


@dataclass
class PerformanceCurves:
    """Figure 6's contents: relative performance vs. register file size."""

    sizes: List[int]
    #: configuration label -> performance values aligned with ``sizes``.
    curves: Dict[str, List[float]]
    peaks: Dict[str, DesignPoint]
    reference_label: str

    def improvement(self, optimized: str) -> float:
        """Peak-to-peak performance gain of ``optimized`` over the reference."""
        return self.peaks[optimized].performance - 1.0

    def size_reduction(self, optimized: str) -> float:
        """Fractional reduction in the performance-optimal file size."""
        reference = self.peaks[self.reference_label].registers
        return (reference - self.peaks[optimized].registers) / reference


def performance_curves(
    sizes: Sequence[int],
    ipc_curves: Dict[str, Sequence[float]],
    *,
    reference_label: str,
    issue_width: int = 4,
    model: RegFileTimingModel = RegFileTimingModel(),
) -> PerformanceCurves:
    """Divide IPC curves by cycle time and normalize to the reference peak."""
    if reference_label not in ipc_curves:
        raise ValueError(f"reference {reference_label!r} not among curves")
    read_ports, write_ports = ports_for_issue_width(issue_width)
    cycle_times = [
        model.cycle_time(size, read_ports, write_ports) for size in sizes
    ]

    raw: Dict[str, List[float]] = {}
    for label, ipcs in ipc_curves.items():
        if len(ipcs) != len(sizes):
            raise ValueError(
                f"curve {label!r} has {len(ipcs)} points for {len(sizes)} sizes"
            )
        raw[label] = [ipc / t for ipc, t in zip(ipcs, cycle_times)]

    reference_peak = max(raw[reference_label])
    curves = {
        label: [value / reference_peak for value in values]
        for label, values in raw.items()
    }
    peaks: Dict[str, DesignPoint] = {}
    for label, values in curves.items():
        best = max(range(len(sizes)), key=lambda i: values[i])
        peaks[label] = DesignPoint(
            label=label,
            registers=sizes[best],
            ipc=list(ipc_curves[label])[best],
            performance=values[best],
        )
    return PerformanceCurves(
        sizes=list(sizes),
        curves=curves,
        peaks=peaks,
        reference_label=reference_label,
    )
