"""Command-line interface: regenerate the paper's figures.

Usage::

    python -m repro list
    python -m repro fig9                # quick profile
    python -m repro fig5 --profile full
    python -m repro all --profile quick
    python -m repro machine             # print the Figure 2 table
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ablation_lvmstack_depth,
    fig3_characterization,
    fig5_regfile_ipc,
    fig6_performance,
    fig9_eliminated,
    fig10_speedup,
    fig11_sensitivity,
    fig12_context_switch,
    fig13_edvi_overhead,
)
from repro.experiments.runner import ExperimentContext, ExperimentProfile

EXPERIMENTS = {
    "fig3": (fig3_characterization, "benchmark characterization"),
    "fig5": (fig5_regfile_ipc, "IPC vs. register file size"),
    "fig6": (fig6_performance, "performance vs. register file size"),
    "fig9": (fig9_eliminated, "saves/restores eliminated"),
    "fig10": (fig10_speedup, "IPC speedups"),
    "fig11": (fig11_sensitivity, "cache bandwidth sensitivity"),
    "fig12": (fig12_context_switch, "context-switch elimination"),
    "fig13": (fig13_edvi_overhead, "E-DVI overhead"),
    "ablation": (ablation_lvmstack_depth, "LVM-Stack depth ablation"),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Exploiting Dead Value "
                    "Information' (MICRO-30, 1997).",
    )
    parser.add_argument(
        "target",
        help="figure id (%s), 'all', 'list', or 'machine'"
             % ", ".join(EXPERIMENTS),
    )
    parser.add_argument(
        "--profile", choices=("quick", "full"), default="quick",
        help="sweep size: quick (default) or the paper-shaped full sweep",
    )
    args = parser.parse_args(argv)

    if args.target == "list":
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0
    if args.target == "machine":
        print(fig3_characterization.machine_description())
        return 0

    targets = list(EXPERIMENTS) if args.target == "all" else [args.target]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown target(s): {', '.join(unknown)}")

    profile = (
        ExperimentProfile.full() if args.profile == "full"
        else ExperimentProfile.quick()
    )
    context = ExperimentContext(profile)
    for name in targets:
        module, description = EXPERIMENTS[name]
        started = time.time()
        result = module.run(profile, context)
        print(result.format_table())
        print(f"[{name}: {description}; {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
