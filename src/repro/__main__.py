"""Command-line interface: regenerate the paper's figures and run sweeps.

Usage::

    python -m repro list
    python -m repro list --workloads --predictors --hierarchies
    python -m repro fig9                      # quick profile, cached
    python -m repro fig5 --profile full
    python -m repro run-all --jobs 4          # every figure, 4 workers
    python -m repro run-all --json out.json   # machine-readable results
    python -m repro fig10 --no-cache          # force recomputation
    python -m repro machine                   # print the Figure 2 table
    python -m repro sweep --axis predictor --workloads go,li
    python -m repro sweep --axis hierarchy --values micro97,compact
    python -m repro serve --port 8742 --workers 4 --jobs 2   # service
    python -m repro submit --url http://127.0.0.1:8742 --axis regfile
    python -m repro status --url http://127.0.0.1:8742
    python -m repro queue compact --url http://127.0.0.1:8742
    python -m repro queue stats --queue-dir .repro-queue
    python -m repro cache stats
    python -m repro cache gc --max-age 604800 --max-bytes 500000000

Simulation artifacts (binaries, traces, functional results, timing
stats) are cached content-addressed under ``--cache-dir`` (default
``.repro-cache``), keyed by workload, profile scale, DVI and machine
configuration, and source version — a warm re-run replays every figure
from disk without re-simulating anything.  ``--jobs N`` fans the
experiments' independent simulation cells out over N worker processes;
results are merged deterministically, so parallel output is identical
to serial output.

The ``sweep`` subcommand builds an ad-hoc scenario from the component
registries: one timing cell per (workload, value) along any registered
axis (``predictor``, ``hierarchy``, ``regfile``, ``ports``).  Unknown
experiment, profile, workload, or component names exit with status 2
and the list of valid names.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.experiments import EXPERIMENTS, fig3_characterization
from repro.experiments.cache import ArtifactCache
from repro.experiments.export import render_manifest
from repro.experiments.runner import ExperimentContext, ExperimentProfile
from repro.experiments.sweep import (
    SWEEP_AXES,
    adhoc_spec,
    run_sweep,
    sweep_title,
)
from repro.registry import UnknownComponentError
from repro.sim.branch.predictors import PREDICTORS
from repro.sim.cache.hierarchy import HIERARCHIES
from repro.workloads.suite import REGISTRY as WORKLOADS


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    """The execution knobs shared by figure runs and ad-hoc sweeps."""
    parser.add_argument(
        "--profile", choices=ExperimentProfile.names(), default="quick",
        help="sweep size: tiny (tests/smoke), quick (default), or the "
             "paper-shaped full sweep",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the simulation cells (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="on-disk artifact cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk cache (never read or write artifacts)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write every result as deterministic JSON to PATH",
    )


def _check_json_path(parser: argparse.ArgumentParser, path: str) -> None:
    """Catch an unwritable --json path now, not after minutes of simulation
    — without leaving an empty file behind if the run later fails."""
    try:
        probe_existed = os.path.exists(path)
        with open(path, "a", encoding="utf-8"):
            pass
        if not probe_existed:
            os.unlink(path)
    except OSError as error:
        parser.error(f"cannot write --json file: {error}")


def _make_context(args) -> ExperimentContext:
    profile = ExperimentProfile.by_name(args.profile)
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    return ExperimentContext(profile, cache=cache, jobs=args.jobs)


#: Main-parser long options -> whether they consume the following token.
#: Used to locate the target positional anywhere in argv (argparse
#: allows option-first orderings like ``--profile tiny fig9``).
_MAIN_OPTIONS = {
    "--profile": True,
    "--jobs": True,
    "--cache-dir": True,
    "--json": True,
    "--no-cache": False,
}


def _target_of(argv) -> str:
    """The target positional as the main parser would bind it.

    Mirrors argparse's prefix matching so abbreviated options
    (``--prof tiny``) skip their value too.
    """
    skip_next = False
    for token in argv:
        if skip_next:
            skip_next = False
            continue
        if token.startswith("--"):
            name = token.split("=", 1)[0]
            matches = [o for o in _MAIN_OPTIONS if o.startswith(name)]
            if ("=" not in token and matches
                    and all(_MAIN_OPTIONS[o] for o in matches)):
                skip_next = True
            continue
        if token.startswith("-"):
            continue
        return token
    return ""


def _list_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro list",
        description="List experiments or registered components.",
    )
    parser.add_argument(
        "--workloads", action="store_true",
        help="show the registered workloads",
    )
    parser.add_argument(
        "--predictors", action="store_true",
        help="show the registered branch predictors",
    )
    parser.add_argument(
        "--hierarchies", action="store_true",
        help="show the registered cache-hierarchy presets",
    )
    # Listing runs nothing, but the shared run options stay accepted (and
    # ignored) so pre-refactor invocations like ``list --profile tiny``
    # keep working.
    _add_run_options(parser)
    args = parser.parse_args(argv)
    _print_components(args)
    return 0


def _print_components(args) -> None:
    """The ``list`` subcommand body."""
    sections = []
    if args.workloads:
        sections.append(("workloads", [
            (w.name, f"{w.description} (analog: {w.analog})")
            for w in WORKLOADS.all()
        ]))
    if args.predictors:
        sections.append(("predictors", [
            (spec.name, spec.description) for spec in PREDICTORS.all()
        ]))
    if args.hierarchies:
        sections.append(("hierarchies", [
            (spec.name, spec.description) for spec in HIERARCHIES.all()
        ]))
    if not sections:
        sections.append(("experiments", [
            (name, description)
            for name, (_, description) in EXPERIMENTS.items()
        ]))
    for index, (heading, rows) in enumerate(sections):
        if len(sections) > 1:
            if index:
                print()
            print(f"{heading}:")
        width = max(10, *(len(name) for name, _ in rows)) + 1
        for name, description in rows:
            print(f"{name:<{width}s}{description}")


def _sweep_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Run an ad-hoc sweep over a registered component axis.",
    )
    parser.add_argument(
        "--axis", required=True, metavar="AXIS",
        help="swept dimension: %s" % ", ".join(SWEEP_AXES.names()),
    )
    parser.add_argument(
        "--values", metavar="A,B,...",
        help="explicit axis values (default: every registered value / the "
             "profile's sweep)",
    )
    parser.add_argument(
        "--workloads", metavar="W1,W2,...",
        help="comma-separated workload names, bare analog names accepted "
             "(default: the profile's suite)",
    )
    _add_run_options(parser)
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.json:
        _check_json_path(parser, args.json)

    context = _make_context(args)
    profile = context.profile
    try:
        spec = adhoc_spec(
            args.axis,
            profile,
            values=args.values.split(",") if args.values else None,
            workloads=args.workloads.split(",") if args.workloads else None,
        )
    except UnknownComponentError:
        raise
    except ValueError as error:  # e.g. non-integer --values for regfile
        parser.error(f"--values: {error}")
    started = time.time()
    try:
        result = run_sweep(
            spec, profile, context,
            title=sweep_title(args.axis, profile),
        )
    except ValueError as error:  # e.g. a register count below the minimum
        parser.error(str(error))
    print(result.format_table())
    print(f"[{spec.name}; {time.time() - started:.1f}s]")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(render_manifest(profile.name, {spec.name: result}))
    if context.cache is not None:
        print(context.cache.summary(), file=sys.stderr)
        try:
            context.cache.flush_counters()
        except OSError:
            pass  # read-only cache dir: tallies are best-effort
    return 0


def _serve_main(argv) -> int:
    from repro.service.dispatcher import DEFAULT_MAX_BODY_BYTES

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the simulation service (job queue + batching "
                    "dispatcher + HTTP JSON API) in the foreground.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default: 8742, or this shard's own --peers "
             "URL port when --shard is set; 0 picks a free port)",
    )
    parser.add_argument(
        "--shard", metavar="K/N", default=None,
        help="run as shard K of N (0-based): requires --peers listing "
             "all N shard base URLs in index order (this process is "
             "entry K); clients consistent-hash route request "
             "fingerprints over the same list, so equivalent requests "
             "always land on one shard and dedup converges",
    )
    parser.add_argument(
        "--peers", metavar="URL,URL,...", default=None,
        help="with --shard K/N: the N shard base URLs in index order "
             "(self included at position K); the other entries are "
             "dialed for artifact peer fetch",
    )
    parser.add_argument(
        "--shared-cache-dir", metavar="DIR", default=None,
        help="shared artifact-cache tier (read-through on local miss, "
             "write-through on store) — point every shard at one "
             "shared directory so any shard instant-completes from "
             "any other shard's work; usable without --shard too",
    )
    parser.add_argument(
        "--peer-timeout", type=float, default=2.0, metavar="SECONDS",
        help="per-peer deadline for one artifact fetch; a dead peer "
             "costs at most this before computing locally (default: 2)",
    )
    parser.add_argument(
        "--no-peer-fetch", action="store_true",
        help="never dial peers for artifacts (shared-dir and local "
             "tiers only); routing and shard stats are unaffected",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="concurrent dispatch workers: batches are claimed atomically "
             "and executed in parallel, overlapping the next batch's "
             "grouping with the previous one's execution (default: 1)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per simulation batch (default: 1)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=8, metavar="N",
        help="max service jobs fused into one batch (default: 8)",
    )
    parser.add_argument(
        "--compact-every", type=int, default=4096, metavar="N",
        help="auto-compact the queue journal into a snapshot every N "
             "events; 0 disables auto-compaction (default: 4096)",
    )
    parser.add_argument(
        "--quota", type=int, default=0, metavar="N",
        help="max in-flight (queued+running) jobs per client id; breaches "
             "get HTTP 429 with Retry-After; 0 = unlimited (default: 0)",
    )
    parser.add_argument(
        "--max-queue-depth", type=int, default=0, metavar="N",
        help="max total in-flight jobs before submissions get HTTP 503 "
             "with Retry-After; 0 = unbounded (default: 0)",
    )
    parser.add_argument(
        "--max-body-bytes", type=int, default=DEFAULT_MAX_BODY_BYTES,
        metavar="N",
        help="largest accepted POST body; bigger requests get HTTP 413 "
             "(default: %d)" % DEFAULT_MAX_BODY_BYTES,
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="failed executions (crash, hang, error) a job gets before "
             "it is quarantined with its failure diagnostic "
             "(default: 3)",
    )
    parser.add_argument(
        "--job-timeout", type=float, default=0, metavar="SECONDS",
        help="per-cell wall-clock deadline: enables the contained "
             "executor (killable workers, hang detection, poison-job "
             "bisection on pool crashes); 0 disables deadline "
             "enforcement entirely (default: 0)",
    )
    parser.add_argument(
        "--drain-grace", type=float, default=30.0, metavar="SECONDS",
        help="on SIGTERM/SIGINT, how long in-flight batches get to "
             "finish before stragglers are demoted back to queued "
             "(default: 30)",
    )
    parser.add_argument(
        "--warm-pool", action="store_true",
        help="keep a persistent pre-warmed worker pool across batches "
             "instead of spawning a fresh pool per batch; the pool is "
             "torn down and rebuilt only after a crash or hang",
    )
    parser.add_argument(
        "--no-superblocks", action="store_true",
        help="disable superinstruction (fused basic-block) compilation "
             "in the functional engine; for A/B diagnosis",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="structured logging: print every event-bus record (access "
             "logs with path/status/duration_ms, job transitions, "
             "lifecycle marks) as one JSON line on stdout",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="artifact cache backing the service (default: .repro-cache)",
    )
    parser.add_argument(
        "--queue-dir", default=".repro-queue", metavar="DIR",
        help="job-queue journal directory (default: .repro-queue)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.workers < 1:
        parser.error("--workers must be >= 1")
    if args.compact_every < 0:
        parser.error("--compact-every must be >= 0")
    if args.quota < 0:
        parser.error("--quota must be >= 0")
    if args.max_queue_depth < 0:
        parser.error("--max-queue-depth must be >= 0")
    if args.max_body_bytes < 1:
        parser.error("--max-body-bytes must be >= 1")
    if args.max_attempts < 1:
        parser.error("--max-attempts must be >= 1")
    if args.job_timeout < 0:
        parser.error("--job-timeout must be >= 0")
    if args.drain_grace < 0:
        parser.error("--drain-grace must be >= 0")
    if args.peer_timeout <= 0:
        parser.error("--peer-timeout must be > 0")
    if args.peers and not args.shard:
        parser.error("--peers requires --shard K/N")
    port = args.port
    queue_dir, cache_dir = args.queue_dir, args.cache_dir
    peer_urls = None
    if args.shard:
        from repro.service.routing import parse_shard_spec

        try:
            shard_index, shard_count = parse_shard_spec(args.shard)
        except ValueError as error:
            parser.error(str(error))
        if not args.peers:
            parser.error("--shard requires --peers (all shard URLs, "
                         "index order)")
        peer_urls = tuple(
            u.strip() for u in args.peers.split(",") if u.strip()
        )
        if len(peer_urls) != shard_count:
            parser.error(
                f"--shard {args.shard} needs exactly {shard_count} "
                f"--peers URL(s); got {len(peer_urls)}"
            )
        if port is None:
            # Default the bind port to this shard's own announced URL,
            # so one --peers list configures the whole fleet.
            from urllib.parse import urlsplit

            port = urlsplit(peer_urls[shard_index]).port
            if port is None:
                parser.error(
                    f"--peers entry {shard_index} "
                    f"({peer_urls[shard_index]!r}) has no explicit "
                    "port; pass --port"
                )
        # Each shard process owns a private journal and local cache —
        # only the shared tier is multi-writer — so the default dirs
        # are suffixed with the shard identity.
        suffix = f"-shard-{shard_index}-of-{shard_count}"
        queue_dir = args.queue_dir + suffix
        cache_dir = args.cache_dir + suffix
    if port is None:
        port = 8742
    if args.no_superblocks:
        # Inherited by spawned workers (cold and warm pools alike), so
        # one flag disables fused-block execution service-wide.  Set
        # before any simulation import can snapshot the gate.
        os.environ["REPRO_SUPERBLOCKS"] = "0"

    from repro.service.server import serve_forever

    def announce(server):
        # In --log-json mode stdout is reserved for JSON records (the
        # bus publishes a machine-readable "serving" event there), so
        # the human-readable line moves to stderr.
        stream = sys.stderr if args.log_json else sys.stdout
        print(f"serving on {server.url}", file=stream, flush=True)
        shard_note = (
            f"shard: {args.shard} "
            f"(shared tier: {args.shared_cache_dir or 'none'}); "
            if args.shard else ""
        )
        print(
            f"queue journal: {queue_dir}; cache: {cache_dir}; "
            f"{shard_note}"
            f"workers: {args.workers}; jobs/batch: {args.jobs}; "
            f"max batch: {args.max_batch}; "
            f"warm pool: {'on' if args.warm_pool else 'off'}; "
            f"superblocks: {'off' if args.no_superblocks else 'on'}",
            file=sys.stderr, flush=True,
        )

    drained_clean = serve_forever(
        queue_dir, cache_dir,
        host=args.host, port=port,
        jobs=args.jobs, max_batch=args.max_batch,
        workers=args.workers,
        compact_every=args.compact_every or None,
        quota=args.quota or None,
        max_queue_depth=args.max_queue_depth or None,
        max_body_bytes=args.max_body_bytes,
        max_attempts=args.max_attempts,
        job_timeout=args.job_timeout or None,
        drain_grace=args.drain_grace,
        warm_pool=args.warm_pool,
        log_json=args.log_json,
        shard=args.shard, peers=peer_urls,
        shared_cache_dir=args.shared_cache_dir,
        peer_timeout=args.peer_timeout,
        peer_fetch=not args.no_peer_fetch,
        announce=announce,
    )
    if not drained_clean:
        # A wedged batch outlived the grace: its dispatch thread is
        # non-daemon, so a normal return would hang the interpreter on
        # thread join.  The drain already demoted the batch's jobs and
        # abandoned the journal writer, so replay is clean — hard-exit
        # with the success status the drain contract promises.
        print("drain grace expired with a batch still executing; "
              "exiting hard (jobs demoted for replay)",
              file=sys.stderr, flush=True)
        os._exit(0)
    return 0


def _submit_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit a sweep or figure job to a running service "
                    "and (by default) wait for the result.",
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8742",
        help="service base URL; a comma-separated list names a sharded "
             "fleet (same order as the servers' --peers) and the "
             "request is consistent-hash routed to its owning shard "
             "(default: http://127.0.0.1:8742)",
    )
    parser.add_argument(
        "--axis", metavar="AXIS",
        help="sweep axis: %s" % ", ".join(SWEEP_AXES.names()),
    )
    parser.add_argument(
        "--values", metavar="A,B,...",
        help="explicit axis values (default: every registered value)",
    )
    parser.add_argument(
        "--workloads", metavar="W1,W2,...",
        help="comma-separated workloads (default: the profile's suite)",
    )
    parser.add_argument(
        "--figure", metavar="TARGET",
        help="submit a figure job instead of a sweep: %s"
             % ", ".join(EXPERIMENTS),
    )
    parser.add_argument(
        "--profile", choices=ExperimentProfile.names(), default="quick",
        help="experiment profile (default: quick)",
    )
    parser.add_argument(
        "--client-id", "--client", dest="client", default="cli",
        metavar="NAME",
        help="client identity for queue fairness and admission quotas "
             "(default: cli)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=5, metavar="N",
        help="retry a 429/503 admission refusal up to N times, honoring "
             "the server's Retry-After with capped exponential backoff; "
             "0 fails fast (default: 5)",
    )
    parser.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and return without waiting for the result",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="give up waiting after this long (default: 600)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write the result document to PATH",
    )
    args = parser.parse_args(argv)
    if bool(args.figure) == bool(args.axis):
        parser.error("exactly one of --figure or --axis is required")
    if args.figure and (args.values or args.workloads):
        parser.error("--values/--workloads are sweep options and cannot "
                     "combine with --figure")
    if args.no_wait and args.json:
        parser.error("--json needs the result and cannot combine "
                     "with --no-wait")
    if args.json:
        _check_json_path(parser, args.json)
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")

    from repro.service.client import ServiceError, submit_and_wait, submit_job

    if args.figure:
        payload = {"kind": "figure", "target": args.figure,
                   "profile": args.profile}
    else:
        payload = {"kind": "sweep", "axis": args.axis,
                   "profile": args.profile}
        if args.values:
            payload["values"] = args.values.split(",")
        if args.workloads:
            payload["workloads"] = args.workloads.split(",")

    def on_retry(attempt, delay, error):
        print(
            f"service busy (HTTP {error.status}); retrying in {delay:.1f}s "
            f"(attempt {attempt + 1}/{args.max_retries})",
            file=sys.stderr, flush=True,
        )

    try:
        if args.no_wait:
            receipt = submit_job(
                args.url, payload, client=args.client,
                max_retries=args.max_retries, on_retry=on_retry,
            )
            print(f"submitted {receipt['id']} ({receipt['location']})")
            return 0
        job, document = submit_and_wait(
            args.url, payload, client=args.client, timeout=args.timeout,
            max_retries=args.max_retries, on_retry=on_retry,
        )
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    manifest = json.loads(document)
    for name, section in manifest["results"].items():
        print(section["table"])
        print(f"[{name}; served by {args.url}, job {job['id']}, "
              f"source: {job.get('source', 'computed')}]")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(document.decode("utf-8"))
    return 0


def _status_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro status",
        description="Show a running service's queue/cache/worker stats, "
                    "or one job's record.",
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8742",
        help="service base URL (default: http://127.0.0.1:8742)",
    )
    parser.add_argument(
        "--job", metavar="ID", help="show this job's record instead",
    )
    args = parser.parse_args(argv)

    from repro.service.client import ServiceError, get_job, get_stats

    try:
        if args.job:
            print(json.dumps(get_job(args.url, args.job), indent=2,
                             sort_keys=True))
            return 0
        stats = get_stats(args.url)
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    queue, disp = stats["queue"], stats["dispatcher"]
    workers = stats["workers"]
    compaction = queue["compaction"]
    print(f"queue depth: {queue['depth']}  states: "
          + "  ".join(f"{k}={v}" for k, v in sorted(queue["states"].items())))
    print(f"journal: generation {compaction['generation']}  "
          f"tail events: {compaction['journal_events']}  "
          f"compactions: {compaction['compactions']}")
    print(f"submissions: {disp['submissions']}  coalesced: "
          f"{disp['coalesced']}  from-cache: {disp['jobs_from_cache']}  "
          f"completed: {disp['jobs_completed']}  failed: "
          f"{disp['jobs_failed']}")
    print(f"batches: {disp['batches']}  batched jobs: "
          f"{disp['batched_jobs']}  cells executed: "
          f"{disp['cells_executed']}  inflight-deduped: "
          f"{disp['cells_deduped_inflight']}  overlapped: "
          f"{disp['overlapped_batches']}")
    containment = stats.get("containment")
    if containment:
        deadline = containment["job_timeout"]
        print(f"containment: retries={containment['retries']}  "
              f"quarantined={containment['quarantined']}  "
              f"timeouts={containment['timeouts']}  "
              f"bisections={containment['bisections']}  "
              f"pool crashes={containment['pool_crashes']}  "
              f"breaker={'OPEN' if containment['breaker_open'] else 'closed'}"
              f"  (max attempts {containment['max_attempts']}, deadline "
              + (f"{deadline:g}s)" if deadline else "off)"))
    print(f"workers: {workers['count']} ({workers['active']} active)  "
          f"pool size: {workers['pool_size']}  max batch: "
          f"{workers['max_batch']}  utilization: "
          f"{workers['utilization']:.1%}")
    return 0


def _watch_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro watch",
        description="Tail a running service's live event stream "
                    "(GET /v1/events over SSE): job transitions, "
                    "batches, bisections, pool rebuilds, access "
                    "records — no polling.",
    )
    parser.add_argument(
        "--url", default="http://127.0.0.1:8742",
        help="service base URL (default: http://127.0.0.1:8742)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print each event as one raw JSON line (pipe to jq) "
             "instead of the human-readable rendering",
    )
    parser.add_argument(
        "--max-events", type=int, default=0, metavar="N",
        help="exit after N events; 0 streams until interrupted "
             "(default: 0)",
    )
    parser.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="socket read timeout between frames; the server's 15s "
             "keepalive cadence keeps this from firing on a quiet "
             "stream (default: 60)",
    )
    args = parser.parse_args(argv)
    if args.max_events < 0:
        parser.error("--max-events must be >= 0")
    if args.timeout <= 0:
        parser.error("--timeout must be > 0")

    from repro.service.client import ServiceError, stream_events

    try:
        for event in stream_events(
            args.url,
            timeout=args.timeout,
            max_events=args.max_events or None,
        ):
            if args.json:
                print(json.dumps(event, sort_keys=True), flush=True)
                continue
            print(_render_watch_event(event), flush=True)
    except KeyboardInterrupt:
        return 0
    except ServiceError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


def _render_watch_event(event: dict) -> str:
    """One human-readable line per bus event for ``repro watch``."""
    kind = event.get("event", "?")
    seq = event.get("seq", "-")
    if kind == "hello":
        stats = event.get("stats", {})
        queue = stats.get("queue", {})
        return (f"[{seq}] connected: queue depth "
                f"{queue.get('depth', '?')}, uptime "
                f"{stats.get('uptime_seconds', '?')}s")
    if kind == "job":
        parts = [f"[{seq}] job {event.get('id', '?')} "
                 f"-> {event.get('state', '?')}"]
        for key in ("client", "source", "error", "failure_reason"):
            if key in event:
                parts.append(f"{key}={event[key]}")
        return "  ".join(parts)
    if kind == "http":
        return (f"[{seq}] http {event.get('method', '?')} "
                f"{event.get('path', '?')} -> {event.get('status', '?')} "
                f"({event.get('duration_ms', '?')}ms)")
    if kind == "dropped":
        return (f"[!] stream fell behind: {event.get('count', '?')} "
                f"event(s) dropped")
    detail = "  ".join(
        f"{key}={value}" for key, value in sorted(event.items())
        if key not in ("event", "seq", "ts")
    )
    return f"[{seq}] {kind}" + (f"  {detail}" if detail else "")


def _queue_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro queue",
        description="Inspect or compact a service job-queue directory. "
                    "'compact' folds the journal into an atomic snapshot "
                    "(against a live service via --url, or offline on a "
                    "--queue-dir while no server is running); 'stats' is a "
                    "read-only report of the snapshot/journal files.",
    )
    parser.add_argument(
        "action", choices=("compact", "stats"),
        help="'compact' snapshots + truncates the journal; 'stats' reports "
             "generation, snapshot size, and journal tail length",
    )
    parser.add_argument(
        "--queue-dir", default=".repro-queue", metavar="DIR",
        help="queue directory (default: .repro-queue)",
    )
    parser.add_argument(
        "--url", metavar="URL",
        help="compact via a running service's POST /v1/compact instead of "
             "touching the directory (required if a server is live)",
    )
    parser.add_argument(
        "--retain", type=int, default=None, metavar="N",
        help="finished jobs to keep in the snapshot (default: 256, or "
             "the live server's configured retention with --url)",
    )
    args = parser.parse_args(argv)
    if args.retain is not None and args.retain < 0:
        parser.error("--retain must be >= 0")

    if args.action == "compact" and args.url:
        from repro.service.client import ServiceError, compact_queue

        try:
            report = compact_queue(args.url, retain_terminal=args.retain)
        except ServiceError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"compact: generation {report['generation']}, "
              f"kept {report['jobs_kept']} job(s), "
              f"dropped {report['jobs_dropped']}, "
              f"folded {report['events_folded']} journal event(s)")
        return 0

    if args.action == "compact":
        # Offline maintenance: replays the journal (demoting interrupted
        # work exactly as a restart would), snapshots, and truncates.
        # Never run this against a live server's queue directory — two
        # writers on one journal corrupt both; use --url for that.
        from repro.service.queue import JobQueue, SnapshotCorruptError

        try:
            queue = JobQueue(args.queue_dir)
        except SnapshotCorruptError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        try:
            report = queue.compact(retain_terminal=args.retain)
        finally:
            queue.close()
        print(report.summary())
        return 0

    # stats: pure file inspection, safe next to a running server.
    from repro.service.queue import JobQueue as _JobQueue

    queue_dir = args.queue_dir
    snapshot_path = os.path.join(queue_dir, _JobQueue.SNAPSHOT_FILE)
    journal_path = os.path.join(queue_dir, "journal.jsonl")
    generation = 0
    if os.path.exists(snapshot_path):
        with open(snapshot_path, encoding="utf-8") as handle:
            try:
                snapshot = json.load(handle)
            except json.JSONDecodeError:
                print(f"error: {snapshot_path} is corrupt (torn snapshot)",
                      file=sys.stderr)
                return 2
        generation = snapshot.get("generation", 0)
        states = {}
        for record in snapshot.get("jobs", ()):
            states[record.get("state")] = states.get(record.get("state"), 0) + 1
        print(f"snapshot: generation {generation}, "
              f"{snapshot.get('job_count', 0)} job(s)  "
              + "  ".join(f"{k}={v}" for k, v in sorted(states.items())))
    else:
        print("snapshot: none (journal-only queue)")
    if os.path.exists(journal_path):
        with open(journal_path, encoding="utf-8") as handle:
            lines = sum(1 for _ in handle)
        size = os.path.getsize(journal_path)
        print(f"journal: {lines} line(s), {size:,} bytes")
    else:
        print("journal: none")
    return 0


def _cache_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or prune the on-disk artifact cache.",
    )
    parser.add_argument(
        "action", choices=("stats", "gc"),
        help="'stats' reports per-kind entries/bytes and lifetime "
             "hit/miss counters; 'gc' prunes by age and/or size",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="artifact cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--max-age", type=float, metavar="SECONDS",
        help="gc: remove artifacts older than this many seconds",
    )
    parser.add_argument(
        "--max-bytes", type=int, metavar="N",
        help="gc: then remove oldest artifacts until the store fits N bytes",
    )
    args = parser.parse_args(argv)

    cache = ArtifactCache(args.cache_dir)
    if args.action == "gc":
        if args.max_age is None and args.max_bytes is None:
            parser.error("gc needs --max-age and/or --max-bytes")
        report = cache.gc(max_age=args.max_age, max_bytes=args.max_bytes)
        print(report.summary())
        return 0

    stats = cache.disk_stats()
    if not stats:
        print(f"cache {args.cache_dir}: empty")
    else:
        total_count = sum(count for count, _ in stats.values())
        total_bytes = sum(size for _, size in stats.values())
        width = max(len(kind) for kind in stats) + 1
        for kind in sorted(stats):
            count, size = stats[kind]
            print(f"{kind:<{width}s}{count:>7,} entries  {size:>13,} bytes")
        print(f"{'total':<{width}s}{total_count:>7,} entries  "
              f"{total_bytes:>13,} bytes")
    lifetime = cache.persistent_counters()
    if lifetime:
        print("lifetime counters:")
        for kind in sorted(lifetime):
            slot = lifetime[kind]
            print(f"  {kind}: {slot.get('hits', 0)} hit / "
                  f"{slot.get('misses', 0)} miss / "
                  f"{slot.get('stores', 0)} stored / "
                  f"{slot.get('corrupt', 0)} corrupt healed")
    return 0


#: Subcommands that own their option surfaces and dispatch before the
#: main parser sees the arguments (``--workloads`` is a flag on one and
#: valued on another; the service verbs add --url/--port/...).
_SUBCOMMANDS = {
    "list": _list_main,
    "sweep": _sweep_main,
    "serve": _serve_main,
    "submit": _submit_main,
    "status": _status_main,
    "watch": _watch_main,
    "queue": _queue_main,
    "cache": _cache_main,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Exploiting Dead Value "
                    "Information' (MICRO-30, 1997).",
    )
    parser.add_argument(
        "target",
        help="figure id (%s), 'run-all' (or 'all'), 'machine', 'list' "
             "(--workloads/--predictors/--hierarchies show registered "
             "components), 'sweep' (ad-hoc component sweeps), 'serve' "
             "(simulation service), 'submit'/'status'/'watch' (service "
             "clients; watch tails the live SSE event stream), "
             "'queue' (job-queue compaction/stats), or 'cache' "
             "(artifact-store stats/gc); each subcommand has its own "
             "--help"
             % ", ".join(EXPERIMENTS),
    )
    _add_run_options(parser)

    # Subcommands own their option surfaces; dispatch before the main
    # parser sees the arguments.  The target is located the way the main
    # parser would, so option-first orderings keep working.
    target = _target_of(argv)
    if target in _SUBCOMMANDS:
        rest = list(argv)
        rest.remove(target)
        try:
            return _SUBCOMMANDS[target](rest)
        except UnknownComponentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.target == "machine":
        print(fig3_characterization.machine_description())
        return 0

    run_all = args.target in ("all", "run-all")
    targets = list(EXPERIMENTS) if run_all else [args.target]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        parser.error(
            "unknown target(s): %s; valid targets: %s, run-all, list, "
            "machine, sweep"
            % (", ".join(unknown), ", ".join(EXPERIMENTS))
        )
    if args.json:
        _check_json_path(parser, args.json)

    context = _make_context(args)
    profile = context.profile

    results = {}
    for name in targets:
        module, description = EXPERIMENTS[name]
        started = time.time()
        result = module.run(profile, context)
        results[name] = result
        print(result.format_table())
        print(f"[{name}: {description}; {time.time() - started:.1f}s]\n")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(render_manifest(profile.name, results))
    if context.cache is not None:
        print(context.cache.summary(), file=sys.stderr)
        try:
            context.cache.flush_counters()
        except OSError:
            pass  # read-only cache dir: tallies are best-effort
    return 0


if __name__ == "__main__":
    sys.exit(main())
