"""Command-line interface: regenerate the paper's figures and run sweeps.

Usage::

    python -m repro list
    python -m repro list --workloads --predictors --hierarchies
    python -m repro fig9                      # quick profile, cached
    python -m repro fig5 --profile full
    python -m repro run-all --jobs 4          # every figure, 4 workers
    python -m repro run-all --json out.json   # machine-readable results
    python -m repro fig10 --no-cache          # force recomputation
    python -m repro machine                   # print the Figure 2 table
    python -m repro sweep --axis predictor --workloads go,li
    python -m repro sweep --axis hierarchy --values micro97,compact

Simulation artifacts (binaries, traces, functional results, timing
stats) are cached content-addressed under ``--cache-dir`` (default
``.repro-cache``), keyed by workload, profile scale, DVI and machine
configuration, and source version — a warm re-run replays every figure
from disk without re-simulating anything.  ``--jobs N`` fans the
experiments' independent simulation cells out over N worker processes;
results are merged deterministically, so parallel output is identical
to serial output.

The ``sweep`` subcommand builds an ad-hoc scenario from the component
registries: one timing cell per (workload, value) along any registered
axis (``predictor``, ``hierarchy``, ``regfile``, ``ports``).  Unknown
experiment, profile, workload, or component names exit with status 2
and the list of valid names.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import (
    ablation_lvmstack_depth,
    ablation_predictor,
    fig3_characterization,
    fig5_regfile_ipc,
    fig6_performance,
    fig9_eliminated,
    fig10_speedup,
    fig11_sensitivity,
    fig12_context_switch,
    fig13_edvi_overhead,
)
from repro.experiments.cache import ArtifactCache
from repro.experiments.export import render_manifest
from repro.experiments.runner import ExperimentContext, ExperimentProfile
from repro.experiments.sweep import SWEEP_AXES, adhoc_spec, run_sweep
from repro.registry import UnknownComponentError
from repro.sim.branch.predictors import PREDICTORS
from repro.sim.cache.hierarchy import HIERARCHIES
from repro.workloads.suite import REGISTRY as WORKLOADS

EXPERIMENTS = {
    "fig3": (fig3_characterization, "benchmark characterization"),
    "fig5": (fig5_regfile_ipc, "IPC vs. register file size"),
    "fig6": (fig6_performance, "performance vs. register file size"),
    "fig9": (fig9_eliminated, "saves/restores eliminated"),
    "fig10": (fig10_speedup, "IPC speedups"),
    "fig11": (fig11_sensitivity, "cache bandwidth sensitivity"),
    "fig12": (fig12_context_switch, "context-switch elimination"),
    "fig13": (fig13_edvi_overhead, "E-DVI overhead"),
    "ablation": (ablation_lvmstack_depth, "LVM-Stack depth ablation"),
    "predictor": (ablation_predictor, "branch predictor ablation"),
}

PROFILES = {
    "tiny": ExperimentProfile.tiny,
    "quick": ExperimentProfile.quick,
    "full": ExperimentProfile.full,
}


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    """The execution knobs shared by figure runs and ad-hoc sweeps."""
    parser.add_argument(
        "--profile", choices=tuple(PROFILES), default="quick",
        help="sweep size: tiny (tests/smoke), quick (default), or the "
             "paper-shaped full sweep",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the simulation cells (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="on-disk artifact cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk cache (never read or write artifacts)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write every result as deterministic JSON to PATH",
    )


def _check_json_path(parser: argparse.ArgumentParser, path: str) -> None:
    """Catch an unwritable --json path now, not after minutes of simulation
    — without leaving an empty file behind if the run later fails."""
    try:
        probe_existed = os.path.exists(path)
        with open(path, "a", encoding="utf-8"):
            pass
        if not probe_existed:
            os.unlink(path)
    except OSError as error:
        parser.error(f"cannot write --json file: {error}")


def _make_context(args) -> ExperimentContext:
    profile = PROFILES[args.profile]()
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    return ExperimentContext(profile, cache=cache, jobs=args.jobs)


#: Main-parser long options -> whether they consume the following token.
#: Used to locate the target positional anywhere in argv (argparse
#: allows option-first orderings like ``--profile tiny fig9``).
_MAIN_OPTIONS = {
    "--profile": True,
    "--jobs": True,
    "--cache-dir": True,
    "--json": True,
    "--no-cache": False,
}


def _target_of(argv) -> str:
    """The target positional as the main parser would bind it.

    Mirrors argparse's prefix matching so abbreviated options
    (``--prof tiny``) skip their value too.
    """
    skip_next = False
    for token in argv:
        if skip_next:
            skip_next = False
            continue
        if token.startswith("--"):
            name = token.split("=", 1)[0]
            matches = [o for o in _MAIN_OPTIONS if o.startswith(name)]
            if ("=" not in token and matches
                    and all(_MAIN_OPTIONS[o] for o in matches)):
                skip_next = True
            continue
        if token.startswith("-"):
            continue
        return token
    return ""


def _list_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro list",
        description="List experiments or registered components.",
    )
    parser.add_argument(
        "--workloads", action="store_true",
        help="show the registered workloads",
    )
    parser.add_argument(
        "--predictors", action="store_true",
        help="show the registered branch predictors",
    )
    parser.add_argument(
        "--hierarchies", action="store_true",
        help="show the registered cache-hierarchy presets",
    )
    # Listing runs nothing, but the shared run options stay accepted (and
    # ignored) so pre-refactor invocations like ``list --profile tiny``
    # keep working.
    _add_run_options(parser)
    args = parser.parse_args(argv)
    _print_components(args)
    return 0


def _print_components(args) -> None:
    """The ``list`` subcommand body."""
    sections = []
    if args.workloads:
        sections.append(("workloads", [
            (w.name, f"{w.description} (analog: {w.analog})")
            for w in WORKLOADS.all()
        ]))
    if args.predictors:
        sections.append(("predictors", [
            (spec.name, spec.description) for spec in PREDICTORS.all()
        ]))
    if args.hierarchies:
        sections.append(("hierarchies", [
            (spec.name, spec.description) for spec in HIERARCHIES.all()
        ]))
    if not sections:
        sections.append(("experiments", [
            (name, description)
            for name, (_, description) in EXPERIMENTS.items()
        ]))
    for index, (heading, rows) in enumerate(sections):
        if len(sections) > 1:
            if index:
                print()
            print(f"{heading}:")
        width = max(10, *(len(name) for name, _ in rows)) + 1
        for name, description in rows:
            print(f"{name:<{width}s}{description}")


def _sweep_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Run an ad-hoc sweep over a registered component axis.",
    )
    parser.add_argument(
        "--axis", required=True, metavar="AXIS",
        help="swept dimension: %s" % ", ".join(SWEEP_AXES.names()),
    )
    parser.add_argument(
        "--values", metavar="A,B,...",
        help="explicit axis values (default: every registered value / the "
             "profile's sweep)",
    )
    parser.add_argument(
        "--workloads", metavar="W1,W2,...",
        help="comma-separated workload names, bare analog names accepted "
             "(default: the profile's suite)",
    )
    _add_run_options(parser)
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")
    if args.json:
        _check_json_path(parser, args.json)

    context = _make_context(args)
    profile = context.profile
    try:
        spec = adhoc_spec(
            args.axis,
            profile,
            values=args.values.split(",") if args.values else None,
            workloads=args.workloads.split(",") if args.workloads else None,
        )
    except UnknownComponentError:
        raise
    except ValueError as error:  # e.g. non-integer --values for regfile
        parser.error(f"--values: {error}")
    started = time.time()
    try:
        result = run_sweep(
            spec, profile, context,
            title=f"Sweep over {args.axis} ({profile.name} profile)",
        )
    except ValueError as error:  # e.g. a register count below the minimum
        parser.error(str(error))
    print(result.format_table())
    print(f"[{spec.name}; {time.time() - started:.1f}s]")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(render_manifest(profile.name, {spec.name: result}))
    if context.cache is not None:
        print(context.cache.summary(), file=sys.stderr)
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Exploiting Dead Value "
                    "Information' (MICRO-30, 1997).",
    )
    parser.add_argument(
        "target",
        help="figure id (%s), 'run-all' (or 'all'), 'machine', 'list' "
             "(--workloads/--predictors/--hierarchies show registered "
             "components), or 'sweep' (ad-hoc component sweeps; see "
             "'sweep --help')"
             % ", ".join(EXPERIMENTS),
    )
    _add_run_options(parser)

    # ``list`` and ``sweep`` own their option surfaces (--workloads is a
    # flag on one and takes a value on the other); dispatch before the
    # main parser sees the arguments.  The target is located the way the
    # main parser would, so option-first orderings keep working.
    target = _target_of(argv)
    if target in ("list", "sweep"):
        rest = list(argv)
        rest.remove(target)
        if target == "list":
            return _list_main(rest)
        try:
            return _sweep_main(rest)
        except UnknownComponentError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.target == "machine":
        print(fig3_characterization.machine_description())
        return 0

    run_all = args.target in ("all", "run-all")
    targets = list(EXPERIMENTS) if run_all else [args.target]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        parser.error(
            "unknown target(s): %s; valid targets: %s, run-all, list, "
            "machine, sweep"
            % (", ".join(unknown), ", ".join(EXPERIMENTS))
        )
    if args.json:
        _check_json_path(parser, args.json)

    context = _make_context(args)
    profile = context.profile

    results = {}
    for name in targets:
        module, description = EXPERIMENTS[name]
        started = time.time()
        result = module.run(profile, context)
        results[name] = result
        print(result.format_table())
        print(f"[{name}: {description}; {time.time() - started:.1f}s]\n")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(render_manifest(profile.name, results))
    if context.cache is not None:
        print(context.cache.summary(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
