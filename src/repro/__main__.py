"""Command-line interface: regenerate the paper's figures.

Usage::

    python -m repro list
    python -m repro fig9                      # quick profile, cached
    python -m repro fig5 --profile full
    python -m repro run-all --jobs 4          # every figure, 4 workers
    python -m repro run-all --json out.json   # machine-readable results
    python -m repro fig10 --no-cache          # force recomputation
    python -m repro machine                   # print the Figure 2 table

Simulation artifacts (binaries, traces, functional results, timing
stats) are cached content-addressed under ``--cache-dir`` (default
``.repro-cache``), keyed by workload, profile scale, DVI and machine
configuration, and source version — a warm re-run replays every figure
from disk without re-simulating anything.  ``--jobs N`` fans the
experiments' independent simulation cells out over N worker processes;
results are merged deterministically, so parallel output is identical
to serial output.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.experiments import (
    ablation_lvmstack_depth,
    fig3_characterization,
    fig5_regfile_ipc,
    fig6_performance,
    fig9_eliminated,
    fig10_speedup,
    fig11_sensitivity,
    fig12_context_switch,
    fig13_edvi_overhead,
)
from repro.experiments.cache import ArtifactCache
from repro.experiments.export import render_manifest
from repro.experiments.runner import ExperimentContext, ExperimentProfile

EXPERIMENTS = {
    "fig3": (fig3_characterization, "benchmark characterization"),
    "fig5": (fig5_regfile_ipc, "IPC vs. register file size"),
    "fig6": (fig6_performance, "performance vs. register file size"),
    "fig9": (fig9_eliminated, "saves/restores eliminated"),
    "fig10": (fig10_speedup, "IPC speedups"),
    "fig11": (fig11_sensitivity, "cache bandwidth sensitivity"),
    "fig12": (fig12_context_switch, "context-switch elimination"),
    "fig13": (fig13_edvi_overhead, "E-DVI overhead"),
    "ablation": (ablation_lvmstack_depth, "LVM-Stack depth ablation"),
}

PROFILES = {
    "tiny": ExperimentProfile.tiny,
    "quick": ExperimentProfile.quick,
    "full": ExperimentProfile.full,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate figures from 'Exploiting Dead Value "
                    "Information' (MICRO-30, 1997).",
    )
    parser.add_argument(
        "target",
        help="figure id (%s), 'run-all' (or 'all'), 'list', or 'machine'"
             % ", ".join(EXPERIMENTS),
    )
    parser.add_argument(
        "--profile", choices=tuple(PROFILES), default="quick",
        help="sweep size: tiny (tests/smoke), quick (default), or the "
             "paper-shaped full sweep",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the simulation cells (default: 1, serial)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="on-disk artifact cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk cache (never read or write artifacts)",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="also write every result as deterministic JSON to PATH",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if args.target == "list":
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0
    if args.target == "machine":
        print(fig3_characterization.machine_description())
        return 0

    run_all = args.target in ("all", "run-all")
    targets = list(EXPERIMENTS) if run_all else [args.target]
    unknown = [t for t in targets if t not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown target(s): {', '.join(unknown)}")
    if args.json:
        # Catch an unwritable path now, not after minutes of simulation —
        # without leaving an empty file behind if the run later fails.
        try:
            probe_existed = os.path.exists(args.json)
            with open(args.json, "a", encoding="utf-8"):
                pass
            if not probe_existed:
                os.unlink(args.json)
        except OSError as error:
            parser.error(f"cannot write --json file: {error}")

    profile = PROFILES[args.profile]()
    cache = None if args.no_cache else ArtifactCache(args.cache_dir)
    context = ExperimentContext(profile, cache=cache, jobs=args.jobs)

    results = {}
    for name in targets:
        module, description = EXPERIMENTS[name]
        started = time.time()
        result = module.run(profile, context)
        results[name] = result
        print(result.format_table())
        print(f"[{name}: {description}; {time.time() - started:.1f}s]\n")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(render_manifest(profile.name, results))
    if cache is not None:
        print(cache.summary(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
