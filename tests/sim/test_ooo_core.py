"""Tests for the out-of-order timing model."""

from dataclasses import replace

from repro.dvi.config import DVIConfig, SRScheme
from repro.isa import registers as R
from repro.program.builder import ProgramBuilder
from repro.rewrite.edvi import insert_edvi
from repro.sim.config import MachineConfig
from repro.sim.functional import run_program
from repro.sim.ooo.core import simulate
from repro.workloads.suite import get_program


def trace_of(body, dvi=None):
    b = ProgramBuilder("t")
    b.label("main")
    body(b)
    b.halt()
    return run_program(b.build(), dvi).trace


def loop_trace(body_fn, iterations=60, counter=R.T9):
    """A warm loop: body_fn(b) repeated, with loop control around it."""
    def body(b):
        b.li(counter, iterations)
        b.label("top")
        body_fn(b)
        b.addi(counter, counter, -1)
        b.bgtz(counter, "top")
    return trace_of(body)


def dependent_chain_trace():
    return loop_trace(lambda b: [b.addi(R.T0, R.T0, 1) for _ in range(8)])


class TestBasicTiming:
    def test_ipc_bounded_by_issue_width(self):
        stats = simulate(MachineConfig.micro97(), dependent_chain_trace())
        assert 0 < stats.ipc <= MachineConfig.micro97().issue_width

    def test_dependent_chain_is_serial(self):
        # A chain of dependent adds cannot sustain much above IPC 1
        # (the loop-control instructions add a little parallelism).
        stats = simulate(MachineConfig.micro97(), dependent_chain_trace())
        assert stats.ipc <= 1.5

    def test_independent_ops_reach_high_ipc(self):
        def group(b):
            b.addi(R.T0, R.ZERO, 1)
            b.addi(R.T1, R.ZERO, 2)
            b.addi(R.T2, R.ZERO, 3)
            b.addi(R.T3, R.ZERO, 4)
            b.addi(R.T4, R.ZERO, 5)
            b.addi(R.T5, R.ZERO, 6)
        stats = simulate(MachineConfig.micro97(), loop_trace(group))
        assert stats.ipc > 2.0

    def test_independent_beats_dependent(self):
        indep = simulate(
            MachineConfig.micro97(),
            loop_trace(lambda b: [b.addi(t, R.ZERO, 1)
                                  for t in (R.T0, R.T1, R.T2, R.T3)]),
        )
        dep = simulate(MachineConfig.micro97(), dependent_chain_trace())
        assert indep.ipc > dep.ipc

    def test_all_instructions_commit(self):
        trace = dependent_chain_trace()
        stats = simulate(MachineConfig.micro97(), trace)
        assert stats.committed == len(trace.records)
        assert stats.program_insts == trace.program_insts

    def test_invariants_hold_on_real_workload(self):
        trace = run_program(get_program("vortex_like")).trace
        # truncated replay keeps this test fast
        trace.records = trace.records[:4000]
        stats = simulate(
            MachineConfig.micro97(), trace, check_invariants=True
        )
        assert stats.cycles > 0


class TestRegisterFileEffects:
    def test_small_file_stalls_rename(self):
        trace = loop_trace(
            lambda b: [b.addi(t, R.ZERO, 1) for t in (R.T0, R.T1, R.T2, R.T3)]
        )
        small = simulate(MachineConfig.micro97().with_phys_regs(33), trace)
        large = simulate(MachineConfig.micro97().with_phys_regs(96), trace)
        assert small.rename_stall_cycles > 0
        assert small.ipc < large.ipc

    def test_minimum_file_makes_progress(self):
        stats = simulate(
            MachineConfig.micro97().with_phys_regs(32), dependent_chain_trace()
        )
        assert stats.committed > 0
        assert stats.cycles < 10_000

    def test_idvi_freeing_raises_ipc_at_small_sizes(self):
        program = get_program("li_like")
        none_trace = run_program(program, DVIConfig.none()).trace
        idvi_trace = run_program(program, DVIConfig.idvi_only()).trace
        config = MachineConfig.micro97().with_phys_regs(36)
        base = simulate(config, none_trace)
        dvi = simulate(config, idvi_trace)
        assert dvi.ipc > base.ipc * 1.05
        assert dvi.dvi_unmaps > 0

    def test_unmapped_reads_allowed(self):
        # A save of a killed register reads an unmapped name; the model
        # must treat it as ready, not crash (section 7's "unbound names").
        def body(b):
            b.li(R.S0, 1)
            b.kill(R.S0)
            b.live_sw(R.S0, -4, R.SP)
        trace = trace_of(body, DVIConfig(use_idvi=False, use_edvi=True,
                                         scheme=SRScheme.NONE))
        stats = simulate(MachineConfig.micro97(), trace)
        assert stats.unmapped_reads >= 1


class TestEliminationEffects:
    def test_eliminated_records_never_dispatch(self):
        program = insert_edvi(get_program("perl_like")).program
        trace = run_program(program, DVIConfig.full(SRScheme.LVM_STACK)).trace
        eliminated = sum(1 for r in trace.records if r.eliminated)
        stats = simulate(MachineConfig.micro97_unconstrained(), trace)
        assert eliminated > 0
        assert stats.eliminated == eliminated
        assert stats.committed == len(trace.records) - eliminated - \
            trace.annotation_insts

    def test_elimination_improves_ipc_when_port_bound(self):
        program = get_program("gcc_like")
        rewritten = insert_edvi(program).program
        base_trace = run_program(program, DVIConfig.none()).trace
        dvi_trace = run_program(
            rewritten, DVIConfig.full(SRScheme.LVM_STACK)
        ).trace
        config = replace(
            MachineConfig.micro97_unconstrained(), cache_ports=1
        )
        base = simulate(config, base_trace)
        dvi = simulate(config, dvi_trace)
        assert dvi.ipc > base.ipc


class TestBranchAndMemoryEffects:
    def test_mispredictions_cost_cycles(self):
        # data-dependent alternating branches mispredict until learned
        def body(b):
            b.li(R.T2, 0)
            for i in range(60):
                b.andi(R.T0, R.T2, 1)
                b.beq(R.T0, R.ZERO, f"skip{i}")
                b.addi(R.T1, R.T1, 1)
                b.label(f"skip{i}")
                b.addi(R.T2, R.T2, 1)
        trace = trace_of(body)
        stats = simulate(MachineConfig.micro97(), trace)
        assert stats.control_insts > 0
        assert stats.mispredicts >= 1

    def test_bigger_mispredict_penalty_costs_cycles(self):
        def body(b):
            b.li(R.T2, 0)
            for i in range(40):
                b.andi(R.T0, R.T2, 1)
                b.bne(R.T0, R.ZERO, f"t{i}")
                b.label(f"t{i}")
                b.addi(R.T2, R.T2, 3)
        trace = trace_of(body)
        fast = simulate(MachineConfig.micro97(), trace)
        slow = simulate(
            replace(MachineConfig.micro97(), mispredict_penalty=20), trace
        )
        assert slow.cycles >= fast.cycles

    def test_dcache_misses_counted(self):
        def body(b):
            b.li(R.T0, 0x100000)
            for i in range(20):
                b.lw(R.T1, 0, R.T0)
                b.addi(R.T0, R.T0, 4096)  # new line (and new set) each time
        trace = trace_of(body)
        stats = simulate(MachineConfig.micro97(), trace)
        assert stats.dcache_misses >= 19

    def test_icache_pressure_from_code_footprint(self):
        # A loop whose body overflows a tiny I-cache misses every
        # iteration; a big I-cache only takes the cold misses.
        trace = loop_trace(
            lambda b: [b.addi(R.T0, R.T0, 1) for _ in range(400)],
            iterations=6,
        )
        small = simulate(MachineConfig.micro97().with_icache(1024), trace)
        big = simulate(MachineConfig.micro97().with_icache(64 * 1024), trace)
        assert small.icache_misses > big.icache_misses
        assert small.cycles > big.cycles

    def test_fewer_ports_never_faster(self):
        trace = run_program(get_program("ijpeg_like")).trace
        trace.records = trace.records[:6000]
        one = simulate(replace(MachineConfig.micro97(), cache_ports=1), trace)
        three = simulate(replace(MachineConfig.micro97(), cache_ports=3), trace)
        assert one.cycles >= three.cycles
